//! Randomized property tests for the parameterized-dataflow layer: for
//! arbitrary parameterized pipelines — rates drawn from the `RateExpr`
//! language (constants, parameters, sums, products) — the balance solver
//! must produce a balanced *and minimal* repetition vector at **every**
//! valuation of the declared domain.
//!
//! Cases are generated with a seeded xorshift PRNG (the container has no
//! network access to fetch `proptest`/`rand`), so every run explores the
//! same deterministic case set and failures are reproducible from the
//! printed template index.

use macross_repro::sdf::{is_balanced, repetition_vector};
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::types::{ScalarTy, Ty};
use macross_repro::streamir::{ParamDomain, RateExpr, Valuation};

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*), same construction as proptests.rs.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Random parameterized pipelines.
// ---------------------------------------------------------------------

/// A random rate expression that is >= 1 at every valuation of a domain
/// whose ranges start at 1: leaves are positive constants or parameters,
/// and sums/products of positives stay positive.
fn rand_rate(rng: &mut Rng, params: &[String]) -> RateExpr {
    fn leaf(rng: &mut Rng, params: &[String]) -> RateExpr {
        if params.is_empty() || rng.range(0, 2) == 0 {
            RateExpr::Const(rng.range(1, 4) as u64)
        } else {
            RateExpr::param(params[rng.range(0, params.len())].clone())
        }
    }
    match rng.range(0, 5) {
        0 | 1 => leaf(rng, params),
        2 => leaf(rng, params), // weight leaves over compounds
        3 => RateExpr::Mul(Box::new(leaf(rng, params)), Box::new(leaf(rng, params))),
        _ => RateExpr::Add(Box::new(leaf(rng, params)), Box::new(leaf(rng, params))),
    }
}

/// One random template: a parameter domain plus per-stage (pop, push)
/// rate expressions for a pipeline of `stages` rate-changing filters.
struct TemplateSpec {
    domain: ParamDomain,
    rates: Vec<(RateExpr, RateExpr)>,
}

fn rand_template(rng: &mut Rng) -> TemplateSpec {
    let n_params = rng.range(1, 3);
    let names: Vec<String> = (0..n_params).map(|i| format!("p{i}")).collect();
    let mut domain = ParamDomain::new();
    for name in &names {
        let lo = rng.range(1, 3) as u64;
        let hi = lo + rng.range(0, 3) as u64;
        domain = domain.with(name.clone(), lo, hi);
    }
    let stages = rng.range(2, 6);
    let rates = (0..stages)
        .map(|_| (rand_rate(rng, &names), rand_rate(rng, &names)))
        .collect();
    TemplateSpec { domain, rates }
}

/// Instantiate the spec at one valuation: a source pushing 1, then the
/// rate-changing stages, then a sink. Every stage pops `pop`, pushes
/// `push` derived values.
fn instantiate(spec: &TemplateSpec, val: &Valuation) -> macross_repro::streamir::graph::Graph {
    let mut parts = Vec::with_capacity(spec.rates.len() + 2);
    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    src.work(|b| {
        b.push(c(1i32));
    });
    parts.push(src.build_spec());
    for (k, (pop_e, push_e)) in spec.rates.iter().enumerate() {
        let pop_n = pop_e.eval(val).unwrap();
        let push_n = push_e.eval(val).unwrap();
        let mut fb = FilterBuilder::new(format!("stage{k}"), pop_n, pop_n, push_n, ScalarTy::I32);
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
        fb.work(move |b| {
            b.set(acc, 0i32);
            b.for_(i, pop_n as i32, |b| {
                b.set(acc, v(acc) + pop());
            });
            b.for_(j, push_n as i32, |b| {
                b.push(v(acc) + v(j));
            });
        });
        parts.push(fb.build_spec());
    }
    parts.push(StreamSpec::Sink);
    StreamSpec::pipeline(parts).build().unwrap()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The solver balances every random parameterized pipeline at every
/// valuation of its domain, and the solution is minimal (the repetition
/// vector's entries are coprime — no smaller balanced vector exists).
#[test]
fn repetition_vector_balances_minimally_across_every_valuation() {
    let mut rng = Rng::new(0xD1FF_5EED);
    for case in 0..60 {
        let spec = rand_template(&mut rng);
        let valuations = spec.domain.valuations();
        assert!(!valuations.is_empty(), "case {case}: empty domain");
        for val in valuations {
            let graph = instantiate(&spec, &val);
            let reps =
                repetition_vector(&graph).unwrap_or_else(|e| panic!("case {case} at {val}: {e}"));
            assert!(
                is_balanced(&graph, &reps),
                "case {case} at {val}: unbalanced solution {reps:?}"
            );
            let g = reps.iter().copied().filter(|&r| r > 0).fold(0, gcd);
            assert_eq!(
                g, 1,
                "case {case} at {val}: non-minimal repetition vector {reps:?}"
            );
        }
    }
}

/// Scaling a balanced vector keeps it balanced but never minimal: the
/// solver must not return any multiple of the base solution.
#[test]
fn scaled_vectors_stay_balanced_but_are_rejected_as_solutions() {
    let mut rng = Rng::new(0xABCD_0123);
    for case in 0..20 {
        let spec = rand_template(&mut rng);
        for val in spec.domain.valuations() {
            let graph = instantiate(&spec, &val);
            let reps = repetition_vector(&graph).unwrap();
            let doubled: Vec<u64> = reps.iter().map(|r| r * 2).collect();
            assert!(
                is_balanced(&graph, &doubled),
                "case {case} at {val}: scaling broke balance"
            );
            let g = doubled.iter().copied().filter(|&r| r > 0).fold(0, gcd);
            assert!(g >= 2, "case {case} at {val}: doubled vector coprime?");
        }
    }
}

/// A parameter actually drives the solution: for a template whose rates
/// reference a parameter, different valuations yield different
/// repetition vectors (for at least one pair in the domain) — the
/// re-scheduling at a swap is not vacuous.
#[test]
fn valuations_change_the_schedule_when_rates_are_parameterized() {
    let domain = ParamDomain::new().with("k", 1, 3);
    let spec = TemplateSpec {
        domain,
        rates: vec![(RateExpr::param("k"), RateExpr::Const(1))],
    };
    let mut seen = std::collections::HashSet::new();
    for val in spec.domain.valuations() {
        let graph = instantiate(&spec, &val);
        seen.insert(repetition_vector(&graph).unwrap());
    }
    assert_eq!(
        seen.len(),
        3,
        "each decimation factor needs its own schedule"
    );
}
