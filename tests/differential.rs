//! Cross-crate differential tests: every benchmark, under every
//! SIMDization configuration and both auto-vectorizer presets, must
//! preserve program output (bit-exactly, except for the ICC preset's
//! documented FP-reduction reassociation).

use macross_repro::autovec::{autovectorize_graph, AutovecConfig};
use macross_repro::benchsuite;
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::streamir::graph::Graph;
use macross_repro::vm::{run_scheduled, Machine, RunResult};

fn source_of(g: &Graph) -> macross_repro::streamir::NodeId {
    g.node_ids()
        .find(|&id| g.in_edges(id).is_empty())
        .expect("graph has a source")
}

fn run_aligned(
    g1: &Graph,
    s1: &Schedule,
    g2: &Graph,
    s2: &Schedule,
    m: &Machine,
    iters: u64,
) -> (RunResult, RunResult) {
    let (src1, src2) = (source_of(g1), source_of(g2));
    let (r1, r2) = (s1.reps[src1.0 as usize], s2.reps[src2.0 as usize]);
    let l = macross_repro::sdf::lcm(r1, r2);
    let mut s1 = s1.clone();
    let mut s2 = s2.clone();
    s1.scale(l / r1);
    s2.scale(l / r2);
    (
        run_scheduled(g1, &s1, m, iters).unwrap(),
        run_scheduled(g2, &s2, m, iters).unwrap(),
    )
}

fn assert_exact(name: &str, cfg: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(
        a.output.len(),
        b.output.len(),
        "{name}/{cfg}: throughput mismatch"
    );
    assert!(!a.output.is_empty(), "{name}/{cfg}: empty output");
    for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
        assert!(
            x.bits_eq(*y),
            "{name}/{cfg}: output {i} differs: {x:?} vs {y:?}"
        );
    }
}

fn check_options(machine: &Machine, opts: &SimdizeOptions, cfg: &str) {
    for b in benchsuite::all() {
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let simd =
            macro_simdize(&g, machine, opts).unwrap_or_else(|e| panic!("{}/{cfg}: {e}", b.name));
        let (a, c) = run_aligned(&g, &sched, &simd.graph, &simd.schedule, machine, 2);
        assert_exact(b.name, cfg, &a, &c);
    }
}

#[test]
fn all_benchmarks_all_transforms() {
    check_options(&Machine::core_i7(), &SimdizeOptions::all(), "all");
}

#[test]
fn all_benchmarks_single_only() {
    check_options(
        &Machine::core_i7(),
        &SimdizeOptions::single_only(),
        "single_only",
    );
}

#[test]
fn all_benchmarks_no_reorder() {
    check_options(
        &Machine::core_i7(),
        &SimdizeOptions::no_reorder(),
        "no_reorder",
    );
}

#[test]
fn all_benchmarks_vertical_only() {
    let opts = SimdizeOptions {
        horizontal: false,
        ..SimdizeOptions::all()
    };
    check_options(&Machine::core_i7(), &opts, "vertical_only");
}

#[test]
fn all_benchmarks_horizontal_only() {
    let opts = SimdizeOptions {
        single: false,
        vertical: false,
        permute_opt: false,
        reorder_opt: false,
        ..SimdizeOptions::all()
    };
    check_options(&Machine::core_i7(), &opts, "horizontal_only");
}

#[test]
fn all_benchmarks_with_sagu_machine() {
    check_options(
        &Machine::core_i7_with_sagu(),
        &SimdizeOptions::all(),
        "sagu",
    );
}

#[test]
fn all_benchmarks_wide_simd() {
    for sw in [2usize, 8] {
        check_options(
            &Machine::wide(sw),
            &SimdizeOptions::all(),
            &format!("wide{sw}"),
        );
    }
}

#[test]
fn all_benchmarks_neon_like() {
    // The Neon-like target lacks vector transcendentals; actors using them
    // must be skipped, and the result still correct.
    check_options(&Machine::neon_like(), &SimdizeOptions::all(), "neon");
}

#[test]
fn gcc_autovec_is_bit_exact() {
    let machine = Machine::core_i7();
    for b in benchsuite::all() {
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let a = run_scheduled(&g, &sched, &machine, 2).unwrap();
        let mut vg = g.clone();
        autovectorize_graph(&mut vg, &AutovecConfig::gcc_like(4));
        let c = run_scheduled(&vg, &sched, &machine, 2).unwrap();
        assert_exact(b.name, "gcc_autovec", &a, &c);
    }
}

#[test]
fn icc_autovec_is_approximately_exact() {
    // ICC's default fast-FP model reassociates reductions; outputs may
    // differ in low-order bits but must stay numerically close.
    let machine = Machine::core_i7();
    for b in benchsuite::all() {
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let a = run_scheduled(&g, &sched, &machine, 2).unwrap();
        let mut vg = g.clone();
        autovectorize_graph(&mut vg, &AutovecConfig::icc_like(4));
        let c = run_scheduled(&vg, &sched, &machine, 2).unwrap();
        assert_eq!(a.output.len(), c.output.len(), "{}", b.name);
        for (i, (x, y)) in a.output.iter().zip(&c.output).enumerate() {
            let (x, y) = (x.as_f64(), y.as_f64());
            let tol = 1e-3 * x.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{}: output {i}: {x} vs {y}", b.name);
        }
    }
}

#[test]
fn macro_simd_then_autovec_is_bit_exact_with_gcc() {
    // The Figure-10 "Macro SIMD + Autovectorize" configuration.
    let machine = Machine::core_i7();
    for b in benchsuite::all() {
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        let mut both = simd.graph.clone();
        autovectorize_graph(&mut both, &AutovecConfig::gcc_like(4));
        let (a, c) = run_aligned(&g, &sched, &both, &simd.schedule, &machine, 2);
        assert_exact(b.name, "macro+gcc", &a, &c);
    }
}

// ---------------------------------------------------------------------------
// Bytecode engine vs. tree-walking oracle. `ExecMode` selects the engine
// per run, so one binary pits both against each other regardless of which
// one the `vm-treewalk` feature made the default.

mod engine_differential {
    use super::*;
    use macross_repro::runtime::run_threaded_mode;
    use macross_repro::vm::{run_scheduled_mode, ExecMode};

    /// Run one graph under all three engines — tree walk, plain bytecode
    /// dispatch, and bytecode with superblock kernel fusion — and demand
    /// bit-identical outputs AND identical cycle counters.
    fn assert_engines_agree(name: &str, cfg: &str, g: &Graph, sched: &Schedule, m: &Machine) {
        let tw = run_scheduled_mode(g, sched, m, 2, ExecMode::TreeWalk)
            .unwrap_or_else(|e| panic!("{name}/{cfg}/treewalk: {e}"));
        for (mode, leg) in [
            (ExecMode::Bytecode, "bytecode"),
            (ExecMode::BytecodeNoFuse, "bytecode-nofuse"),
        ] {
            let bc = run_scheduled_mode(g, sched, m, 2, mode)
                .unwrap_or_else(|e| panic!("{name}/{cfg}/{leg}: {e}"));
            assert_exact(name, &format!("{cfg}/{leg}"), &tw, &bc);
            assert_eq!(
                tw.counters, bc.counters,
                "{name}/{cfg}/{leg}: cycle counters diverge between engines"
            );
            assert_eq!(
                tw.node_cycles, bc.node_cycles,
                "{name}/{cfg}/{leg}: per-node cycles diverge between engines"
            );
        }
    }

    #[test]
    fn all_benchmarks_scalar_engines_agree() {
        let m = Machine::core_i7();
        for b in benchsuite::all() {
            let g = (b.build)();
            let sched = Schedule::compute(&g).unwrap();
            assert_engines_agree(b.name, "scalar", &g, &sched, &m);
        }
    }

    #[test]
    fn all_benchmarks_simdized_engines_agree() {
        let m = Machine::core_i7();
        for b in benchsuite::all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &m, &SimdizeOptions::all())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_engines_agree(b.name, "simdized", &simd.graph, &simd.schedule, &m);
        }
    }

    /// The threaded runtime under both engines, at 1, 2, and 4 workers:
    /// outputs bit-identical to each other and to the sequential run, and
    /// the per-core modelled counters identical across engines.
    #[test]
    fn all_benchmarks_threaded_engines_agree() {
        let m = Machine::core_i7();
        for b in benchsuite::all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &m, &SimdizeOptions::all())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let seq = run_scheduled_mode(&simd.graph, &simd.schedule, &m, 2, ExecMode::TreeWalk)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            for cores in [1u32, 2, 4] {
                // Round-robin placement: deterministic and exercises cut
                // edges without depending on the LPT heuristic.
                let assignment: Vec<u32> = (0..simd.graph.node_count())
                    .map(|i| i as u32 % cores)
                    .collect();
                let mut runs = Vec::new();
                for mode in [
                    ExecMode::TreeWalk,
                    ExecMode::Bytecode,
                    ExecMode::BytecodeNoFuse,
                ] {
                    let thr =
                        run_threaded_mode(&simd.graph, &simd.schedule, &m, &assignment, 2, mode)
                            .unwrap_or_else(|e| panic!("{}@{cores}/{mode:?}: {e}", b.name));
                    assert_eq!(
                        thr.output.len(),
                        seq.output.len(),
                        "{}@{cores}/{mode:?}: throughput mismatch",
                        b.name
                    );
                    for (i, (x, y)) in seq.output.iter().zip(&thr.output).enumerate() {
                        assert!(
                            x.bits_eq(*y),
                            "{}@{cores}/{mode:?}: output {i} differs: {x:?} vs {y:?}",
                            b.name
                        );
                    }
                    runs.push(thr);
                }
                let tw = &runs[0];
                for bc in &runs[1..] {
                    assert_eq!(
                        tw.report.core_modelled, bc.report.core_modelled,
                        "{}@{cores}: per-core modelled counters diverge between engines",
                        b.name
                    );
                }
            }
        }
    }

    /// Cost-model-planned placements (fusion, fission, collapse) under
    /// all three engines, across three communication regimes and two
    /// worker budgets: every plan's output must be bit-identical to the
    /// sequential tree-walk oracle. The cheap regime pushes the planner
    /// toward aggressive cuts and fission; the chatty regime toward
    /// fusion and collapse — both must preserve the stream exactly.
    #[test]
    fn all_benchmarks_planned_placements_agree() {
        use macross_repro::multicore::{plan_placement, CommModel};
        use macross_repro::runtime::run_threaded_placed_traced_mode;
        use macross_repro::telemetry::TraceSession;
        let m = Machine::core_i7();
        let comms = [
            CommModel {
                cycles_per_element: 1,
                sync_per_edge: 8,
            },
            CommModel::default(),
            CommModel {
                cycles_per_element: 32,
                sync_per_edge: 4096,
            },
        ];
        let mut parallel_plans = 0usize;
        let mut fissioned_plans = 0usize;
        for b in benchsuite::all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &m, &SimdizeOptions::all())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let seq = run_scheduled_mode(&simd.graph, &simd.schedule, &m, 2, ExecMode::TreeWalk)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            for comm in &comms {
                for workers in [2usize, 4] {
                    let plan = plan_placement(
                        &simd.graph,
                        &simd.schedule,
                        &seq.node_cycles,
                        workers,
                        comm,
                    );
                    if plan.cores_used > 1 {
                        parallel_plans += 1;
                    }
                    if plan.fissioned > 0 {
                        fissioned_plans += 1;
                    }
                    for mode in [
                        ExecMode::TreeWalk,
                        ExecMode::Bytecode,
                        ExecMode::BytecodeNoFuse,
                    ] {
                        let ctx = format!(
                            "{}@{workers} comm {}/{} {mode:?}",
                            b.name, comm.cycles_per_element, comm.sync_per_edge
                        );
                        let thr = run_threaded_placed_traced_mode(
                            &simd.graph,
                            &simd.schedule,
                            &m,
                            &plan.placement,
                            2,
                            &TraceSession::disabled(),
                            mode,
                        )
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                        assert_eq!(
                            thr.report.cut_edges, plan.cut_edges,
                            "{ctx}: runtime cut edges disagree with the plan"
                        );
                        assert_eq!(
                            thr.output.len(),
                            seq.output.len(),
                            "{ctx}: throughput mismatch"
                        );
                        for (i, (x, y)) in seq.output.iter().zip(&thr.output).enumerate() {
                            assert!(x.bits_eq(*y), "{ctx}: output {i} differs: {x:?} vs {y:?}");
                        }
                    }
                }
            }
        }
        // If every plan collapsed the parallel legs above were vacuous.
        assert!(parallel_plans > 0, "no plan ever chose more than one core");
        assert!(fissioned_plans > 0, "no plan ever fissioned a stage");
    }

    /// Explicit-fission sweep: for every stage of every benchmark that
    /// passes the fission legality check, split it across two cores (the
    /// rest of the graph on core 0) and demand output bit-identical to
    /// the sequential oracle. This covers the deal/merge rotation on
    /// stages the cost-model planner would never pick.
    #[test]
    fn all_benchmarks_explicit_fission_agrees() {
        use macross_repro::runtime::{run_threaded_placed_traced_mode, FissionSpec, Placement};
        use macross_repro::telemetry::TraceSession;
        let m = Machine::core_i7();
        let mut fissioned = 0usize;
        for b in benchsuite::all() {
            let g = (b.build)();
            let simd = macro_simdize(&g, &m, &SimdizeOptions::all())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let seq = run_scheduled_mode(&simd.graph, &simd.schedule, &m, 2, ExecMode::TreeWalk)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            // Cap legal candidates per benchmark to bound test time; the
            // suite-wide floor below keeps the sweep honest.
            let mut budget = 4usize;
            for node in simd.graph.node_ids() {
                if budget == 0 {
                    break;
                }
                let placement = Placement {
                    assignment: vec![0; simd.graph.node_count()],
                    fission: vec![FissionSpec {
                        node,
                        replicas: vec![0, 1],
                    }],
                };
                if placement.validate(&simd.graph, &simd.schedule).is_err() {
                    continue;
                }
                budget -= 1;
                fissioned += 1;
                for mode in [ExecMode::TreeWalk, ExecMode::Bytecode] {
                    let ctx = format!("{} fission node {} {mode:?}", b.name, node.0);
                    let thr = run_threaded_placed_traced_mode(
                        &simd.graph,
                        &simd.schedule,
                        &m,
                        &placement,
                        2,
                        &TraceSession::disabled(),
                        mode,
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    assert_eq!(
                        thr.output.len(),
                        seq.output.len(),
                        "{ctx}: throughput mismatch"
                    );
                    for (i, (x, y)) in seq.output.iter().zip(&thr.output).enumerate() {
                        assert!(x.bits_eq(*y), "{ctx}: output {i} differs: {x:?} vs {y:?}");
                    }
                }
            }
        }
        assert!(
            fissioned >= 3,
            "fission legality rejected nearly every stage in the suite ({fissioned} legal)"
        );
    }

    /// Guest-program failures surface identically through both engines.
    #[test]
    fn engine_errors_match() {
        use macross_repro::streamir::builder::StreamSpec;
        use macross_repro::streamir::edsl::*;
        use macross_repro::streamir::filter::Filter;
        use macross_repro::streamir::types::{ScalarTy, Ty};
        // A filter that underflows its internal channel on first firing.
        let mut bad = Filter::new("bad", 1, 1, 1);
        let ch = bad.add_chan("ch", Ty::Scalar(ScalarTy::I32));
        bad.work = {
            let mut b = B::new();
            b.push(pop() + lpop(ch));
            b.build()
        };
        let g = StreamSpec::pipeline(vec![
            {
                let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
                src.work(|b| {
                    b.push(c(1i32));
                });
                src.build_spec()
            },
            StreamSpec::Filter {
                filter: bad,
                out_elem: ScalarTy::I32,
            },
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let tw = run_scheduled_mode(&g, &sched, &m, 1, ExecMode::TreeWalk).unwrap_err();
        let bc = run_scheduled_mode(&g, &sched, &m, 1, ExecMode::Bytecode).unwrap_err();
        assert_eq!(tw.to_string(), bc.to_string());
    }
}

#[test]
fn simdization_is_idempotent_protection() {
    // Running the driver on an already-SIMDized graph must not vectorize
    // anything twice (vectorized actors are detected and skipped).
    let machine = Machine::core_i7();
    let b = benchsuite::by_name("DCT").unwrap();
    let g = (b.build)();
    let once = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let twice = macro_simdize(&once.graph, &machine, &SimdizeOptions::all()).unwrap();
    assert!(
        twice.report.single_actors.is_empty(),
        "{:?}",
        twice.report.single_actors
    );
    assert!(twice.report.vertical_chains.is_empty());
    assert!(twice.report.horizontal_groups.is_empty());
}
