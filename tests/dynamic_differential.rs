//! Dynamic-rate differential suite: every dynamic benchmark × scripted
//! parameter trace × worker count × engine mode, driven through the
//! multi-tenant service, must be bit-identical to the oracle — the same
//! trace replayed with every configuration compiled from scratch, no
//! schedule cache, no compile-once cache, a fresh engine per segment.
//!
//! A second axis pins the swap protocol itself: a trace that re-sets the
//! *current* valuation still runs a full swap at every boundary (export
//! carrier, fetch configuration, resume), and its output must equal an
//! uninterrupted static run of the same configuration.

use macross::SimdizeOptions;
use macross_repro::benchsuite::dynamic::{dynamic, DynBenchmark};
use macross_repro::pdf::{oracle_replay, ParamTrace};
use macross_repro::runtime::FaultPlan;
use macross_repro::service::{ServiceConfig, StreamService};
use macross_repro::streamir::types::Value;
use macross_repro::vm::{ExecMode, Machine};
use std::sync::Arc;

const MODES: [ExecMode; 2] = [ExecMode::Bytecode, ExecMode::BytecodeNoFuse];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Drive one trace through the service as a dynamic session and return
/// the full sink outputs.
fn drive_service(
    b: &DynBenchmark,
    trace: &ParamTrace,
    workers: usize,
    mode: ExecMode,
) -> Vec<Vec<Value>> {
    let service = StreamService::new(
        Machine::core_i7(),
        ServiceConfig {
            workers,
            mode,
            ..ServiceConfig::default()
        },
    );
    let template = Arc::new((b.template)());
    let id = service
        .submit_dynamic(b.name, &template, &(b.init)(), FaultPlan::none())
        .unwrap_or_else(|e| panic!("{}/{}: submit: {e}", b.name, trace.name));
    for step in &trace.steps {
        for (name, value) in &step.sets {
            service
                .set_param(id, name, *value)
                .unwrap_or_else(|e| panic!("{}/{}: set_param: {e}", b.name, trace.name));
        }
        service
            .feed(id, step.iters)
            .unwrap_or_else(|e| panic!("{}/{}: feed: {e}", b.name, trace.name));
    }
    let report = service
        .close(id)
        .unwrap_or_else(|e| panic!("{}/{}: close: {e}", b.name, trace.name));
    assert!(
        !report.faulted,
        "{}/{}: faulted: {:?}",
        b.name, trace.name, report.failures
    );
    assert_eq!(report.iters_done, trace.total_iters());
    report.outputs
}

fn assert_rows_eq(got: &[Vec<Value>], want: &[Vec<Value>], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: sink count");
    for (s, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{ctx}: sink {s} output count");
        for (i, (x, y)) in g.iter().zip(w).enumerate() {
            assert!(
                x.bits_eq(*y),
                "{ctx}: sink {s} value {i} differs: {x:?} vs {y:?}"
            );
        }
    }
}

/// The headline property: service execution with re-scheduling and both
/// cache layers matches scratch recompilation, bit for bit, for every
/// benchmark, trace, worker count, and engine mode.
#[test]
fn dynamic_sessions_match_the_scratch_oracle() {
    let machine = Machine::core_i7();
    let opts = SimdizeOptions::all();
    for b in dynamic() {
        let template = (b.template)();
        for trace in (b.traces)() {
            for mode in MODES {
                let want = oracle_replay(&template, &(b.init)(), &trace, &machine, &opts, mode)
                    .unwrap_or_else(|e| panic!("{}/{}: oracle: {e}", b.name, trace.name));
                for workers in WORKER_COUNTS {
                    let got = drive_service(&b, &trace, workers, mode);
                    let ctx = format!("{}/{} mode={mode:?} workers={workers}", b.name, trace.name);
                    assert_rows_eq(&got, &want, &ctx);
                }
            }
        }
    }
}

/// Same-valuation swaps are observationally free: a trace that re-sets
/// the current parameter value at every boundary produces exactly the
/// output of one uninterrupted static session over the instantiated
/// graph.
#[test]
fn same_valuation_swaps_match_an_uninterrupted_run() {
    for b in dynamic() {
        let template = Arc::new((b.template)());
        let init = (b.init)();
        // Re-set the initial value at two boundaries; 9 iterations total.
        let name = init.names().next().unwrap().to_string();
        let value = init.get(&name).unwrap();
        let trace = ParamTrace::new("reset")
            .then(&[], 3)
            .then(&[(name.as_str(), value)], 3)
            .then(&[(name.as_str(), value)], 3);
        for mode in MODES {
            let got = drive_service(&b, &trace, 2, mode);
            // The static reference: same graph, same iterations, no swaps.
            let service = StreamService::new(
                Machine::core_i7(),
                ServiceConfig {
                    workers: 2,
                    mode,
                    ..ServiceConfig::default()
                },
            );
            let graph = template.instantiate(&init).unwrap();
            let id = service.submit(b.name, &graph, FaultPlan::none()).unwrap();
            service.feed(id, trace.total_iters()).unwrap();
            let report = service.close(id).unwrap();
            assert!(!report.faulted);
            let ctx = format!("{}/reset mode={mode:?}", b.name);
            assert_rows_eq(&got, &report.outputs, &ctx);
        }
    }
}

/// Repeat valuations must be served from the schedule cache: across a
/// whole trace, misses equal distinct valuations (no evictions at these
/// sizes) and every lookup is a reconfiguration.
#[test]
fn schedule_cache_serves_repeat_valuations() {
    for b in dynamic() {
        for trace in (b.traces)() {
            let service = StreamService::new(
                Machine::core_i7(),
                ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
            );
            let template = Arc::new((b.template)());
            let id = service
                .submit_dynamic(b.name, &template, &(b.init)(), FaultPlan::none())
                .unwrap();
            for step in &trace.steps {
                for (name, value) in &step.sets {
                    service.set_param(id, name, *value).unwrap();
                }
                service.feed(id, step.iters).unwrap();
            }
            service.close(id).unwrap();
            let s = service.schedule_cache_stats();
            assert_eq!(
                s.reconfigurations,
                1 + trace.reconfigurations(),
                "{}/{}: install count",
                b.name,
                trace.name
            );
            assert_eq!(s.hits + s.misses, s.reconfigurations);
            assert_eq!(s.evictions, 0);
            assert_eq!(
                s.misses, s.distinct_valuations,
                "{}/{}: a repeat valuation recompiled",
                b.name, trace.name
            );
        }
    }
}
