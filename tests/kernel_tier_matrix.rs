//! Property suite for the width-parameterized kernel backend matrix:
//! random vector programs — permutations, casts, float and integer
//! comparisons (dword and qword), `i64` multiplies, intrinsics, and
//! multiply-add ladders that the chain pass collapses —
//! must run bit-identically on every *available* tier
//! (`MACROSS_KERNEL_TIER=portable|sse2|avx2`) versus the scalar dispatch
//! loop (`ExecMode::BytecodeNoFuse`) and the tree-walk oracle.
//!
//! The whole suite is ONE `#[test]` because it owns two process-global
//! environment variables (`MACROSS_KERNEL_TIER` to force tiers and
//! `MACROSS_KERNEL_FUSE_THRESHOLD` to make the profitability gate accept
//! small random kernels); parallel test threads in this binary would
//! race on them.

use macross_repro::benchsuite::util::source_f32;
use macross_repro::sdf::Schedule;
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::FilterBuilder;
use macross_repro::streamir::expr::{BinOp, Expr, Intrinsic, LValue, VarId};
use macross_repro::streamir::graph::{Graph, Node};
use macross_repro::streamir::stmt::Stmt;
use macross_repro::streamir::types::{ScalarTy, Ty, Value};
use macross_repro::vm::{
    compile_filter_opts, run_scheduled_mode, ExecMode, KernelTier, Machine, RunResult,
};

/// Deterministic 64-bit LCG (no external rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Build a random vector filter: pops two `w`-lane f32 vectors, applies
/// a random sequence of vector ops across f32/f64/i32 locals, pushes one
/// vector back. Every construct it can emit is one the backend matrix
/// handles natively on at least one tier (perms, compares, `CastFF`,
/// `sqrt`/`abs`/`floor`, specialized binary arithmetic, chainable
/// multiply-add ladders), so the differential actually exercises the
/// intrinsic paths rather than the shared portable fallback.
fn random_graph(rng: &mut Lcg, w: usize) -> Graph {
    let mut fb = FilterBuilder::new("rnd", 2 * w, 2 * w, w, ScalarTy::F32);
    let f: Vec<VarId> = (0..4)
        .map(|i| fb.local(format!("f{i}"), Ty::Vector(ScalarTy::F32, w)))
        .collect();
    let d = fb.local("d0", Ty::Vector(ScalarTy::F64, w));
    let n: Vec<VarId> = (0..2)
        .map(|i| fb.local(format!("n{i}"), Ty::Vector(ScalarTy::I32, w)))
        .collect();
    let q: Vec<VarId> = (0..2)
        .map(|i| fb.local(format!("q{i}"), Ty::Vector(ScalarTy::I64, w)))
        .collect();
    let steps = 10 + rng.pick(16);
    let plan: Vec<(usize, usize, usize, usize)> = (0..steps)
        .map(|_| (rng.pick(8), rng.pick(4), rng.pick(4), rng.pick(4)))
        .collect();
    let out = f[rng.pick(4)];
    fb.work(move |b| {
        let var = |id: VarId| Box::new(Expr::Var(id));
        b.stmt(Stmt::Assign(LValue::Var(f[0]), Expr::VPop { width: w }));
        b.stmt(Stmt::Assign(LValue::Var(f[1]), Expr::VPop { width: w }));
        // Center the inputs so negatives reach abs/floor/compares.
        b.stmt(Stmt::Assign(
            LValue::Var(f[1]),
            Expr::bin(
                BinOp::Sub,
                Expr::Var(f[1]),
                Expr::Splat(Box::new(Expr::Const(Value::F32(7.25))), w),
            ),
        ));
        b.stmt(Stmt::Assign(LValue::Var(f[2]), Expr::Var(f[0])));
        b.stmt(Stmt::Assign(LValue::Var(f[3]), Expr::Var(f[1])));
        for &(kind, t, x, y) in &plan {
            let (ft, fx, fy) = (f[t], f[x], f[y]);
            match kind {
                // Specialized binary arithmetic (chain fodder when runs
                // form; Div exercises the IEEE-exact narrow path).
                0 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Binary(
                            [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div][x % 4],
                            var(fx),
                            var(fy),
                        ),
                    ));
                }
                // Permutation kernels (the paper's extract_even/odd).
                1 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        if y % 2 == 0 {
                            Expr::PermuteEven(var(fx), var(fy))
                        } else {
                            Expr::PermuteOdd(var(fx), var(fy))
                        },
                    ));
                }
                // sqrt over abs (non-negative domain keeps NaNs out while
                // still hitting the intrinsic path).
                2 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Call(
                            Intrinsic::Sqrt,
                            vec![Expr::Call(Intrinsic::Abs, vec![Expr::Var(fx)])],
                        ),
                    ));
                }
                3 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Call(
                            if y % 2 == 0 {
                                Intrinsic::Floor
                            } else {
                                Intrinsic::Abs
                            },
                            vec![Expr::Var(fx)],
                        ),
                    ));
                }
                // Ordered compares lower to mask kernels; the result is
                // an i32 0/1 vector in this IR, folded back via a cast.
                4 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(n[0]),
                        Expr::Binary(
                            [
                                BinOp::Lt,
                                BinOp::Le,
                                BinOp::Gt,
                                BinOp::Ge,
                                BinOp::Eq,
                                BinOp::Ne,
                            ][x % 6],
                            var(fx),
                            var(fy),
                        ),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Cast(ScalarTy::F32, var(n[0])),
                    ));
                }
                // f32 -> f64 -> f32 round trip (CastFF both ways).
                5 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(d),
                        Expr::Cast(ScalarTy::F64, var(fx)),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Cast(ScalarTy::F32, var(d)),
                    ));
                }
                // Integer detour: f32 -> i32, bitwise/arithmetic or a
                // dword compare mask (`CmpI` i32 on every tier), back.
                6 => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(n[0]),
                        Expr::Cast(ScalarTy::I32, var(fx)),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(n[1]),
                        Expr::Cast(ScalarTy::I32, var(fy)),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(n[0]),
                        Expr::Binary(
                            [
                                BinOp::And,
                                BinOp::Or,
                                BinOp::Xor,
                                BinOp::Add,
                                BinOp::Mul,
                                BinOp::Lt,
                                BinOp::Ge,
                                BinOp::Eq,
                            ][y % 8],
                            var(n[0]),
                            var(n[1]),
                        ),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Cast(ScalarTy::F32, var(n[0])),
                    ));
                }
                // 64-bit detour: qword multiply (the `pmuludq`
                // decomposition on the x86 tiers) and qword compare
                // masks (`vpcmpgtq` on AVX2, portable on SSE2), folded
                // back through the saturating cast.
                _ => {
                    b.stmt(Stmt::Assign(
                        LValue::Var(q[0]),
                        Expr::Cast(ScalarTy::I64, var(fx)),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(q[1]),
                        Expr::Cast(ScalarTy::I64, var(fy)),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(q[0]),
                        Expr::Binary(
                            [BinOp::Mul, BinOp::Mul, BinOp::Add, BinOp::Xor][x % 4],
                            var(q[0]),
                            var(q[1]),
                        ),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(n[0]),
                        Expr::Binary(
                            [
                                BinOp::Lt,
                                BinOp::Le,
                                BinOp::Gt,
                                BinOp::Ge,
                                BinOp::Eq,
                                BinOp::Ne,
                            ][y % 6],
                            var(q[0]),
                            var(q[1]),
                        ),
                    ));
                    b.stmt(Stmt::Assign(
                        LValue::Var(ft),
                        Expr::Cast(ScalarTy::F32, var(n[0])),
                    ));
                }
            }
        }
        b.stmt(Stmt::VPush {
            value: Expr::Var(out),
            width: w,
        });
    });
    StreamSpec::pipeline(vec![
        source_f32("src", 2 * w, 4096, 0.375),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("random graph")
}

fn bits_eq(a: &RunResult, b: &RunResult) -> bool {
    a.output.len() == b.output.len() && a.output.iter().zip(&b.output).all(|(x, y)| x.bits_eq(*y))
}

/// Count fused kernels in the random filter so the suite can prove it is
/// not vacuously comparing unfused dispatch against itself.
fn fused_kernels(g: &Graph, machine: &Machine) -> usize {
    for (id, node) in g.nodes() {
        let Node::Filter(fl) = node else { continue };
        if fl.name != "rnd" {
            continue;
        }
        let in_e = g.single_in_edge(id).map(|e| g.edge(e).elem);
        let out_e = g.single_out_edge(id).map(|e| g.edge(e).elem);
        return compile_filter_opts(fl, in_e, out_e, machine, true)
            .map(|p| p.kernels.len())
            .unwrap_or(0);
    }
    0
}

#[test]
fn random_vector_programs_are_bit_identical_across_all_tiers() {
    let machine = Machine::core_i7();
    let inherited_tier = std::env::var("MACROSS_KERNEL_TIER").ok();
    let inherited_threshold = std::env::var("MACROSS_KERNEL_FUSE_THRESHOLD").ok();
    // Let small random kernels through the profitability gate; the point
    // here is coverage, not speed.
    std::env::set_var("MACROSS_KERNEL_FUSE_THRESHOLD", "1");

    let tiers: Vec<KernelTier> = KernelTier::ALL
        .iter()
        .copied()
        .filter(|t| t.available())
        .collect();
    assert!(
        tiers.contains(&KernelTier::Portable),
        "portable tier must always be available"
    );

    let mut total_kernels = 0usize;
    for seed in 0..24u64 {
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ (seed.wrapping_mul(0x2545f4914f6cdd1d) + 1));
        let w = [4, 8][rng.pick(2)];
        let g = random_graph(&mut rng, w);
        let sched = Schedule::compute(&g).expect("schedule");
        total_kernels += fused_kernels(&g, &machine);

        std::env::remove_var("MACROSS_KERNEL_TIER");
        let tw = run_scheduled_mode(&g, &sched, &machine, 12, ExecMode::TreeWalk).expect("tw");
        let nf =
            run_scheduled_mode(&g, &sched, &machine, 12, ExecMode::BytecodeNoFuse).expect("nf");
        assert!(bits_eq(&tw, &nf), "seed {seed} w={w}: dispatch != treewalk");
        assert_eq!(tw.counters, nf.counters, "seed {seed} w={w}: counters");

        for &tier in &tiers {
            std::env::set_var("MACROSS_KERNEL_TIER", tier.label());
            let fused =
                run_scheduled_mode(&g, &sched, &machine, 12, ExecMode::Bytecode).expect("fused");
            assert!(
                bits_eq(&tw, &fused),
                "seed {seed} w={w}: tier {} diverges from the oracle",
                tier.label()
            );
            assert_eq!(
                tw.counters,
                fused.counters,
                "seed {seed} w={w}: tier {} counters diverge",
                tier.label()
            );
        }
    }
    assert!(
        total_kernels >= 12,
        "suite is near-vacuous: only {total_kernels} fused kernels across all seeds"
    );

    match inherited_tier {
        Some(v) => std::env::set_var("MACROSS_KERNEL_TIER", v),
        None => std::env::remove_var("MACROSS_KERNEL_TIER"),
    }
    match inherited_threshold {
        Some(v) => std::env::set_var("MACROSS_KERNEL_FUSE_THRESHOLD", v),
        None => std::env::remove_var("MACROSS_KERNEL_FUSE_THRESHOLD"),
    }
}
