//! Supervision tests that need no `fault-inject` build: the faults here
//! are *guest-induced* (a filter that panics its own firing via an
//! out-of-range dynamic peek, a filter whose firing is deliberately
//! slow), so the supervised runtime's failure handling — typed
//! `StageFailure`s, coordinated drain, watchdog escalation, partial
//! output — is exercised in the plain tier-1 test run.
//!
//! The injected-fault differential suite (every benchmark x worker count
//! x fault class) lives in `tests/fault_differential.rs` behind the
//! `fault-inject` feature.

use macross_repro::runtime as rt;
use macross_repro::runtime::{
    run_supervised, run_threaded, FailureCause, RuntimeError, SupervisorOptions,
};
use macross_repro::sdf::Schedule;
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::graph::{Graph, NodeId, SplitKind};
use macross_repro::streamir::types::{ScalarTy, Ty};
use macross_repro::telemetry::TraceSession;
use macross_repro::vm::Machine;
use std::time::Duration;

/// i32 counter source: 0, 1, 2, ...
fn source() -> StreamSpec {
    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    let n = src.state("n", Ty::Scalar(ScalarTy::I32));
    src.work(|b| {
        b.push(v(n));
        b.set(n, v(n) + 1i32);
    });
    src.build_spec()
}

/// Pass-through that adds 1.
fn pass(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
    fb.work(|b| {
        b.push(pop() + 1i32);
    });
    fb.build_spec()
}

/// Pass-through that blows up its own firing number `fail_at` with an
/// out-of-range dynamic peek (the tape panics, the VM catches it at the
/// firing boundary, the supervisor types it).
fn bomb(name: &str, fail_at: i32) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
    let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
    let junk = fb.local("junk", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.if_(eq(v(n), fail_at), |b| {
            b.set(junk, peek(1_000_000i32));
        });
        b.set(n, v(n) + 1i32);
        b.push(pop() + 1i32);
    });
    fb.build_spec()
}

/// Pass-through whose every firing burns a long interpreter loop — slow
/// enough that a small watchdog timeout must escalate it.
fn sloth(name: &str) -> StreamSpec {
    let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::I32);
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
    fb.work(|b| {
        b.set(acc, 0i32);
        b.for_(i, 2_000_000i32, |b| {
            b.set(acc, v(acc) + 1i32);
        });
        b.push(pop() + min(v(acc), 0i32));
    });
    fb.build_spec()
}

fn node_id(g: &Graph, name: &str) -> usize {
    g.nodes()
        .find(|(_, n)| n.name() == name)
        .map(|(id, _)| id.0 as usize)
        .unwrap_or_else(|| panic!("no node named {name}"))
}

fn supervised(
    g: &Graph,
    assignment: &[u32],
    iters: u64,
    opts: &SupervisorOptions,
) -> rt::SupervisedRun {
    let sched = Schedule::compute(g).unwrap();
    run_supervised(
        g,
        &sched,
        &Machine::core_i7(),
        assignment,
        iters,
        opts,
        &TraceSession::disabled(),
    )
    .unwrap()
}

#[test]
fn guest_panic_becomes_typed_stage_failure_with_partial_output() {
    let g = StreamSpec::pipeline(vec![source(), bomb("bomb", 3), StreamSpec::Sink])
        .build()
        .unwrap();
    let bomb_id = node_id(&g, "bomb");
    let opts = SupervisorOptions::default();
    // Clean reference: same graph without the bomb triggering (fail_at
    // beyond the firing count).
    let clean_g = StreamSpec::pipeline(vec![source(), bomb("bomb", 1 << 20), StreamSpec::Sink])
        .build()
        .unwrap();
    let clean = supervised(&clean_g, &[0, 1, 1], 8, &opts);
    assert!(clean.completed && clean.report.failures.is_empty());
    assert_eq!(clean.output.len(), 8);

    let run = supervised(&g, &[0, 1, 1], 8, &opts);
    assert!(!run.completed);
    let f = run.report.root_failure().expect("failure must be recorded");
    assert_eq!(f.stage, bomb_id);
    assert_eq!(f.firing, 3, "0-based firing index of the blown firing");
    assert_eq!(f.core, 1);
    assert_eq!(f.cause.label(), "vm");
    match &f.cause {
        FailureCause::Vm(e) => {
            let msg = e.to_string();
            assert!(msg.contains("panicked"), "panic must be typed: {msg}");
        }
        other => panic!("expected a VM cause, got {other:?}"),
    }
    // Committed output is preserved and is a prefix of the clean run: the
    // bomb completed firings 0..3, so the sink consumed exactly 3 tokens.
    assert_eq!(run.output, clean.output[..3].to_vec());
    // The report still carries the usual counters.
    assert_eq!(run.report.stages[bomb_id].firings, 3);
}

#[test]
fn legacy_entry_point_maps_failure_to_vm_error() {
    let g = StreamSpec::pipeline(vec![source(), bomb("bomb", 2), StreamSpec::Sink])
        .build()
        .unwrap();
    let sched = Schedule::compute(&g).unwrap();
    let err = run_threaded(&g, &sched, &Machine::core_i7(), &[0, 1, 1], 8).unwrap_err();
    match err {
        RuntimeError::Vm(e) => assert!(e.to_string().contains("panicked"), "{e}"),
        other => panic!("expected RuntimeError::Vm, got {other}"),
    }
}

#[test]
fn drain_with_buffered_rings_terminates_and_keeps_prefix() {
    // src runs ahead on its own core, so the src->pass ring holds
    // un-consumed tokens when the downstream bomb blows; the drain must
    // terminate anyway (no hang, upstream parks) and keep the committed
    // sink prefix.
    let g = StreamSpec::pipeline(vec![
        source(),
        pass("pass"),
        bomb("bomb", 2),
        StreamSpec::Sink,
    ])
    .build()
    .unwrap();
    let opts = SupervisorOptions::default();
    let t0 = std::time::Instant::now();
    let run = supervised(&g, &[0, 1, 1, 1], 64, &opts);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "drain must terminate promptly"
    );
    assert!(!run.completed);
    assert_eq!(
        run.report.root_failure().unwrap().stage,
        node_id(&g, "bomb")
    );
    // src produced ahead of the failure point into the ring.
    assert!(run.report.stages[node_id(&g, "src")].firings > 2);
    // Sink saw exactly the two firings the bomb completed: src 0,1 + 2.
    assert_eq!(run.output.len(), 2);
    assert_eq!(run.report.cut_edges, 1);
}

#[test]
fn watchdog_escalates_deliberately_stalled_stage() {
    let g = StreamSpec::pipeline(vec![source(), sloth("sloth"), StreamSpec::Sink])
        .build()
        .unwrap();
    let sloth_id = node_id(&g, "sloth");
    let timeout = Duration::from_millis(10);
    let opts = SupervisorOptions::default().watchdog_after(timeout);
    let run = supervised(&g, &[0, 1, 1], 4, &opts);
    assert!(!run.completed);
    let f = run.report.root_failure().unwrap();
    assert_eq!(f.stage, sloth_id);
    assert_eq!(f.cause.label(), "watchdog");
    match f.cause {
        FailureCause::Watchdog { waited_nanos } => {
            assert!(
                waited_nanos >= timeout.as_nanos() as u64,
                "escalation must report at least the timeout, got {waited_nanos}"
            );
        }
        ref other => panic!("expected a watchdog cause, got {other:?}"),
    }
    // The condemned firing's output was quarantined, not committed.
    assert!(run.output.is_empty());
}

#[test]
fn second_failure_during_drain_is_recorded_once_and_terminates() {
    // Two bombs on different cores, same early fuse: whichever fails
    // first switches the run to draining, and the second bomb then blows
    // *during the drain* — the drain must record it, mark the stage dead,
    // and still terminate (double-drain idempotence).
    let mk_bomb = |name: &str| bomb(name, 3);
    let g = StreamSpec::pipeline(vec![
        source(),
        StreamSpec::SplitJoin {
            split: SplitKind::Duplicate,
            branches: vec![
                StreamSpec::pipeline(vec![mk_bomb("bombA")]),
                StreamSpec::pipeline(vec![mk_bomb("bombB")]),
            ],
            join: vec![1, 1],
        },
        StreamSpec::Sink,
    ])
    .build()
    .unwrap();
    let a = node_id(&g, "bombA");
    let b = node_id(&g, "bombB");
    // src+splitter on core 0, each bomb alone on its own core, join+sink
    // on core 3.
    let mut assignment = vec![0u32; g.node_count()];
    assignment[a] = 1;
    assignment[b] = 2;
    for (id, n) in g.nodes() {
        if matches!(
            n,
            macross_repro::streamir::graph::Node::Joiner(_)
                | macross_repro::streamir::graph::Node::Sink
        ) {
            assignment[id.0 as usize] = 3;
        }
    }
    let run = supervised(&g, &assignment, 16, &SupervisorOptions::default());
    assert!(!run.completed);
    let failed: Vec<usize> = run.report.failures.iter().map(|f| f.stage).collect();
    assert!(failed.contains(&a), "bombA must fail: {failed:?}");
    assert!(failed.contains(&b), "bombB must fail: {failed:?}");
    assert_eq!(failed.len(), 2, "each bomb fails exactly once: {failed:?}");
    for f in &run.report.failures {
        assert_eq!(f.firing, 3);
        assert_eq!(f.cause.label(), "vm");
    }
    // The joiner needs both branches per output pair; with both blown at
    // firing 3 the sink got at most 3 pairs' worth of tokens.
    assert!(run.output.len() <= 6, "got {}", run.output.len());
}

#[test]
fn supervised_clean_run_matches_legacy_entry_point() {
    let g = StreamSpec::pipeline(vec![source(), pass("p1"), pass("p2"), StreamSpec::Sink])
        .build()
        .unwrap();
    let sched = Schedule::compute(&g).unwrap();
    let m = Machine::core_i7();
    let legacy = run_threaded(&g, &sched, &m, &[0, 0, 1, 1], 12).unwrap();
    let sup = supervised(&g, &[0, 0, 1, 1], 12, &SupervisorOptions::default());
    assert!(sup.completed);
    assert!(sup.report.failures.is_empty());
    assert_eq!(sup.output, legacy.output);
    let _ = NodeId(0);
}
