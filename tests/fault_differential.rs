//! Fault differential suite (requires `--features fault-inject`).
//!
//! For every benchmark in the suite, across {1, 2, 4} workers, inject
//! each fault class at a deterministic mid-run `(stage, firing)` address
//! and pin the supervision contract:
//!
//! - **fatal** classes (panic, poisoned tape, stalled firing under a
//!   watchdog) end in a clean typed [`StageFailure`] — no hang, no
//!   process abort, and the partial sink output is a prefix of the clean
//!   run's (nothing already committed is lost or corrupted);
//! - **robustness** classes (delayed ring flush, swallowed unparks) are
//!   absorbed: the run completes bit-identically to the clean run;
//! - failures are deterministic: the same plan reproduces the identical
//!   failure signature, both directly and via a serialized
//!   [`ReplayBundle`] round-trip.
//!
//! The engine under test is the build default (`ExecMode::default()`), so
//! the nightly matrix covers both engines by toggling `vm-treewalk`.
#![cfg(feature = "fault-inject")]

use macross_bench::replay::{failure_signature, make_bundle, run_bundle};
use macross_repro::benchsuite;
use macross_repro::runtime::{
    run_supervised, run_supervised_placed, FaultKind, FaultPlan, FissionSpec, Placement,
    SupervisedRun, SupervisorOptions, FAULTS_COMPILED,
};
use macross_repro::sdf::Schedule;
use macross_repro::streamir::graph::{Graph, Node};
use macross_repro::telemetry::TraceSession;
use macross_repro::vm::{ExecMode, Machine};
use std::time::{Duration, Instant};

const CORE_COUNTS: [usize; 3] = [1, 2, 4];
const WATCHDOG: Duration = Duration::from_millis(25);
/// Generous bound that still catches a wedged drain or a leaked blocking
/// wait long before CI does.
const NO_HANG: Duration = Duration::from_secs(30);

struct Target {
    graph: Graph,
    schedule: Schedule,
    assignment: Vec<u32>,
    iters: u64,
    clean: SupervisedRun,
    /// Filter stage chosen for injection and its mid-run firing index.
    stage: usize,
    firing: u64,
}

fn run_once(
    graph: &Graph,
    schedule: &Schedule,
    assignment: &[u32],
    iters: u64,
    plan: FaultPlan,
    watchdog: Option<Duration>,
) -> SupervisedRun {
    let opts = SupervisorOptions {
        mode: ExecMode::default(),
        watchdog,
        stage_timeouts: Vec::new(),
        plan,
    };
    let t0 = Instant::now();
    let out = run_supervised(
        graph,
        schedule,
        &Machine::core_i7(),
        assignment,
        iters,
        &opts,
        &TraceSession::disabled(),
    )
    .unwrap();
    assert!(
        t0.elapsed() < NO_HANG,
        "run exceeded the no-hang bound ({NO_HANG:?})"
    );
    out
}

fn run(t: &Target, plan: FaultPlan, watchdog: Option<Duration>) -> SupervisedRun {
    run_once(
        &t.graph,
        &t.schedule,
        &t.assignment,
        t.iters,
        plan,
        watchdog,
    )
}

/// Build the injection target for one (benchmark, cores) cell: simdize +
/// place exactly like the driver, run clean once, and pick the first
/// filter stage with at least two firings as the victim.
fn target(bench: &benchsuite::Benchmark, cores: usize) -> Target {
    let machine = Machine::core_i7();
    let graph = (bench.build)();
    let (graph, schedule, assignment) =
        macross_bench::replay::campaign_placement(&graph, &machine, cores).unwrap();
    let iters = bench.iters.min(6);
    let clean = run_once(
        &graph,
        &schedule,
        &assignment,
        iters,
        FaultPlan::none(),
        None,
    );
    assert!(
        clean.completed,
        "{}@{cores}: clean run must complete",
        bench.name
    );
    let (stage, firings) = graph
        .nodes()
        .filter(|(_, n)| matches!(n, Node::Filter(_)))
        .map(|(id, _)| (id.0 as usize, clean.report.stages[id.0 as usize].firings))
        .find(|&(_, firings)| firings >= 2)
        .unwrap_or_else(|| panic!("{}@{cores}: no filter fired twice", bench.name));
    Target {
        graph,
        schedule,
        assignment,
        iters,
        clean,
        stage,
        firing: firings / 2,
    }
}

/// Each sink's partial stream must be a prefix of the clean run's.
fn assert_prefix(bench: &str, cores: usize, clean: &SupervisedRun, failed: &SupervisedRun) {
    for (sink, vals) in failed.outputs.iter().enumerate() {
        let reference = &clean.outputs[sink];
        assert!(
            vals.len() <= reference.len(),
            "{bench}@{cores}: sink {sink} produced beyond the clean run"
        );
        for (i, (got, want)) in vals.iter().zip(reference.iter()).enumerate() {
            assert!(
                got.bits_eq(*want),
                "{bench}@{cores}: sink {sink} diverged at {i}: {got:?} vs {want:?}"
            );
        }
    }
}

// The whole file is gated on the feature, so injection must be compiled.
const _: () = assert!(FAULTS_COMPILED);

/// Fault injection through the fission deal/merge path: split a legal
/// stage across two cores, then pin the same supervision contract on the
/// *fissioned* stage — a panicking replica fails typed with the sink
/// prefix intact and a deterministic signature, and a swallowed unpark on
/// a replica ring is absorbed bit-identically. Covers the failure paths
/// the whole-stage matrix above can never reach.
#[test]
fn injected_faults_under_fission_fail_clean() {
    let machine = Machine::core_i7();
    let mut covered = 0usize;
    for bench in benchsuite::all() {
        let graph = (bench.build)();
        let (graph, schedule, _) =
            macross_bench::replay::campaign_placement(&graph, &machine, 1).unwrap();
        // First stage the legality check accepts, split across two cores.
        let Some(placement) = graph.node_ids().find_map(|node| {
            let p = Placement {
                assignment: vec![0; graph.node_count()],
                fission: vec![FissionSpec {
                    node,
                    replicas: vec![0, 1],
                }],
            };
            p.validate(&graph, &schedule).is_ok().then_some(p)
        }) else {
            continue;
        };
        covered += 1;
        let victim = placement.fission[0].node.0 as usize;
        let label = format!("{} fission stage {victim}", bench.name);
        let iters = bench.iters.min(6);
        let run_placed = |plan: FaultPlan| -> SupervisedRun {
            let opts = SupervisorOptions {
                mode: ExecMode::default(),
                watchdog: None,
                stage_timeouts: Vec::new(),
                plan,
            };
            let t0 = Instant::now();
            let out = run_supervised_placed(
                &graph,
                &schedule,
                &machine,
                &placement,
                iters,
                &opts,
                &TraceSession::disabled(),
            )
            .unwrap();
            assert!(
                t0.elapsed() < NO_HANG,
                "{label}: run exceeded the no-hang bound ({NO_HANG:?})"
            );
            out
        };
        let clean = run_placed(FaultPlan::none());
        assert!(clean.completed, "{label}: clean run must complete");
        let firings = clean.report.stages[victim].firings;
        assert!(firings >= 2, "{label}: victim fired only {firings} times");
        let firing = firings / 2;

        // Fatal: a replica panic mid-rotation fails typed, prefix intact.
        let plan = FaultPlan::single(victim, firing, FaultKind::Panic);
        let failed = run_placed(plan.clone());
        assert!(!failed.completed, "{label}: panic must fail the run");
        let f = failed
            .report
            .root_failure()
            .unwrap_or_else(|| panic!("{label}: panic recorded no failure"));
        assert_eq!((f.stage, f.firing), (victim, firing), "{label}");
        assert_eq!(f.cause.label(), "panic", "{label}: {f}");
        assert_prefix(bench.name, 2, &clean, &failed);
        let again = run_placed(plan);
        assert_eq!(
            failure_signature(&failed.report.failures),
            failure_signature(&again.report.failures),
            "{label}: failure signature must be deterministic"
        );

        // Robustness: a swallowed unpark on the replica rings is absorbed.
        let out = run_placed(FaultPlan::single(
            victim,
            firing,
            FaultKind::DropUnpark { count: 2 },
        ));
        assert!(out.completed, "{label}: dropped unpark must be absorbed");
        assert!(out.report.failures.is_empty(), "{label}");
        assert_eq!(out.output.len(), clean.output.len(), "{label}: throughput");
        for (i, (a, b)) in out.output.iter().zip(&clean.output).enumerate() {
            assert!(
                a.bits_eq(*b),
                "{label}: output {i} diverged: {a:?} vs {b:?}"
            );
        }
    }
    assert!(
        covered >= 3,
        "fission legality rejected nearly every benchmark ({covered} covered)"
    );
}

#[test]
fn injected_faults_fail_clean_and_replay_identically() {
    let machine = Machine::core_i7();
    for bench in benchsuite::all() {
        for &cores in &CORE_COUNTS {
            let t = target(&bench, cores);
            let label = format!("{}@{cores}", bench.name);

            // --- Fatal classes: typed failure, no hang, prefix intact.
            let fatal = [
                (FaultKind::Panic, "panic", None),
                (FaultKind::PoisonTape, "vm", None),
                (
                    FaultKind::StallFiring {
                        nanos: 4 * WATCHDOG.as_nanos() as u64,
                    },
                    "watchdog",
                    Some(WATCHDOG),
                ),
            ];
            for (kind, want_cause, watchdog) in fatal {
                let plan = FaultPlan::single(t.stage, t.firing, kind);
                let failed = run(&t, plan.clone(), watchdog);
                assert!(!failed.completed, "{label}: {kind:?} must fail the run");
                let f = failed
                    .report
                    .root_failure()
                    .unwrap_or_else(|| panic!("{label}: {kind:?} recorded no failure"));
                assert_eq!((f.stage, f.firing), (t.stage, t.firing), "{label} {kind:?}");
                assert_eq!(f.cause.label(), want_cause, "{label} {kind:?}: {f}");
                assert_prefix(bench.name, cores, &t.clean, &failed);

                // Determinism: an identical run observes the identical
                // failure signature.
                let again = run(&t, plan.clone(), watchdog);
                assert_eq!(
                    failure_signature(&failed.report.failures),
                    failure_signature(&again.report.failures),
                    "{label}: {kind:?} failure signature must be deterministic"
                );
            }

            // --- Robustness classes: absorbed, bit-identical completion.
            for kind in [
                FaultKind::DelayPush { nanos: 2_000_000 },
                FaultKind::DropUnpark { count: 2 },
            ] {
                let plan = FaultPlan::single(t.stage, t.firing, kind);
                let out = run(&t, plan, None);
                assert!(out.completed, "{label}: {kind:?} must be absorbed");
                assert!(out.report.failures.is_empty(), "{label}: {kind:?}");
                assert_eq!(
                    out.output.len(),
                    t.clean.output.len(),
                    "{label}: {kind:?} throughput"
                );
                for (i, (a, b)) in out.output.iter().zip(&t.clean.output).enumerate() {
                    assert!(
                        a.bits_eq(*b),
                        "{label}: {kind:?} output {i} diverged: {a:?} vs {b:?}"
                    );
                }
            }

            // --- Replay bundle round-trip reproduces the panic case. The
            // seed is pure provenance; carrying the core count in it keeps
            // the three per-benchmark bundle file names distinct.
            let mut plan = FaultPlan::single(t.stage, t.firing, FaultKind::Panic);
            plan.seed = cores as u64;
            let failed = run(&t, plan.clone(), None);
            let bundle = make_bundle(
                bench.name,
                true,
                &machine,
                ExecMode::default(),
                &t.assignment,
                t.iters,
                None,
                plan,
                &failed.report.failures,
            );
            let parsed: macross_repro::runtime::ReplayBundle = bundle
                .json_string()
                .parse()
                .unwrap_or_else(|e: String| panic!("{label}: bundle did not round-trip: {e}"));
            assert_eq!(parsed, bundle);
            let outcome = run_bundle(&parsed)
                .unwrap_or_else(|e| panic!("{label}: replay refused the bundle: {e}"));
            assert!(
                outcome.reproduced,
                "{label}: replay diverged: expected {:?}, observed {:?}",
                bundle.expect, outcome.observed
            );
            // The nightly fault-matrix job sets MACROSS_REPLAY_DIR to
            // collect the verified bundles as CI artifacts and feed them
            // through the replay_fault binary.
            if let Some(dir) = std::env::var_os("MACROSS_REPLAY_DIR") {
                bundle
                    .write_to_dir(std::path::Path::new(&dir))
                    .unwrap_or_else(|e| panic!("{label}: bundle dump failed: {e}"));
            }
        }
    }
}

/// A faulted *region-vectorized* stage drains to a clean prefix. The
/// region transform turns per-channel scalar state into register-file
/// panels carried across firings, so a mid-run fault inside the
/// vectorized work function is the worst case for the drain contract:
/// the supervisor must record a typed failure at exactly the injected
/// `(stage, firing)` address, keep every token already committed to the
/// sink bit-identical to the clean run, and never emit past it — on a
/// single core and with the region stage isolated on its own core.
#[test]
fn faulted_region_stage_drains_to_clean_prefix() {
    use macross_repro::benchsuite::region::{region_acc_norm, region_iir_bank};
    use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};

    for (build, needle) in [
        (region_iir_bank as fn() -> Graph, "iir_bank_r"),
        (region_acc_norm as fn() -> Graph, "acc_norm_r"),
    ] {
        let simd = macro_simdize(&build(), &Machine::core_i7(), &SimdizeOptions::all()).unwrap();
        let (graph, schedule) = (simd.graph, simd.schedule);
        let victim = graph
            .nodes()
            .find(|(_, n)| n.name().contains(needle))
            .map(|(id, _)| id.0 as usize)
            .unwrap_or_else(|| panic!("region transform did not produce a *{needle}* stage"));
        for cores in [1u32, 2] {
            // Two-core split: the region stage and everything downstream
            // on core 1, so the faulted drain crosses a live ring.
            let assignment: Vec<u32> = (0..graph.node_count())
                .map(|i| u32::from(cores > 1 && i >= victim))
                .collect();
            let label = format!("{needle}@{cores}");
            let iters = 6;
            let clean = run_once(
                &graph,
                &schedule,
                &assignment,
                iters,
                FaultPlan::none(),
                None,
            );
            assert!(clean.completed, "{label}: clean run must complete");
            let firings = clean.report.stages[victim].firings;
            assert!(firings >= 2, "{label}: region stage fired only {firings}");
            let firing = firings / 2;

            for (kind, want_cause) in [(FaultKind::Panic, "panic"), (FaultKind::PoisonTape, "vm")] {
                let plan = FaultPlan::single(victim, firing, kind);
                let failed = run_once(&graph, &schedule, &assignment, iters, plan.clone(), None);
                assert!(!failed.completed, "{label}: {kind:?} must fail the run");
                let f = failed
                    .report
                    .root_failure()
                    .unwrap_or_else(|| panic!("{label}: {kind:?} recorded no failure"));
                assert_eq!((f.stage, f.firing), (victim, firing), "{label} {kind:?}");
                assert_eq!(f.cause.label(), want_cause, "{label} {kind:?}: {f}");
                assert_prefix(needle, cores as usize, &clean, &failed);
                // The region stage committed exactly the pre-fault firings.
                assert_eq!(
                    failed.report.stages[victim].firings, firing,
                    "{label} {kind:?}: firings past the fault were committed"
                );
                let again = run_once(&graph, &schedule, &assignment, iters, plan, None);
                assert_eq!(
                    failure_signature(&failed.report.failures),
                    failure_signature(&again.report.failures),
                    "{label}: {kind:?} failure signature must be deterministic"
                );
            }
        }
    }
}
