//! Failure-injection tests: malformed inputs at every layer must produce
//! typed errors (never panics), with actionable messages.

use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::macross::SimdizeError;
use macross_repro::sdf::{RateMatchError, Schedule, ScheduleError};
use macross_repro::streamir::builder::{BuildError, StreamSpec};
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::filter::Filter;
use macross_repro::streamir::graph::{Graph, GraphError, Node, SplitKind};
use macross_repro::streamir::types::{ScalarTy, Ty};
use macross_repro::streamlang::{compile, CompileError};
use macross_repro::vm::Machine;

#[test]
fn cyclic_graph_is_rejected_everywhere() {
    let mut g = Graph::new();
    let a = g.add_node(Node::Filter(Filter::new("a", 1, 1, 1)));
    let b = g.add_node(Node::Filter(Filter::new("b", 1, 1, 1)));
    g.connect(a, 0, b, 0, ScalarTy::F32);
    g.connect(b, 0, a, 0, ScalarTy::F32);
    assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
    assert!(matches!(
        Schedule::compute(&g),
        Err(ScheduleError::Graph(_))
    ));
    assert!(matches!(
        macro_simdize(&g, &Machine::core_i7(), &SimdizeOptions::all()),
        Err(SimdizeError::Graph(_))
    ));
}

#[test]
fn rate_liar_is_caught_by_driver() {
    // Declared push 2, actual push 1.
    let mut src = FilterBuilder::new("src", 0, 0, 2, ScalarTy::F32);
    src.work(|b| {
        b.push(1.0f32);
    });
    let mut g = Graph::new();
    let s = g.add_node(Node::Filter(src.build()));
    let k = g.add_node(Node::Sink);
    g.connect(s, 0, k, 0, ScalarTy::F32);
    let err = macro_simdize(&g, &Machine::core_i7(), &SimdizeOptions::all()).unwrap_err();
    assert!(matches!(err, SimdizeError::RateCheck(_)), "{err}");
    assert!(err.to_string().contains("measured"), "{err}");
}

#[test]
fn inconsistent_splitjoin_rates_fail_scheduling() {
    let mut g = Graph::new();
    let s = g.add_node(Node::Filter(Filter::new("s", 0, 0, 2)));
    let sp = g.add_node(Node::Splitter(SplitKind::Duplicate));
    let x1 = g.add_node(Node::Filter(Filter::new("x1", 1, 1, 1)));
    let x2 = g.add_node(Node::Filter(Filter::new("x2", 1, 1, 3)));
    let j = g.add_node(Node::Joiner(vec![1, 1]));
    let k = g.add_node(Node::Sink);
    g.connect(s, 0, sp, 0, ScalarTy::F32);
    g.connect(sp, 0, x1, 0, ScalarTy::F32);
    g.connect(sp, 1, x2, 0, ScalarTy::F32);
    g.connect(x1, 0, j, 0, ScalarTy::F32);
    g.connect(x2, 0, j, 1, ScalarTy::F32);
    g.connect(j, 0, k, 0, ScalarTy::F32);
    match Schedule::compute(&g) {
        Err(ScheduleError::Rates(RateMatchError::Inconsistent { .. })) => {}
        other => panic!("expected inconsistency, got {other:?}"),
    }
}

#[test]
fn builder_rejects_malformed_composition() {
    // Interior sink.
    let mk = || {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop());
        });
        fb.build_spec()
    };
    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
    src.work(|b| {
        b.push(0.0f32);
    });
    let err = StreamSpec::pipeline(vec![
        src.build_spec(),
        StreamSpec::Sink,
        mk(),
        StreamSpec::Sink,
    ])
    .build()
    .unwrap_err();
    assert_eq!(err, BuildError::InteriorSink);

    // Dangling output (no sink).
    let mut src2 = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
    src2.work(|b| {
        b.push(0.0f32);
    });
    let err = StreamSpec::pipeline(vec![src2.build_spec(), mk()])
        .build()
        .unwrap_err();
    assert_eq!(err, BuildError::DanglingOutput);
}

#[test]
fn streamlang_reports_positions_and_kinds() {
    // Lexical error.
    let e = compile("float->float filter F() { work pop 1 push 1 { push(pop() $ 2); } }\nvoid->void pipeline Main() { add F(); add Sink(); }", "Main");
    match e {
        Err(CompileError::Parse(p)) => assert!(p.line == 1 && p.col > 0, "{p}"),
        other => panic!("expected parse error, got {other:?}"),
    }

    // Unknown top-level stream.
    let e = compile(
        "float->float filter F() { work pop 1 push 1 { push(pop()); } }",
        "Nope",
    );
    assert!(matches!(e, Err(CompileError::Elab(_))));

    // Recursive pipeline.
    let e = compile(
        "void->void pipeline Main() { add Main(); add Sink(); }",
        "Main",
    );
    match e {
        Err(CompileError::Elab(el)) => assert!(el.to_string().contains("recursive"), "{el}"),
        other => panic!("expected recursion error, got {other:?}"),
    }
}

#[test]
fn neon_machine_skips_unsupported_intrinsics_without_error() {
    // A pow-heavy actor cannot run on the Neon-like SIMD engine; the
    // driver must leave it scalar, not fail.
    let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
    let n = src.state("n", Ty::Scalar(ScalarTy::F32));
    src.work(|b| {
        b.push(v(n));
        b.set(
            n,
            cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 50i32),
        );
    });
    let mut f = FilterBuilder::new("powf", 1, 1, 1, ScalarTy::F32);
    f.work(|b| {
        b.push(pow(abs(pop()) + 1.0f32, 1.5f32));
    });
    let g = StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
        .build()
        .unwrap();
    let simd = macro_simdize(&g, &Machine::neon_like(), &SimdizeOptions::all()).unwrap();
    assert!(simd.report.single_actors.is_empty(), "{:?}", simd.report);
    // Same actor on the full machine does vectorize.
    let simd2 = macro_simdize(&g, &Machine::core_i7(), &SimdizeOptions::all()).unwrap();
    assert_eq!(simd2.report.single_actors, vec!["powf_v4"]);
}

#[test]
fn simdize_single_actor_rejects_every_illegal_shape() {
    use macross_repro::macross::single::{simdize_single_actor, SingleActorConfig};
    let cfg = SingleActorConfig::strided(4, ScalarTy::I32, ScalarTy::I32);

    // Tape-dependent control flow.
    let mut fb = FilterBuilder::new("tdc", 1, 1, 1, ScalarTy::I32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
    fb.work(|b| {
        b.set(x, pop());
        b.if_else(
            gt(v(x), 0i32),
            |b| {
                b.push(1i32);
            },
            |b| {
                b.push(0i32);
            },
        );
    });
    assert!(matches!(
        simdize_single_actor(&fb.build(), &cfg),
        Err(SimdizeError::NotVectorizable { .. })
    ));

    // Tape-dependent subscript.
    let mut fb = FilterBuilder::new("tds", 1, 1, 1, ScalarTy::I32);
    let lut = fb.state("lut", Ty::Array(ScalarTy::I32, 8));
    fb.work(|b| {
        b.push(idx(lut, pop() & 7i32));
    });
    assert!(matches!(
        simdize_single_actor(&fb.build(), &cfg),
        Err(SimdizeError::NotVectorizable { .. })
    ));

    // Already vectorized.
    use macross_repro::streamir::{Expr, Stmt};
    let mut fb = FilterBuilder::new("vec", 4, 4, 4, ScalarTy::I32);
    let tv = fb.local("t", Ty::Vector(ScalarTy::I32, 4));
    fb.work(|b| {
        b.set(tv, E(Expr::VPop { width: 4 }));
        b.stmt(Stmt::VPush {
            value: Expr::Var(tv),
            width: 4,
        });
    });
    assert!(matches!(
        simdize_single_actor(&fb.build(), &cfg),
        Err(SimdizeError::NotVectorizable { .. })
    ));
}
