//! Runtime CPU-feature dispatch for superblock kernels: forcing the
//! portable backend (`MACROSS_FORCE_PORTABLE_KERNELS=1`) must not change
//! a single output bit or cycle counter versus the default,
//! feature-detected backend.
//!
//! Coverage is deliberately two-pronged:
//!   * an FMA-heavy SIMDized kernel (24 chained multiply-adds, the same
//!     shape as the `vmix_simdized` hot-path benchmark) exercises the
//!     f32 add/mul slice kernels, and
//!   * every suite benchmark whose SIMDized form executes
//!     `extract_even`/`extract_odd` permutations exercises the `PermI`/
//!     `PermF` lane-shuffle paths.
//!
//! Both prongs live in ONE `#[test]` because the override is a
//! process-global environment variable: splitting them into separate
//! tests would let the harness run them on concurrent threads and race
//! on the variable.

use macross_repro::benchsuite;
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::graph::Graph;
use macross_repro::streamir::types::{ScalarTy, Ty};
use macross_repro::vm::{run_scheduled_mode, ExecMode, Machine, RunResult};

const OVERRIDE: &str = "MACROSS_FORCE_PORTABLE_KERNELS";

/// Stateless f32 filter with a deep multiply-add chain; after
/// macro-SIMDization the work body compiles to fused vector kernels.
fn fma_chain() -> Graph {
    let mut fb = FilterBuilder::new("fma", 1, 1, 1, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.set(x, pop());
        for _ in 0..24 {
            b.set(x, v(x) * 1.0001f32 + 0.5f32);
        }
        b.push(v(x));
    });
    StreamSpec::pipeline(vec![
        benchsuite::util::source_f32("src", 4, 4096, 0.25),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("fma graph")
}

fn run(g: &Graph, s: &Schedule, m: &Machine) -> RunResult {
    run_scheduled_mode(g, s, m, 2, ExecMode::Bytecode).expect("run")
}

fn assert_bit_identical(name: &str, native: &RunResult, portable: &RunResult) {
    assert_eq!(
        native.output.len(),
        portable.output.len(),
        "{name}: backend changed throughput"
    );
    assert!(!native.output.is_empty(), "{name}: empty output");
    for (i, (a, b)) in native.output.iter().zip(&portable.output).enumerate() {
        assert!(
            a.bits_eq(*b),
            "{name}: output {i} differs between backends: {a:?} vs {b:?}"
        );
    }
    assert_eq!(
        native.counters, portable.counters,
        "{name}: cycle counters differ between backends"
    );
}

#[test]
fn portable_override_is_bit_identical_on_fma_and_permutation_benchmarks() {
    let machine = Machine::core_i7();
    let opts = SimdizeOptions::all();

    // Collect (name, graph, schedule) for the FMA chain plus every suite
    // benchmark whose SIMDized form actually fires permutations.
    let mut subjects: Vec<(String, Graph, Schedule)> = Vec::new();
    let simd = macro_simdize(&fma_chain(), &machine, &opts).expect("simdize fma");
    subjects.push(("fma_chain".into(), simd.graph, simd.schedule));

    let mut permuting = 0usize;
    for b in benchsuite::all() {
        let g = (b.build)();
        let simd = macro_simdize(&g, &machine, &opts)
            .unwrap_or_else(|e| panic!("{}: simdize failed: {e}", b.name));
        let probe = run(&simd.graph, &simd.schedule, &machine);
        if probe.counters.permute > 0 {
            permuting += 1;
            subjects.push((b.name.to_string(), simd.graph, simd.schedule));
        }
    }
    assert!(
        permuting > 0,
        "no suite benchmark exercises permutations; the PermI/PermF \
         backend paths would go untested"
    );

    std::env::remove_var(OVERRIDE);
    let native: Vec<RunResult> = subjects
        .iter()
        .map(|(_, g, s)| run(g, s, &machine))
        .collect();

    std::env::set_var(OVERRIDE, "1");
    let portable: Vec<RunResult> = subjects
        .iter()
        .map(|(_, g, s)| run(g, s, &machine))
        .collect();
    std::env::remove_var(OVERRIDE);

    for ((name, _, _), (n, p)) in subjects.iter().zip(native.iter().zip(&portable)) {
        assert_bit_identical(name, n, p);
    }
}
