//! Guards for the paper-vs-measured claims recorded in EXPERIMENTS.md:
//! these tests assert the qualitative *shapes* of every figure, so a
//! regression in any pass shows up as a failed claim, not just a changed
//! number.

use macross_bench::{figure10_row, figure11_row, figure12_row, figure13_rows, geomean};
use macross_repro::autovec::AutovecConfig;
use macross_repro::benchsuite::{all, by_name};
use macross_repro::vm::Machine;

#[test]
fn figure10_macro_beats_both_autovectorizers() {
    let machine = Machine::core_i7();
    let mut auto_gcc = Vec::new();
    let mut auto_icc = Vec::new();
    let mut macro_v = Vec::new();
    for b in all() {
        let g = figure10_row(&b, &machine, &AutovecConfig::gcc_like(4));
        let i = figure10_row(&b, &machine, &AutovecConfig::icc_like(4));
        auto_gcc.push(g.autovec);
        auto_icc.push(i.autovec);
        macro_v.push(g.macro_simd);
        // Macro + auto never loses to macro alone.
        assert!(g.macro_plus_auto >= g.macro_simd * 0.99, "{}", b.name);
    }
    let (gg, gi, gm) = (geomean(auto_gcc), geomean(auto_icc), geomean(macro_v));
    // Paper: ICC autovec 1.34x, GCC unimpressive, MacroSS 2.07x.
    assert!(gi > gg, "ICC ({gi:.2}) must beat GCC ({gg:.2})");
    assert!(gm > gi, "macro ({gm:.2}) must beat ICC autovec ({gi:.2})");
    assert!(
        gm > 1.8,
        "macro geomean {gm:.2} out of the paper's ballpark"
    );
    assert!(
        gi > 1.05 && gi < 1.8,
        "ICC geomean {gi:.2} out of the paper's ballpark"
    );
}

#[test]
fn figure11_vertical_shape() {
    let machine = Machine::core_i7();
    let rows: Vec<_> = all().iter().map(|b| figure11_row(b, &machine)).collect();
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap()
            .improvement_pct
    };
    // Negligible where the paper says so.
    for name in [
        "AudioBeam",
        "FilterBank",
        "BeamFormer",
        "FMRadio",
        "ChannelVocoder",
    ] {
        assert!(get(name) < 10.0, "{name}: {}", get(name));
    }
    // Large where fusion eliminates reordering overhead.
    for name in ["MatrixMultBlock", "Serpent", "TDE", "BitonicSort", "FFT"] {
        assert!(get(name) > 20.0, "{name}: {}", get(name));
    }
    let avg = rows.iter().map(|r| r.improvement_pct).sum::<f64>() / rows.len() as f64;
    assert!(avg > 10.0 && avg < 60.0, "average {avg:.1}% vs paper's 40%");
}

#[test]
fn figure12_sagu_shape() {
    let rows: Vec<_> = all().iter().map(figure12_row).collect();
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap()
            .improvement_pct
    };
    // The SAGU never hurts...
    for r in &rows {
        assert!(
            r.improvement_pct > -1.0,
            "{}: {}",
            r.name,
            r.improvement_pct
        );
    }
    // ...helps the reordering-heavy kernels...
    assert!(get("MatrixMult") > 2.0);
    assert!(get("DCT") > 2.0);
    // ...and does nothing for the horizontal-only / compute-bound ones.
    assert!(get("BeamFormer") < 2.0);
    assert!(get("FilterBank") < 2.0);
    assert!(get("MP3Decoder") < get("MatrixMult"));
    let avg = rows.iter().map(|r| r.improvement_pct).sum::<f64>() / rows.len() as f64;
    assert!(avg > 2.0 && avg < 15.0, "average {avg:.1}% vs paper's 8.1%");
}

#[test]
fn figure13_two_cores_plus_simd_competitive_with_four() {
    let machine = Machine::core_i7();
    let mut c2 = Vec::new();
    let mut c4 = Vec::new();
    let mut c2s = Vec::new();
    let mut c4s = Vec::new();
    for b in all() {
        let (p2, p4) = figure13_rows(&b, &machine);
        c2.push(p2.multicore);
        c4.push(p4.multicore);
        c2s.push(p2.multicore_simd);
        c4s.push(p4.multicore_simd);
    }
    let (g2, g4, g2s, g4s) = (geomean(c2), geomean(c4), geomean(c2s), geomean(c4s));
    assert!(g4 >= g2, "4-core {g4:.2} vs 2-core {g2:.2}");
    assert!(g2s > g2, "SIMD must add to 2-core: {g2s:.2} vs {g2:.2}");
    assert!(g4s > g4, "SIMD must add to 4-core: {g4s:.2} vs {g4:.2}");
    // The paper's headline: 2 cores + SIMD >= plain 4 cores (within 5%).
    assert!(g2s > g4 * 0.95, "2c+SIMD {g2s:.2} vs 4c {g4:.2}");
}

#[test]
// Asserting on model constants is the point of this test: it pins the
// datapath sizes the area claim rests on.
#[allow(clippy::assertions_on_constants)]
fn sagu_area_claim_is_modelled_small() {
    // The paper synthesizes the SAGU at < 1% of a core. Our model keeps it
    // to two 16-bit counters, one 16-bit adder chain and a 64-bit add —
    // assert the datapath constants the model exposes stay tiny.
    assert_eq!(macross_repro::sagu::Sagu::CYCLES_PER_ACCESS, 0);
    assert!(macross_repro::sagu::Sagu::SETUP_CYCLES <= 4);
    assert_eq!(macross_repro::sagu::SoftwareAddrGen::CYCLES_PER_ACCESS, 6);
}

#[test]
fn fmradio_equalizer_is_horizontal() {
    // Paper: BeamFormer and FilterBank speedups come mainly from
    // horizontal vectorization; FMRadio's equalizer bands merge too.
    let machine = Machine::core_i7();
    let b = by_name("FMRadio").unwrap();
    let simd =
        macross_repro::macross::driver::macro_simdize(&(b.build)(), &machine, &Default::default());
    let simd = simd.unwrap();
    assert!(simd
        .report
        .horizontal_groups
        .iter()
        .flatten()
        .any(|n| n.contains("eq_band")));
}
