//! Code-generation integration tests: the C++ emitter must produce
//! structurally sound output for every benchmark, scalar and SIMDized,
//! deterministically.

use macross_repro::benchsuite::all;
use macross_repro::codegen::{emit_program, CodegenOptions, CxxTarget};
use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};
use macross_repro::sdf::Schedule;
use macross_repro::vm::Machine;

#[test]
fn every_benchmark_emits_scalar_cxx() {
    for b in all() {
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let code = emit_program(&g, &sched, &CodegenOptions::default());
        assert!(code.contains("int main()"), "{}", b.name);
        assert!(code.contains("steady state"), "{}", b.name);
        assert!(code.len() > 1000, "{}: suspiciously short output", b.name);
        // Braces balance.
        let open = code.matches('{').count();
        let close = code.matches('}').count();
        assert_eq!(open, close, "{}: unbalanced braces", b.name);
    }
}

#[test]
fn every_benchmark_emits_simdized_cxx_with_intrinsics() {
    let machine = Machine::core_i7();
    for b in all() {
        let g = (b.build)();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        let code = emit_program(&simd.graph, &simd.schedule, &CodegenOptions::default());
        let vectorized_something =
            !simd.report.single_actors.is_empty() || !simd.report.horizontal_groups.is_empty();
        if vectorized_something {
            assert!(
                code.contains("__m128"),
                "{}: SIMDized code should use SSE vector types",
                b.name
            );
        }
        let open = code.matches('{').count();
        let close = code.matches('}').count();
        assert_eq!(open, close, "{}: unbalanced braces", b.name);
    }
}

#[test]
fn emission_is_deterministic() {
    let b = &all()[0];
    let g = (b.build)();
    let sched = Schedule::compute(&g).unwrap();
    let a = emit_program(&g, &sched, &CodegenOptions::default());
    let c = emit_program(&g, &sched, &CodegenOptions::default());
    assert_eq!(a, c);
}

#[test]
fn generic_target_supports_any_width() {
    let machine = Machine::wide(8);
    let b = macross_repro::benchsuite::by_name("Serpent").unwrap();
    let g = (b.build)();
    let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let code = emit_program(
        &simd.graph,
        &simd.schedule,
        &CodegenOptions {
            target: CxxTarget::Generic,
            sw: 8,
        },
    );
    assert!(
        code.contains("vec<int32_t, 8>"),
        "expected 8-wide generic vectors"
    );
    assert!(!code.contains("__m128"));
}
