//! Property-based tests over the core invariants:
//!
//! - random stateless actors survive single-actor SIMDization (all tape
//!   modes) with bit-identical output;
//! - the repetition-vector solver balances arbitrary pipelines and
//!   split-joins, minimally;
//! - tapes behave like a FIFO oracle under arbitrary operation sequences;
//! - the SAGU model, the Figure-8 software model, and the pure mapping
//!   agree for arbitrary configurations;
//! - permutation-network plans invert strided layouts for every legal
//!   size.

use proptest::prelude::*;

use macross_repro::macross::permnet::{gather_plan, scatter_plan};
use macross_repro::macross::single::{simdize_single_actor, SingleActorConfig, TapeMode};
use macross_repro::sagu::{column_major_index, Sagu, SoftwareAddrGen};
use macross_repro::sdf::{is_balanced, repetition_vector, Schedule};
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::expr::{BinOp, Expr, VarId};
use macross_repro::streamir::filter::{Filter, VarKind};
use macross_repro::streamir::graph::{Graph, Node};
use macross_repro::streamir::types::{ScalarTy, Ty, Value};
use macross_repro::vm::{run_scheduled, Machine, Tape};

// ---------------------------------------------------------------------
// Random stateless actors -> single-actor SIMDization differential.
// ---------------------------------------------------------------------

/// A compact description of a random straight-line integer actor.
#[derive(Debug, Clone)]
struct ActorSpec {
    pop: usize,
    /// One expression tree per push, encoded over leaf/op choices.
    pushes: Vec<ExprSpec>,
}

#[derive(Debug, Clone)]
enum ExprSpec {
    /// Reference to input temp `i % pop`.
    Temp(usize),
    Const(i32),
    Bin(u8, Box<ExprSpec>, Box<ExprSpec>),
}

fn expr_spec() -> impl Strategy<Value = ExprSpec> {
    let leaf = prop_oneof![
        (0usize..8).prop_map(ExprSpec::Temp),
        (-50i32..50).prop_map(ExprSpec::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (0u8..6, inner.clone(), inner).prop_map(|(op, a, b)| ExprSpec::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn actor_spec() -> impl Strategy<Value = ActorSpec> {
    (1usize..=4, proptest::collection::vec(expr_spec(), 1..=4))
        .prop_map(|(pop, pushes)| ActorSpec { pop, pushes })
}

fn build_expr(spec: &ExprSpec, temps: &[VarId]) -> Expr {
    match spec {
        ExprSpec::Temp(i) => Expr::Var(temps[i % temps.len()]),
        ExprSpec::Const(c) => Expr::Const(Value::I32(*c)),
        ExprSpec::Bin(op, a, b) => {
            let op = match op % 6 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Xor,
                4 => BinOp::And,
                _ => BinOp::Or,
            };
            Expr::bin(op, build_expr(a, temps), build_expr(b, temps))
        }
    }
}

fn build_actor(spec: &ActorSpec) -> Filter {
    let mut f = Filter::new("rand_actor", spec.pop, spec.pop, spec.pushes.len());
    let temps: Vec<VarId> = (0..spec.pop)
        .map(|i| f.add_var(format!("t{i}"), Ty::Scalar(ScalarTy::I32), VarKind::Local))
        .collect();
    let mut b = B::new();
    for &t in &temps {
        b.stmt(macross_repro::streamir::Stmt::Assign(
            macross_repro::streamir::LValue::Var(t),
            Expr::Pop,
        ));
    }
    for p in &spec.pushes {
        b.push(E(build_expr(p, &temps)));
    }
    f.work = b.build();
    f
}

fn i32_source() -> StreamSpec {
    let mut fb = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
    fb.work(|b| {
        b.push(v(n));
        b.set(n, v(n) * 75i32 + 74i32);
    });
    fb.build_spec()
}

fn differential(actor: Filter, cfg: SingleActorConfig) {
    let build = |mid: Filter| {
        StreamSpec::pipeline(vec![i32_source(), StreamSpec::filter(mid, ScalarTy::I32), StreamSpec::Sink])
            .build()
            .unwrap()
    };
    let scalar_graph = build(actor.clone());
    let vf = simdize_single_actor(&actor, &cfg).unwrap();
    let mut vec_graph = build(vf);
    let mut ssched = Schedule::compute(&scalar_graph).unwrap();
    ssched.scale(cfg.sw as u64);
    let mut vsched = ssched.clone();
    vsched.reps[1] /= cfg.sw as u64;
    let actor_id = macross_repro::streamir::NodeId(1);
    if cfg.input == TapeMode::VectorReorder {
        let e = vec_graph.single_in_edge(actor_id).unwrap();
        vec_graph.edge_mut(e).reorder = Some(macross_repro::streamir::Reorder {
            rate: actor.pop,
            sw: cfg.sw,
            side: macross_repro::streamir::ReorderSide::Producer,
            addr_gen: macross_repro::streamir::AddrGen::Sagu,
        });
    }
    if cfg.output == TapeMode::VectorReorder {
        let e = vec_graph.single_out_edge(actor_id).unwrap();
        vec_graph.edge_mut(e).reorder = Some(macross_repro::streamir::Reorder {
            rate: actor.push,
            sw: cfg.sw,
            side: macross_repro::streamir::ReorderSide::Consumer,
            addr_gen: macross_repro::streamir::AddrGen::Sagu,
        });
    }
    let machine = Machine::core_i7_with_sagu();
    let a = run_scheduled(&scalar_graph, &ssched, &machine, 3);
    let b = run_scheduled(&vec_graph, &vsched, &machine, 3);
    assert_eq!(a.output, b.output);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_actor_strided(spec in actor_spec()) {
        let actor = build_actor(&spec);
        let cfg = SingleActorConfig::strided(4, ScalarTy::I32, ScalarTy::I32);
        differential(actor, cfg);
    }

    #[test]
    fn random_actor_vector_reorder(spec in actor_spec()) {
        let actor = build_actor(&spec);
        let cfg = SingleActorConfig {
            sw: 4,
            input: TapeMode::VectorReorder,
            output: TapeMode::VectorReorder,
            in_elem: ScalarTy::I32,
            out_elem: ScalarTy::I32,
        };
        differential(actor, cfg);
    }

    #[test]
    fn random_actor_permute_when_legal(spec in actor_spec()) {
        let actor = build_actor(&spec);
        let input = if actor.pop.is_power_of_two() { TapeMode::Permute } else { TapeMode::Strided };
        let output = if actor.push == 1 || actor.push % 2 == 0 { TapeMode::Permute } else { TapeMode::Strided };
        let cfg = SingleActorConfig { sw: 4, input, output, in_elem: ScalarTy::I32, out_elem: ScalarTy::I32 };
        differential(actor, cfg);
    }

    #[test]
    fn random_actor_width_8(spec in actor_spec()) {
        let actor = build_actor(&spec);
        let cfg = SingleActorConfig::strided(8, ScalarTy::I32, ScalarTy::I32);
        differential(actor, cfg);
    }
}

// ---------------------------------------------------------------------
// Repetition vector properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random pipelines: the solver's vector balances every edge and is
    /// minimal (componentwise gcd 1).
    #[test]
    fn repetition_vector_balances_pipelines(rates in proptest::collection::vec((1usize..6, 1usize..6), 1..6)) {
        let mut g = Graph::new();
        let first_push = rates[0].0;
        let src = g.add_node(Node::Filter(Filter::new("src", 0, 0, first_push)));
        let mut prev = src;
        for (i, &(pop, push)) in rates.iter().enumerate() {
            // Give each filter the pop of the previous push-rate domain.
            let f = g.add_node(Node::Filter(Filter::new(format!("f{i}"), pop, pop, push)));
            g.connect(prev, 0, f, 0, ScalarTy::I32);
            prev = f;
        }
        let sink = g.add_node(Node::Sink);
        g.connect(prev, 0, sink, 0, ScalarTy::I32);
        // Source must produce what f0 consumes; fix by rebuilding the rates:
        // instead of fighting the generator, just check solver consistency.
        let reps = repetition_vector(&g).unwrap();
        prop_assert!(is_balanced(&g, &reps));
        let gcd_all = reps.iter().copied().fold(0u64, macross_repro::sdf::gcd);
        prop_assert_eq!(gcd_all, 1);
        prop_assert!(reps.iter().all(|&r| r > 0));
    }

    /// Uniform split-joins have equal branch repetitions.
    #[test]
    fn split_join_reps_uniform(branches in 2usize..6, w in 1usize..4) {
        let mut g = Graph::new();
        let src = g.add_node(Node::Filter(Filter::new("src", 0, 0, branches * w)));
        let sp = g.add_node(Node::Splitter(macross_repro::streamir::SplitKind::RoundRobin(vec![w; branches])));
        let j = g.add_node(Node::Joiner(vec![w; branches]));
        let sink = g.add_node(Node::Sink);
        g.connect(src, 0, sp, 0, ScalarTy::I32);
        let mut ids = Vec::new();
        for i in 0..branches {
            let f = g.add_node(Node::Filter(Filter::new(format!("b{i}"), w, w, w)));
            g.connect(sp, i, f, 0, ScalarTy::I32);
            g.connect(f, 0, j, i, ScalarTy::I32);
            ids.push(f);
        }
        g.connect(j, 0, sink, 0, ScalarTy::I32);
        let reps = repetition_vector(&g).unwrap();
        let r0 = reps[ids[0].0 as usize];
        prop_assert!(ids.iter().all(|id| reps[id.0 as usize] == r0));
    }
}

// ---------------------------------------------------------------------
// Tape vs. FIFO oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TapeOp {
    Push(i32),
    Pop,
    Peek(usize),
    VPush(Vec<i32>),
    VPop(usize),
}

fn tape_ops() -> impl Strategy<Value = Vec<TapeOp>> {
    proptest::collection::vec(
        prop_oneof![
            (-100i32..100).prop_map(TapeOp::Push),
            Just(TapeOp::Pop),
            (0usize..4).prop_map(TapeOp::Peek),
            proptest::collection::vec(-100i32..100, 1..5).prop_map(TapeOp::VPush),
            (1usize..5).prop_map(TapeOp::VPop),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tape_matches_fifo_oracle(ops in tape_ops()) {
        let mut tape = Tape::new(ScalarTy::I32);
        let mut oracle: std::collections::VecDeque<i32> = Default::default();
        for op in ops {
            match op {
                TapeOp::Push(x) => {
                    tape.push(Value::I32(x));
                    oracle.push_back(x);
                }
                TapeOp::Pop => {
                    if !oracle.is_empty() {
                        prop_assert_eq!(tape.pop(), Value::I32(oracle.pop_front().unwrap()));
                    }
                }
                TapeOp::Peek(k) => {
                    if k < oracle.len() {
                        prop_assert_eq!(tape.peek(k), Value::I32(oracle[k]));
                    }
                }
                TapeOp::VPush(vs) => {
                    tape.vpush(&vs.iter().map(|&x| Value::I32(x)).collect::<Vec<_>>());
                    oracle.extend(vs);
                }
                TapeOp::VPop(w) => {
                    if w <= oracle.len() {
                        let got = tape.vpop(w);
                        let want: Vec<Value> = (0..w).map(|_| Value::I32(oracle.pop_front().unwrap())).collect();
                        prop_assert_eq!(got, want);
                    }
                }
            }
            prop_assert_eq!(tape.len(), oracle.len());
        }
    }
}

// ---------------------------------------------------------------------
// SAGU / permutation-network agreement.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sagu_models_agree(rate in 1u16..200, logw in 1u32..5, steps in 1usize..400) {
        let sw = 1u16 << logw;
        let mut hw = Sagu::new(rate, sw);
        let mut sw_model = SoftwareAddrGen::new(rate as u64, sw as u64);
        for k in 0..steps {
            let a = hw.next_address();
            let b = sw_model.next_address();
            let c = column_major_index(k, rate as usize, sw as usize) as u64;
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn gather_plan_is_stride_permutation(logp in 0u32..5, logw in 1u32..5) {
        let p = 1usize << logp;
        let sw = 1usize << logw;
        let elems: Vec<i32> = (0..(p * sw) as i32).collect();
        let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
        let got = gather_plan(p, sw).apply(&loads);
        for (j, vec) in got.iter().enumerate() {
            for (l, &x) in vec.iter().enumerate() {
                prop_assert_eq!(x as usize, l * p + j);
            }
        }
    }

    #[test]
    fn scatter_plan_inverts_lane_major(q2 in 1usize..9, logw in 1u32..4) {
        let q = q2 * 2;
        let sw = 1usize << logw;
        let vecs: Vec<Vec<i32>> = (0..q).map(|j| (0..sw).map(|l| (l * q + j) as i32).collect()).collect();
        let got = scatter_plan(q, sw).apply(&vecs);
        let flat: Vec<i32> = got.into_iter().flatten().collect();
        for (pos, &x) in flat.iter().enumerate() {
            prop_assert_eq!(x as usize, pos);
        }
    }
}

// ---------------------------------------------------------------------
// Random pipelines through the FULL macro-SIMDization driver.
// ---------------------------------------------------------------------

/// Random pipeline: 1..4 random actors chained between a source and sink,
/// run through `macro_simdize` with all transforms enabled — vertical
/// fusion, Equation-1 scaling, cost-model tape modes, the lot — and
/// checked bit-exact at matched throughput.
fn pipeline_spec() -> impl Strategy<Value = Vec<ActorSpec>> {
    proptest::collection::vec(actor_spec(), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_pipeline_full_driver(specs in pipeline_spec()) {
        use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};

        let mut stages = vec![i32_source()];
        for (i, spec) in specs.iter().enumerate() {
            let mut f = build_actor(spec);
            f.name = format!("actor{i}");
            stages.push(StreamSpec::filter(f, ScalarTy::I32));
        }
        stages.push(StreamSpec::Sink);
        let g = StreamSpec::pipeline(stages).build().unwrap();

        for machine in [Machine::core_i7(), Machine::core_i7_with_sagu()] {
            let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
            let mut ssched = Schedule::compute(&g).unwrap();
            let src = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
            let l = macross_repro::sdf::lcm(ssched.rep(src), simd.schedule.reps[src.0 as usize]);
            let m1 = l / ssched.rep(src);
            ssched.scale(m1);
            let mut vsched = simd.schedule.clone();
            vsched.scale(l / vsched.reps[src.0 as usize]);
            let a = run_scheduled(&g, &ssched, &machine, 2);
            let b = run_scheduled(&simd.graph, &vsched, &machine, 2);
            prop_assert_eq!(&a.output, &b.output);
        }
    }

    /// Random isomorphic split-joins through the full driver (horizontal).
    #[test]
    fn random_splitjoin_full_driver(spec in actor_spec(), consts in proptest::collection::vec(-20i32..20, 4)) {
        use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};

        // Four branches: same structure, one differing constant appended.
        let branches: Vec<StreamSpec> = consts
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut f = build_actor(&spec);
                f.name = format!("iso{i}");
                // Append a branch-specific constant to the last push.
                if let Some(macross_repro::streamir::Stmt::Push(e)) = f.work.pop() {
                    f.work.push(macross_repro::streamir::Stmt::Push(Expr::bin(
                        BinOp::Xor,
                        e,
                        Expr::Const(Value::I32(k)),
                    )));
                }
                StreamSpec::filter(f, ScalarTy::I32)
            })
            .collect();

        let actor = build_actor(&spec);
        let n = actor.pop.max(1);
        let mut src = FilterBuilder::new("src", 0, 0, 4 * n, ScalarTy::I32);
        let s = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            for _ in 0..4 * n {
                b.push(v(s));
                b.set(s, v(s) * 75i32 + 74i32);
            }
        });
        let g = StreamSpec::pipeline(vec![
            src.build_spec(),
            StreamSpec::SplitJoin {
                split: macross_repro::streamir::SplitKind::RoundRobin(vec![actor.pop; 4]),
                branches,
                join: vec![actor.push.max(1); 4],
            },
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();

        let machine = Machine::core_i7();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        let mut ssched = Schedule::compute(&g).unwrap();
        let src_id = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
        let l = macross_repro::sdf::lcm(ssched.rep(src_id), simd.schedule.reps[src_id.0 as usize]);
        let m1 = l / ssched.rep(src_id);
        ssched.scale(m1);
        let mut vsched = simd.schedule.clone();
        vsched.scale(l / vsched.reps[src_id.0 as usize]);
        let a = run_scheduled(&g, &ssched, &machine, 2);
        let b = run_scheduled(&simd.graph, &vsched, &machine, 2);
        prop_assert_eq!(&a.output, &b.output);
        // Four identical-shape branches must merge horizontally.
        prop_assert!(!simd.report.horizontal_groups.is_empty());
    }
}
