//! Randomized property tests over the core invariants:
//!
//! - random stateless actors survive single-actor SIMDization (all tape
//!   modes) with bit-identical output;
//! - the repetition-vector solver balances arbitrary pipelines and
//!   split-joins, minimally;
//! - tapes behave like a FIFO oracle under arbitrary operation sequences;
//! - the SAGU model, the Figure-8 software model, and the pure mapping
//!   agree for arbitrary configurations;
//! - permutation-network plans invert strided layouts for every legal
//!   size.
//!
//! Cases are generated with a seeded xorshift PRNG (the container has no
//! network access to fetch `proptest`/`rand`), so every run explores the
//! same deterministic case set and failures are trivially reproducible
//! from the printed seed.

use macross_repro::macross::permnet::{gather_plan, scatter_plan};
use macross_repro::macross::single::{simdize_single_actor, SingleActorConfig, TapeMode};
use macross_repro::sagu::{column_major_index, Sagu, SoftwareAddrGen};
use macross_repro::sdf::{is_balanced, repetition_vector, Schedule};
use macross_repro::streamir::builder::StreamSpec;
use macross_repro::streamir::edsl::*;
use macross_repro::streamir::expr::{BinOp, Expr, VarId};
use macross_repro::streamir::filter::{Filter, VarKind};
use macross_repro::streamir::graph::{Graph, Node};
use macross_repro::streamir::types::{ScalarTy, Ty, Value};
use macross_repro::vm::{run_scheduled, Machine, Tape};

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*).
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo) as u64) as i32
    }
}

// ---------------------------------------------------------------------
// Random stateless actors -> single-actor SIMDization differential.
// ---------------------------------------------------------------------

/// A compact description of a random straight-line integer actor.
#[derive(Debug, Clone)]
struct ActorSpec {
    pop: usize,
    /// One expression tree per push.
    pushes: Vec<ExprSpec>,
}

#[derive(Debug, Clone)]
enum ExprSpec {
    /// Reference to input temp `i % pop`.
    Temp(usize),
    Const(i32),
    Bin(u8, Box<ExprSpec>, Box<ExprSpec>),
}

fn gen_expr(rng: &mut Rng, depth: usize) -> ExprSpec {
    // Shrinking branch probability with depth keeps trees small.
    if depth < 3 && rng.range(0, 4) < 2 {
        let op = rng.range(0, 6) as u8;
        ExprSpec::Bin(
            op,
            Box::new(gen_expr(rng, depth + 1)),
            Box::new(gen_expr(rng, depth + 1)),
        )
    } else if rng.range(0, 2) == 0 {
        ExprSpec::Temp(rng.range(0, 8))
    } else {
        ExprSpec::Const(rng.range_i32(-50, 50))
    }
}

fn gen_actor(rng: &mut Rng) -> ActorSpec {
    let pop = rng.range(1, 5);
    let n_push = rng.range(1, 5);
    let pushes = (0..n_push).map(|_| gen_expr(rng, 0)).collect();
    ActorSpec { pop, pushes }
}

fn build_expr(spec: &ExprSpec, temps: &[VarId]) -> Expr {
    match spec {
        ExprSpec::Temp(i) => Expr::Var(temps[i % temps.len()]),
        ExprSpec::Const(c) => Expr::Const(Value::I32(*c)),
        ExprSpec::Bin(op, a, b) => {
            let op = match op % 6 {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Xor,
                4 => BinOp::And,
                _ => BinOp::Or,
            };
            Expr::bin(op, build_expr(a, temps), build_expr(b, temps))
        }
    }
}

fn build_actor(spec: &ActorSpec) -> Filter {
    let mut f = Filter::new("rand_actor", spec.pop, spec.pop, spec.pushes.len());
    let temps: Vec<VarId> = (0..spec.pop)
        .map(|i| f.add_var(format!("t{i}"), Ty::Scalar(ScalarTy::I32), VarKind::Local))
        .collect();
    let mut b = B::new();
    for &t in &temps {
        b.stmt(macross_repro::streamir::Stmt::Assign(
            macross_repro::streamir::LValue::Var(t),
            Expr::Pop,
        ));
    }
    for p in &spec.pushes {
        b.push(E(build_expr(p, &temps)));
    }
    f.work = b.build();
    f
}

fn i32_source() -> StreamSpec {
    let mut fb = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
    let n = fb.state("n", Ty::Scalar(ScalarTy::I32));
    fb.work(|b| {
        b.push(v(n));
        b.set(n, v(n) * 75i32 + 74i32);
    });
    fb.build_spec()
}

fn differential(actor: Filter, cfg: SingleActorConfig) {
    let build = |mid: Filter| {
        StreamSpec::pipeline(vec![
            i32_source(),
            StreamSpec::filter(mid, ScalarTy::I32),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap()
    };
    let scalar_graph = build(actor.clone());
    let vf = simdize_single_actor(&actor, &cfg).unwrap();
    let mut vec_graph = build(vf);
    let mut ssched = Schedule::compute(&scalar_graph).unwrap();
    ssched.scale(cfg.sw as u64);
    let mut vsched = ssched.clone();
    vsched.reps[1] /= cfg.sw as u64;
    let actor_id = macross_repro::streamir::NodeId(1);
    if cfg.input == TapeMode::VectorReorder {
        let e = vec_graph.single_in_edge(actor_id).unwrap();
        vec_graph.edge_mut(e).reorder = Some(macross_repro::streamir::Reorder {
            rate: actor.pop,
            sw: cfg.sw,
            side: macross_repro::streamir::ReorderSide::Producer,
            addr_gen: macross_repro::streamir::AddrGen::Sagu,
        });
    }
    if cfg.output == TapeMode::VectorReorder {
        let e = vec_graph.single_out_edge(actor_id).unwrap();
        vec_graph.edge_mut(e).reorder = Some(macross_repro::streamir::Reorder {
            rate: actor.push,
            sw: cfg.sw,
            side: macross_repro::streamir::ReorderSide::Consumer,
            addr_gen: macross_repro::streamir::AddrGen::Sagu,
        });
    }
    let machine = Machine::core_i7_with_sagu();
    let a = run_scheduled(&scalar_graph, &ssched, &machine, 3).unwrap();
    let b = run_scheduled(&vec_graph, &vsched, &machine, 3).unwrap();
    assert_eq!(a.output, b.output);
}

#[test]
fn random_actor_strided() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let actor = build_actor(&gen_actor(&mut rng));
        let cfg = SingleActorConfig::strided(4, ScalarTy::I32, ScalarTy::I32);
        differential(actor, cfg);
    }
}

#[test]
fn random_actor_vector_reorder() {
    for seed in 100..148u64 {
        let mut rng = Rng::new(seed);
        let actor = build_actor(&gen_actor(&mut rng));
        let cfg = SingleActorConfig {
            sw: 4,
            input: TapeMode::VectorReorder,
            output: TapeMode::VectorReorder,
            in_elem: ScalarTy::I32,
            out_elem: ScalarTy::I32,
        };
        differential(actor, cfg);
    }
}

#[test]
fn random_actor_permute_when_legal() {
    for seed in 200..248u64 {
        let mut rng = Rng::new(seed);
        let actor = build_actor(&gen_actor(&mut rng));
        let input = if actor.pop.is_power_of_two() {
            TapeMode::Permute
        } else {
            TapeMode::Strided
        };
        let output = if actor.push == 1 || actor.push.is_multiple_of(2) {
            TapeMode::Permute
        } else {
            TapeMode::Strided
        };
        let cfg = SingleActorConfig {
            sw: 4,
            input,
            output,
            in_elem: ScalarTy::I32,
            out_elem: ScalarTy::I32,
        };
        differential(actor, cfg);
    }
}

#[test]
fn random_actor_width_8() {
    for seed in 300..348u64 {
        let mut rng = Rng::new(seed);
        let actor = build_actor(&gen_actor(&mut rng));
        let cfg = SingleActorConfig::strided(8, ScalarTy::I32, ScalarTy::I32);
        differential(actor, cfg);
    }
}

// ---------------------------------------------------------------------
// Repetition vector properties.
// ---------------------------------------------------------------------

/// Random pipelines: the solver's vector balances every edge and is
/// minimal (componentwise gcd 1).
#[test]
fn repetition_vector_balances_pipelines() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x5EED ^ seed);
        let n = rng.range(1, 6);
        let rates: Vec<(usize, usize)> =
            (0..n).map(|_| (rng.range(1, 6), rng.range(1, 6))).collect();
        let mut g = Graph::new();
        let first_push = rates[0].0;
        let src = g.add_node(Node::Filter(Filter::new("src", 0, 0, first_push)));
        let mut prev = src;
        for (i, &(pop, push)) in rates.iter().enumerate() {
            let f = g.add_node(Node::Filter(Filter::new(format!("f{i}"), pop, pop, push)));
            g.connect(prev, 0, f, 0, ScalarTy::I32);
            prev = f;
        }
        let sink = g.add_node(Node::Sink);
        g.connect(prev, 0, sink, 0, ScalarTy::I32);
        let reps = repetition_vector(&g).unwrap();
        assert!(is_balanced(&g, &reps), "seed {seed}: unbalanced {reps:?}");
        let gcd_all = reps.iter().copied().fold(0u64, macross_repro::sdf::gcd);
        assert_eq!(gcd_all, 1, "seed {seed}: non-minimal {reps:?}");
        assert!(reps.iter().all(|&r| r > 0), "seed {seed}");
    }
}

/// Uniform split-joins have equal branch repetitions (exhaustive over the
/// original generator's domain).
#[test]
fn split_join_reps_uniform() {
    for branches in 2usize..6 {
        for w in 1usize..4 {
            let mut g = Graph::new();
            let src = g.add_node(Node::Filter(Filter::new("src", 0, 0, branches * w)));
            let sp = g.add_node(Node::Splitter(
                macross_repro::streamir::SplitKind::RoundRobin(vec![w; branches]),
            ));
            let j = g.add_node(Node::Joiner(vec![w; branches]));
            let sink = g.add_node(Node::Sink);
            g.connect(src, 0, sp, 0, ScalarTy::I32);
            let mut ids = Vec::new();
            for i in 0..branches {
                let f = g.add_node(Node::Filter(Filter::new(format!("b{i}"), w, w, w)));
                g.connect(sp, i, f, 0, ScalarTy::I32);
                g.connect(f, 0, j, i, ScalarTy::I32);
                ids.push(f);
            }
            g.connect(j, 0, sink, 0, ScalarTy::I32);
            let reps = repetition_vector(&g).unwrap();
            let r0 = reps[ids[0].0 as usize];
            assert!(ids.iter().all(|id| reps[id.0 as usize] == r0));
        }
    }
}

// ---------------------------------------------------------------------
// Tape vs. FIFO oracle.
// ---------------------------------------------------------------------

#[test]
fn tape_matches_fifo_oracle() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x7A9E ^ (seed << 8));
        let mut tape = Tape::new(ScalarTy::I32);
        let mut oracle: std::collections::VecDeque<i32> = Default::default();
        let n_ops = rng.range(0, 60);
        for _ in 0..n_ops {
            match rng.range(0, 5) {
                0 => {
                    let x = rng.range_i32(-100, 100);
                    tape.push(Value::I32(x));
                    oracle.push_back(x);
                }
                1 => {
                    if !oracle.is_empty() {
                        assert_eq!(tape.pop(), Value::I32(oracle.pop_front().unwrap()));
                    }
                }
                2 => {
                    let k = rng.range(0, 4);
                    if k < oracle.len() {
                        assert_eq!(tape.peek(k), Value::I32(oracle[k]));
                    }
                }
                3 => {
                    let vs: Vec<i32> = (0..rng.range(1, 5))
                        .map(|_| rng.range_i32(-100, 100))
                        .collect();
                    tape.vpush(&vs.iter().map(|&x| Value::I32(x)).collect::<Vec<_>>());
                    oracle.extend(vs);
                }
                _ => {
                    let w = rng.range(1, 5);
                    if w <= oracle.len() {
                        let got = tape.vpop(w);
                        let want: Vec<Value> = (0..w)
                            .map(|_| Value::I32(oracle.pop_front().unwrap()))
                            .collect();
                        assert_eq!(got, want);
                    }
                }
            }
            assert_eq!(tape.len(), oracle.len(), "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Flat-ring tape vs. naive models: wraparound, slice fast paths, rpush
// staging, and both column-major reorder modes.
// ---------------------------------------------------------------------

/// Long interleaved operation sequences against a `VecDeque` oracle. The
/// bounded live size under sustained traffic forces the absolute pointers
/// to wrap the ring mask many times, and every vector read is checked
/// through both the `Vec` path and the two-slice fast path.
#[test]
fn tape_ring_matches_oracle_under_wraparound() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x7A9F ^ (seed << 9));
        let mut tape = Tape::new(ScalarTy::I32);
        let mut oracle: std::collections::VecDeque<i32> = Default::default();
        let mut next = 0i32;
        for _ in 0..400 {
            match rng.range(0, 7) {
                0 => {
                    tape.push(Value::I32(next));
                    oracle.push_back(next);
                    next += 1;
                }
                1 => {
                    // Staged burst: rpush lanes in reverse order, then
                    // commit the whole strip with advance_write.
                    let k = rng.range(1, 6);
                    for i in (0..k).rev() {
                        tape.rpush(Value::I32(next + i as i32), i);
                    }
                    tape.advance_write(k);
                    for i in 0..k {
                        oracle.push_back(next + i as i32);
                    }
                    next += k as i32;
                }
                2 => {
                    let w = rng.range(1, 9);
                    tape.vpush_many(w, |lane| Value::I32(next + lane as i32));
                    for i in 0..w {
                        oracle.push_back(next + i as i32);
                    }
                    next += w as i32;
                }
                3 => {
                    if let Some(x) = oracle.pop_front() {
                        assert_eq!(tape.pop(), Value::I32(x), "seed {seed}");
                    }
                }
                4 => {
                    let w = rng.range(1, 9);
                    if w <= oracle.len() {
                        // vpop must equal vpeek(0, w) taken just before.
                        let peeked = tape.vpeek(0, w);
                        let (a, b) = tape.vpop_slices(w);
                        let flat: Vec<Value> = a.iter().chain(b).copied().collect();
                        assert_eq!(flat, peeked, "seed {seed}");
                        for v in flat {
                            assert_eq!(v, Value::I32(oracle.pop_front().unwrap()));
                        }
                    }
                }
                5 => {
                    let w = rng.range(1, 6);
                    let off = rng.range(0, 6);
                    if off + w <= oracle.len() {
                        let (a, b) = tape.vpeek_slices(off, w);
                        let flat: Vec<Value> = a.iter().chain(b).copied().collect();
                        let want: Vec<Value> =
                            (0..w).map(|i| Value::I32(oracle[off + i])).collect();
                        assert_eq!(flat, want, "seed {seed}");
                        assert_eq!(flat, tape.vpeek(off, w), "seed {seed}");
                    }
                }
                _ => {
                    let n = rng.range(0, 4).min(oracle.len());
                    tape.advance_read(n);
                    oracle.drain(..n);
                }
            }
            assert_eq!(tape.len(), oracle.len(), "seed {seed}");
            assert_eq!(tape.is_empty(), oracle.is_empty(), "seed {seed}");
        }
    }
}

/// Batched-width slice reads across the wraparound seam: the batched
/// firing path moves `k x w` tokens per `vpush_many`/`vpop_slices` call
/// (up to 8 firings x vector width), far wider than the scalar traffic
/// above, so spans regularly straddle the ring boundary. Checks the
/// two-slice decomposition covers exactly `w` (the fast path's debug
/// assertion), splits only at the physical seam, and preserves content.
#[test]
fn tape_slices_cover_batched_widths_across_seam() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xBA7C ^ (seed << 7));
        let mut tape = Tape::new(ScalarTy::I32);
        let mut oracle: std::collections::VecDeque<i32> = Default::default();
        let mut next = 0i32;
        let mut wrapped_reads = 0usize;
        for _ in 0..300 {
            // Batched production: k firings x w lanes in one call.
            let k = rng.range(1, 9);
            let w = rng.range(1, 9);
            tape.vpush_many(k * w, |lane| Value::I32(next + lane as i32));
            for i in 0..k * w {
                oracle.push_back(next + i as i32);
            }
            next += (k * w) as i32;
            // Batched consumption of a possibly different batch shape.
            let width = rng.range(1, 33).min(oracle.len());
            if width == 0 {
                continue;
            }
            let (a, b) = tape.vpop_slices(width);
            assert_eq!(a.len() + b.len(), width, "seed {seed}");
            wrapped_reads += usize::from(!b.is_empty());
            for v in a.iter().chain(b) {
                assert_eq!(*v, Value::I32(oracle.pop_front().unwrap()), "seed {seed}");
            }
            assert_eq!(tape.len(), oracle.len(), "seed {seed}");
        }
        // The sustained traffic must actually have exercised the seam.
        assert!(wrapped_reads > 0, "seed {seed}: no read crossed the seam");
    }
}

/// Read reorder (vectorized producer, scalar consumer): physical rows are
/// remapped so the consumer observes logical order. The naive model is
/// computed with the independent closed form — logical element `l` of a
/// block sits at physical slot `(l % rate) * sw + l / rate` — not with the
/// tape's own `column_major_index`.
#[test]
fn tape_read_reorder_matches_naive_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x0DDB ^ (seed << 7));
        let rate = rng.range(1, 6);
        let sw = 1usize << rng.range(1, 4);
        let block = rate * sw;
        let blocks = rng.range(1, 5);
        let mut tape = Tape::new(ScalarTy::I32);
        tape.set_read_reorder(rate, sw);
        // Producer writes `blocks` blocks of physical rows; the naive
        // logical stream is reconstructed independently.
        let mut logical = vec![0i32; blocks * block];
        let mut phys_next = 0i32;
        for b in 0..blocks {
            for p in 0..block {
                // Physical slot p = (l % rate) * sw + l / rate, inverted:
                let (i, j) = (p / sw, p % sw);
                let l = j * rate + i;
                logical[b * block + l] = phys_next;
                tape.push(Value::I32(phys_next));
                phys_next += 1;
            }
        }
        // Consume with a random mix of peeks, pops, and advances.
        let mut pos = 0usize;
        while pos < logical.len() {
            match rng.range(0, 3) {
                0 => {
                    assert_eq!(
                        tape.pop(),
                        Value::I32(logical[pos]),
                        "seed {seed} rate {rate} sw {sw} pos {pos}"
                    );
                    pos += 1;
                }
                1 => {
                    let off = rng.range(0, (logical.len() - pos).min(2 * block));
                    assert_eq!(
                        tape.peek(off),
                        Value::I32(logical[pos + off]),
                        "seed {seed} rate {rate} sw {sw} peek {pos}+{off}"
                    );
                }
                _ => {
                    let n = rng.range(0, (logical.len() - pos).min(block) + 1);
                    tape.advance_read(n);
                    pos += n;
                }
            }
        }
        assert!(tape.is_empty(), "seed {seed}");
    }
}

/// Write reorder (scalar producer, vectorized consumer): logical pushes
/// are staged column-major and committed whole blocks at a time, so the
/// consumer's vector pops see lane-major rows. Also pins the visibility
/// rule: a partial block contributes nothing to `len()`.
#[test]
fn tape_write_reorder_matches_naive_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xBEEF ^ (seed << 6));
        let rate = rng.range(1, 6);
        let sw = 1usize << rng.range(1, 4);
        let block = rate * sw;
        let blocks = rng.range(1, 5);
        let mut tape = Tape::new(ScalarTy::I32);
        tape.set_write_reorder(rate, sw);
        for l in 0..blocks * block {
            assert_eq!(
                tape.len(),
                (l / block) * block,
                "seed {seed}: partial block visible"
            );
            tape.push(Value::I32(l as i32));
        }
        assert_eq!(tape.len(), blocks * block);
        // Physical slot p of block b holds logical b*block + (p%sw)*rate + p/sw.
        for b in 0..blocks {
            for i in 0..rate {
                let row = tape.vpop(sw);
                let want: Vec<Value> = (0..sw)
                    .map(|j| Value::I32((b * block + j * rate + i) as i32))
                    .collect();
                assert_eq!(row, want, "seed {seed} rate {rate} sw {sw} row {i}");
            }
        }
        assert!(tape.is_empty(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// SAGU / permutation-network agreement.
// ---------------------------------------------------------------------

#[test]
fn sagu_models_agree() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x5A61 ^ (seed << 4));
        let rate = rng.range(1, 200) as u16;
        let sw = 1u16 << rng.range(1, 5);
        let steps = rng.range(1, 400);
        let mut hw = Sagu::new(rate, sw);
        let mut sw_model = SoftwareAddrGen::new(rate as u64, sw as u64);
        for k in 0..steps {
            let a = hw.next_address();
            let b = sw_model.next_address();
            let c = column_major_index(k, rate as usize, sw as usize) as u64;
            assert_eq!(a, b, "rate {rate} sw {sw} step {k}");
            assert_eq!(a, c, "rate {rate} sw {sw} step {k}");
        }
    }
}

#[test]
fn gather_plan_is_stride_permutation() {
    for logp in 0u32..5 {
        for logw in 1u32..5 {
            let p = 1usize << logp;
            let sw = 1usize << logw;
            let elems: Vec<i32> = (0..(p * sw) as i32).collect();
            let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
            let got = gather_plan(p, sw).apply(&loads);
            for (j, vec) in got.iter().enumerate() {
                for (l, &x) in vec.iter().enumerate() {
                    assert_eq!(x as usize, l * p + j);
                }
            }
        }
    }
}

#[test]
fn scatter_plan_inverts_lane_major() {
    for q2 in 1usize..9 {
        for logw in 1u32..4 {
            let q = q2 * 2;
            let sw = 1usize << logw;
            let vecs: Vec<Vec<i32>> = (0..q)
                .map(|j| (0..sw).map(|l| (l * q + j) as i32).collect())
                .collect();
            let got = scatter_plan(q, sw).apply(&vecs);
            let flat: Vec<i32> = got.into_iter().flatten().collect();
            for (pos, &x) in flat.iter().enumerate() {
                assert_eq!(x as usize, pos);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random pipelines through the FULL macro-SIMDization driver.
// ---------------------------------------------------------------------

/// Random pipeline: 1..4 random actors chained between a source and sink,
/// run through `macro_simdize` with all transforms enabled — vertical
/// fusion, Equation-1 scaling, cost-model tape modes, the lot — and
/// checked bit-exact at matched throughput.
#[test]
fn random_pipeline_full_driver() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0xF0D ^ (seed << 6));
        let n_actors = rng.range(1, 4);
        let specs: Vec<ActorSpec> = (0..n_actors).map(|_| gen_actor(&mut rng)).collect();

        use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};

        let mut stages = vec![i32_source()];
        for (i, spec) in specs.iter().enumerate() {
            let mut f = build_actor(spec);
            f.name = format!("actor{i}");
            stages.push(StreamSpec::filter(f, ScalarTy::I32));
        }
        stages.push(StreamSpec::Sink);
        let g = StreamSpec::pipeline(stages).build().unwrap();

        for machine in [Machine::core_i7(), Machine::core_i7_with_sagu()] {
            let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
            let mut ssched = Schedule::compute(&g).unwrap();
            let src = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
            let l = macross_repro::sdf::lcm(ssched.rep(src), simd.schedule.reps[src.0 as usize]);
            let m1 = l / ssched.rep(src);
            ssched.scale(m1);
            let mut vsched = simd.schedule.clone();
            vsched.scale(l / vsched.reps[src.0 as usize]);
            let a = run_scheduled(&g, &ssched, &machine, 2).unwrap();
            let b = run_scheduled(&simd.graph, &vsched, &machine, 2).unwrap();
            assert_eq!(&a.output, &b.output, "seed {seed}");
        }
    }
}

/// Random isomorphic split-joins through the full driver (horizontal).
#[test]
fn random_splitjoin_full_driver() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0x5B11 ^ (seed << 5));
        let spec = gen_actor(&mut rng);
        let consts: Vec<i32> = (0..4).map(|_| rng.range_i32(-20, 20)).collect();

        use macross_repro::macross::driver::{macro_simdize, SimdizeOptions};

        // Four branches: same structure, one differing constant appended.
        let branches: Vec<StreamSpec> = consts
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut f = build_actor(&spec);
                f.name = format!("iso{i}");
                // Append a branch-specific constant to the last push.
                if let Some(macross_repro::streamir::Stmt::Push(e)) = f.work.pop() {
                    f.work.push(macross_repro::streamir::Stmt::Push(Expr::bin(
                        BinOp::Xor,
                        e,
                        Expr::Const(Value::I32(k)),
                    )));
                }
                StreamSpec::filter(f, ScalarTy::I32)
            })
            .collect();

        let actor = build_actor(&spec);
        let n = actor.pop.max(1);
        let mut src = FilterBuilder::new("src", 0, 0, 4 * n, ScalarTy::I32);
        let s = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            for _ in 0..4 * n {
                b.push(v(s));
                b.set(s, v(s) * 75i32 + 74i32);
            }
        });
        let g = StreamSpec::pipeline(vec![
            src.build_spec(),
            StreamSpec::SplitJoin {
                split: macross_repro::streamir::SplitKind::RoundRobin(vec![actor.pop; 4]),
                branches,
                join: vec![actor.push.max(1); 4],
            },
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();

        let machine = Machine::core_i7();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        let mut ssched = Schedule::compute(&g).unwrap();
        let src_id = g.node_ids().find(|&id| g.in_edges(id).is_empty()).unwrap();
        let l = macross_repro::sdf::lcm(ssched.rep(src_id), simd.schedule.reps[src_id.0 as usize]);
        let m1 = l / ssched.rep(src_id);
        ssched.scale(m1);
        let mut vsched = simd.schedule.clone();
        vsched.scale(l / vsched.reps[src_id.0 as usize]);
        let a = run_scheduled(&g, &ssched, &machine, 2).unwrap();
        let b = run_scheduled(&simd.graph, &vsched, &machine, 2).unwrap();
        assert_eq!(&a.output, &b.output, "seed {seed}");
        // Four identical-shape branches must merge horizontally.
        assert!(!simd.report.horizontal_groups.is_empty(), "seed {seed}");
    }
}
