//! Elaboration: instantiate parsed declarations into the stream IR.
//!
//! Parameters are compile-time constants substituted at instantiation —
//! the "static parameter propagation" prepass the paper notes helps
//! isomorphic-actor detection (two `Band(0.1)` / `Band(0.2)` instances
//! elaborate to structurally identical filters differing only in
//! constants, exactly what horizontal SIMDization wants).

use crate::ast::*;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::B;
use macross_streamir::expr::{BinOp, Expr, Intrinsic, LValue, UnOp, VarId};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::graph::{Graph, SplitKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{ScalarTy, Ty, Value};
use std::collections::HashMap;
use std::fmt;

/// Elaboration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ElabError {
    /// `add Foo(...)` references an unknown declaration.
    UnknownStream(String),
    /// Wrong number of instantiation arguments.
    Arity {
        name: String,
        expected: usize,
        got: usize,
    },
    /// An instantiation argument is not a compile-time constant.
    NonConstArg(String),
    /// Identifier not in scope.
    UnknownIdent(String),
    /// Name declared twice in the same scope.
    Duplicate(String),
    /// Type error (with explanation).
    Type(String),
    /// Unknown function call.
    UnknownCall(String),
    /// Structural problem (recursion, rates, graph building).
    Structure(String),
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::UnknownStream(s) => write!(f, "unknown stream `{s}`"),
            ElabError::Arity {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` expects {expected} arguments, got {got}")
            }
            ElabError::NonConstArg(s) => {
                write!(f, "argument to `{s}` is not a compile-time constant")
            }
            ElabError::UnknownIdent(s) => write!(f, "unknown identifier `{s}`"),
            ElabError::Duplicate(s) => write!(f, "`{s}` declared twice"),
            ElabError::Type(s) => write!(f, "type error: {s}"),
            ElabError::UnknownCall(s) => write!(f, "unknown function `{s}`"),
            ElabError::Structure(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for ElabError {}

fn scalar_of(t: LType) -> ScalarTy {
    match t {
        LType::Int => ScalarTy::I32,
        LType::Float => ScalarTy::F32,
    }
}

/// Elaborate `top` (usually `Main`) into a flattened graph.
///
/// # Errors
/// See [`ElabError`].
pub fn elaborate(program: &LProgram, top: &str) -> Result<Graph, ElabError> {
    let spec = instantiate(program, top, &[], &mut Vec::new())?;
    spec.build()
        .map_err(|e| ElabError::Structure(e.to_string()))
}

/// Instantiate a declaration with constant arguments into a [`StreamSpec`].
pub fn instantiate(
    program: &LProgram,
    name: &str,
    args: &[Value],
    stack: &mut Vec<String>,
) -> Result<StreamSpec, ElabError> {
    if name == "Sink" {
        return Ok(StreamSpec::Sink);
    }
    if stack.iter().any(|s| s == name) {
        return Err(ElabError::Structure(format!("recursive stream `{name}`")));
    }
    let decl = program
        .find(name)
        .ok_or_else(|| ElabError::UnknownStream(name.into()))?;
    stack.push(name.to_string());
    let result = match decl {
        LDecl::Filter(f) => elaborate_filter(f, args),
        LDecl::Pipeline(p) => {
            let env = bind_params(&p.params, args, &p.name)?;
            let mut children = Vec::new();
            for add in &p.children {
                let child_args = eval_args(&add.args, &env, &add.name)?;
                children.push(instantiate(program, &add.name, &child_args, stack)?);
            }
            Ok(StreamSpec::Pipeline(children))
        }
        LDecl::SplitJoin(sj) => {
            let env = bind_params(&sj.params, args, &sj.name)?;
            let split = match &sj.split {
                LSplit::Duplicate => SplitKind::Duplicate,
                LSplit::RoundRobin(ws) => SplitKind::RoundRobin(eval_weights(ws, &env)?),
            };
            let join = eval_weights(&sj.join, &env)?;
            let mut children = Vec::new();
            for add in &sj.children {
                let child_args = eval_args(&add.args, &env, &add.name)?;
                children.push(instantiate(program, &add.name, &child_args, stack)?);
            }
            Ok(StreamSpec::SplitJoin {
                split,
                branches: children,
                join,
            })
        }
    };
    stack.pop();
    result
}

fn bind_params(
    params: &[LParam],
    args: &[Value],
    name: &str,
) -> Result<HashMap<String, Value>, ElabError> {
    if params.len() != args.len() {
        return Err(ElabError::Arity {
            name: name.into(),
            expected: params.len(),
            got: args.len(),
        });
    }
    let mut env = HashMap::new();
    for (p, a) in params.iter().zip(args) {
        let v = a.cast(scalar_of(p.ty));
        if env.insert(p.name.clone(), v).is_some() {
            return Err(ElabError::Duplicate(p.name.clone()));
        }
    }
    Ok(env)
}

fn eval_args(
    args: &[LExpr],
    env: &HashMap<String, Value>,
    callee: &str,
) -> Result<Vec<Value>, ElabError> {
    args.iter()
        .map(|a| const_eval(a, env).ok_or_else(|| ElabError::NonConstArg(callee.into())))
        .collect()
}

fn eval_weights(ws: &[LExpr], env: &HashMap<String, Value>) -> Result<Vec<usize>, ElabError> {
    ws.iter()
        .map(|w| {
            const_eval(w, env)
                .map(|v| v.as_i64().max(0) as usize)
                .ok_or_else(|| ElabError::NonConstArg("splitter/joiner weight".into()))
        })
        .collect()
}

/// Fold a constant expression over the parameter environment.
fn const_eval(e: &LExpr, env: &HashMap<String, Value>) -> Option<Value> {
    match e {
        LExpr::Int(v) => Some(Value::I32(*v as i32)),
        LExpr::Float(v) => Some(Value::F32(*v as f32)),
        LExpr::Ident(name) => env.get(name).copied(),
        LExpr::Unary(LUnOp::Neg, a) => Some(macross_streamir::expr::eval_unop(
            UnOp::Neg,
            const_eval(a, env)?,
        )),
        LExpr::Binary(op, a, b) => {
            let (a, b) = (const_eval(a, env)?, const_eval(b, env)?);
            let (a, b) = promote(a, b);
            Some(macross_streamir::expr::eval_binop(lower_binop(*op), a, b))
        }
        LExpr::Cast(t, a) => Some(const_eval(a, env)?.cast(scalar_of(*t))),
        _ => None,
    }
}

fn promote(a: Value, b: Value) -> (Value, Value) {
    match (a.ty().is_float(), b.ty().is_float()) {
        (true, false) => (a, b.cast(a.ty())),
        (false, true) => (a.cast(b.ty()), b),
        _ => (a, b),
    }
}

fn lower_binop(op: LBinOp) -> BinOp {
    match op {
        LBinOp::Add => BinOp::Add,
        LBinOp::Sub => BinOp::Sub,
        LBinOp::Mul => BinOp::Mul,
        LBinOp::Div => BinOp::Div,
        LBinOp::Rem => BinOp::Rem,
        LBinOp::And => BinOp::And,
        LBinOp::Or => BinOp::Or,
        LBinOp::Xor => BinOp::Xor,
        LBinOp::Shl => BinOp::Shl,
        LBinOp::Shr => BinOp::Shr,
        LBinOp::Eq => BinOp::Eq,
        LBinOp::Ne => BinOp::Ne,
        LBinOp::Lt => BinOp::Lt,
        LBinOp::Le => BinOp::Le,
        LBinOp::Gt => BinOp::Gt,
        LBinOp::Ge => BinOp::Ge,
    }
}

struct FilterCtx<'a> {
    filter: Filter,
    params: HashMap<String, Value>,
    /// Scope stack: name -> (var, type).
    scopes: Vec<HashMap<String, (VarId, LType)>>,
    in_ty: LType,
    out_ty: LType,
    decl: &'a LFilter,
    discard: Option<VarId>,
}

fn elaborate_filter(decl: &LFilter, args: &[Value]) -> Result<StreamSpec, ElabError> {
    let params = bind_params(&decl.params, args, &decl.name)?;
    let in_ty = decl.in_ty.unwrap_or(LType::Float);
    let out_ty = decl.out_ty.unwrap_or(LType::Float);
    let peek = decl.peek.unwrap_or(decl.pop);
    if peek < decl.pop {
        return Err(ElabError::Structure(format!(
            "filter {}: peek < pop",
            decl.name
        )));
    }
    let filter = Filter::new(decl.name.clone(), peek, decl.pop, decl.push);
    let mut ctx = FilterCtx {
        filter,
        params,
        scopes: vec![HashMap::new()],
        in_ty,
        out_ty,
        decl,
        discard: None,
    };

    // State declarations.
    let mut state_inits: Vec<Stmt> = Vec::new();
    for s in &decl.state {
        let ty = match s.len {
            Some(n) => Ty::Array(scalar_of(s.ty), n),
            None => Ty::Scalar(scalar_of(s.ty)),
        };
        let id = ctx.filter.add_var(s.name.clone(), ty, VarKind::State);
        if ctx.scopes[0].insert(s.name.clone(), (id, s.ty)).is_some() {
            return Err(ElabError::Duplicate(s.name.clone()));
        }
        if let Some(init) = &s.init {
            if s.len.is_some() {
                return Err(ElabError::Type(format!(
                    "array state `{}` cannot have a scalar initializer",
                    s.name
                )));
            }
            let (e, t) = ctx.expr(init)?;
            let e = ctx.coerce(e, t, s.ty)?;
            state_inits.push(Stmt::Assign(LValue::Var(id), e));
        }
    }

    // Init function.
    let mut init_block = B::new();
    for s in state_inits {
        init_block.stmt(s);
    }
    let init_body = ctx.block(&decl.init)?;
    let mut init = init_block.build();
    init.extend(init_body);
    ctx.filter.init = init;

    // Work function.
    ctx.filter.work = ctx.block(&decl.work)?;

    let out_elem = scalar_of(out_ty);
    macross_streamir::analysis::check_rates(&ctx.filter)
        .map_err(|e| ElabError::Structure(e.to_string()))?;
    Ok(StreamSpec::Filter {
        filter: ctx.filter,
        out_elem,
    })
}

impl<'a> FilterCtx<'a> {
    fn lookup(&self, name: &str) -> Option<(VarId, LType)> {
        for scope in self.scopes.iter().rev() {
            if let Some(&hit) = scope.get(name) {
                return Some(hit);
            }
        }
        None
    }

    fn declare(&mut self, name: &str, ty: LType, kind: VarKind) -> Result<VarId, ElabError> {
        if self.scopes.last().unwrap().contains_key(name) {
            return Err(ElabError::Duplicate(name.into()));
        }
        let id = self.filter.add_var(name, Ty::Scalar(scalar_of(ty)), kind);
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.into(), (id, ty));
        Ok(id)
    }

    fn coerce(&self, e: Expr, from: LType, to: LType) -> Result<Expr, ElabError> {
        match (from, to) {
            (a, b) if a == b => Ok(e),
            (LType::Int, LType::Float) => Ok(Expr::Cast(ScalarTy::F32, Box::new(e))),
            (LType::Float, LType::Int) => Err(ElabError::Type(
                "implicit float->int narrowing; use an explicit (int) cast".into(),
            )),
            _ => unreachable!(),
        }
    }

    fn block(&mut self, stmts: &[LStmt]) -> Result<Vec<Stmt>, ElabError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        self.scopes.pop();
        Ok(out)
    }

    fn stmt(&mut self, s: &LStmt, out: &mut Vec<Stmt>) -> Result<(), ElabError> {
        match s {
            LStmt::DeclLocal { ty, name, init } => {
                let id = self.declare(name, *ty, VarKind::Local)?;
                if let Some(e) = init {
                    let (e, t) = self.expr(e)?;
                    let e = self.coerce(e, t, *ty)?;
                    out.push(Stmt::Assign(LValue::Var(id), e));
                }
            }
            LStmt::Assign(name, e) => {
                let (id, ty) = self
                    .lookup(name)
                    .ok_or_else(|| ElabError::UnknownIdent(name.clone()))?;
                let (e, t) = self.expr(e)?;
                let e = self.coerce(e, t, ty)?;
                out.push(Stmt::Assign(LValue::Var(id), e));
            }
            LStmt::AssignIndex(name, idx, e) => {
                let (id, ty) = self
                    .lookup(name)
                    .ok_or_else(|| ElabError::UnknownIdent(name.clone()))?;
                let (idx, it) = self.expr(idx)?;
                if it != LType::Int {
                    return Err(ElabError::Type(format!(
                        "subscript of `{name}` must be int"
                    )));
                }
                let (e, t) = self.expr(e)?;
                let e = self.coerce(e, t, ty)?;
                out.push(Stmt::Assign(LValue::Index(id, idx), e));
            }
            LStmt::Push(e) => {
                let (e, t) = self.expr(e)?;
                let e = self.coerce(e, t, self.out_ty)?;
                out.push(Stmt::Push(e));
            }
            LStmt::For { var, bound, body } => {
                self.scopes.push(HashMap::new());
                let id = self.declare(var, LType::Int, VarKind::Local)?;
                let (bound, bt) = self.expr(bound)?;
                if bt != LType::Int {
                    return Err(ElabError::Type("loop bound must be int".into()));
                }
                let mut inner = Vec::new();
                for s in body {
                    self.stmt(s, &mut inner)?;
                }
                self.scopes.pop();
                out.push(Stmt::For {
                    var: id,
                    count: bound,
                    body: inner,
                });
            }
            LStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (cond, ct) = self.expr(cond)?;
                if ct != LType::Int {
                    return Err(ElabError::Type(
                        "condition must be int (comparisons yield int)".into(),
                    ));
                }
                let t = self.block(then_branch)?;
                let e = self.block(else_branch)?;
                out.push(Stmt::If {
                    cond,
                    then_branch: t,
                    else_branch: e,
                });
            }
            LStmt::ExprStmt(e) => {
                // Only useful for its tape effect: `pop();`.
                let (e, t) = self.expr(e)?;
                let discard = match self.discard {
                    Some(d) => d,
                    None => {
                        let d = self.filter.add_var(
                            "__discard",
                            Ty::Scalar(scalar_of(t)),
                            VarKind::Local,
                        );
                        self.discard = Some(d);
                        d
                    }
                };
                out.push(Stmt::Assign(LValue::Var(discard), e));
            }
        }
        Ok(())
    }

    /// Lower an expression, returning its type.
    fn expr(&mut self, e: &LExpr) -> Result<(Expr, LType), ElabError> {
        match e {
            LExpr::Int(v) => Ok((Expr::Const(Value::I32(*v as i32)), LType::Int)),
            LExpr::Float(v) => Ok((Expr::Const(Value::F32(*v as f32)), LType::Float)),
            LExpr::Ident(name) => {
                if let Some((id, ty)) = self.lookup(name) {
                    Ok((Expr::Var(id), ty))
                } else if let Some(v) = self.params.get(name) {
                    let ty = if v.ty().is_float() {
                        LType::Float
                    } else {
                        LType::Int
                    };
                    Ok((Expr::Const(*v), ty))
                } else {
                    Err(ElabError::UnknownIdent(name.clone()))
                }
            }
            LExpr::Index(name, idx) => {
                let (id, ty) = self
                    .lookup(name)
                    .ok_or_else(|| ElabError::UnknownIdent(name.clone()))?;
                let (idx, it) = self.expr(idx)?;
                if it != LType::Int {
                    return Err(ElabError::Type(format!(
                        "subscript of `{name}` must be int"
                    )));
                }
                Ok((Expr::Index(id, Box::new(idx)), ty))
            }
            LExpr::Unary(op, a) => {
                let (a, t) = self.expr(a)?;
                let op = match op {
                    LUnOp::Neg => UnOp::Neg,
                    LUnOp::Not => {
                        if t != LType::Int {
                            return Err(ElabError::Type("~ requires int".into()));
                        }
                        UnOp::Not
                    }
                    LUnOp::LogNot => UnOp::LogNot,
                };
                let rt = if op == UnOp::LogNot { LType::Int } else { t };
                Ok((Expr::Unary(op, Box::new(a)), rt))
            }
            LExpr::Binary(op, a, b) => {
                let (a, ta) = self.expr(a)?;
                let (b, tb) = self.expr(b)?;
                let lop = lower_binop(*op);
                // Promote int -> float when mixed.
                let (a, b, t) = match (ta, tb) {
                    (LType::Int, LType::Float) => {
                        (Expr::Cast(ScalarTy::F32, Box::new(a)), b, LType::Float)
                    }
                    (LType::Float, LType::Int) => {
                        (a, Expr::Cast(ScalarTy::F32, Box::new(b)), LType::Float)
                    }
                    (t, _) => (a, b, t),
                };
                if lop.is_integer_only() && t != LType::Int {
                    return Err(ElabError::Type(format!(
                        "operator `{}` requires int operands",
                        lop.symbol()
                    )));
                }
                let rt = if lop.is_comparison() { LType::Int } else { t };
                Ok((Expr::bin(lop, a, b), rt))
            }
            LExpr::Cast(t, a) => {
                let (a, _) = self.expr(a)?;
                Ok((Expr::Cast(scalar_of(*t), Box::new(a)), *t))
            }
            LExpr::Call(name, args) => self.call(name, args),
        }
    }

    fn call(&mut self, name: &str, args: &[LExpr]) -> Result<(Expr, LType), ElabError> {
        let arity = |n: usize| -> Result<(), ElabError> {
            if args.len() != n {
                Err(ElabError::Arity {
                    name: name.into(),
                    expected: n,
                    got: args.len(),
                })
            } else {
                Ok(())
            }
        };
        match name {
            "pop" => {
                arity(0)?;
                Ok((Expr::Pop, self.in_ty))
            }
            "peek" => {
                arity(1)?;
                let (off, t) = self.expr(&args[0])?;
                if t != LType::Int {
                    return Err(ElabError::Type("peek offset must be int".into()));
                }
                Ok((Expr::Peek(Box::new(off)), self.in_ty))
            }
            _ => {
                let intr = match name {
                    "sin" => Intrinsic::Sin,
                    "cos" => Intrinsic::Cos,
                    "atan" => Intrinsic::Atan,
                    "sqrt" => Intrinsic::Sqrt,
                    "exp" => Intrinsic::Exp,
                    "log" => Intrinsic::Log,
                    "floor" => Intrinsic::Floor,
                    "abs" => Intrinsic::Abs,
                    "min" => Intrinsic::Min,
                    "max" => Intrinsic::Max,
                    "pow" => Intrinsic::Pow,
                    _ => return Err(ElabError::UnknownCall(name.into())),
                };
                arity(intr.arity())?;
                let mut parts = Vec::new();
                for a in args {
                    parts.push(self.expr(a)?);
                }
                // Float intrinsics promote int args; abs/min/max keep ints.
                let keep_int = matches!(intr, Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max)
                    && parts.iter().all(|(_, t)| *t == LType::Int);
                let rt = if keep_int { LType::Int } else { LType::Float };
                let lowered = parts
                    .into_iter()
                    .map(|(e, t)| {
                        if rt == LType::Float && t == LType::Int {
                            Expr::Cast(ScalarTy::F32, Box::new(e))
                        } else {
                            e
                        }
                    })
                    .collect();
                Ok((Expr::Call(intr, lowered), rt))
            }
        }
    }
}

// Silence an unused-field warning: `decl` is kept for richer diagnostics.
impl<'a> FilterCtx<'a> {
    #[allow(dead_code)]
    fn name(&self) -> &str {
        &self.decl.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Result<Graph, ElabError> {
        let p = parse(src).expect("parses");
        elaborate(&p, "Main")
    }

    const PROGRAM: &str = r#"
        void->float filter Ramp(int modulus) {
            int n = 0;
            work push 1 {
                push((float) n * 0.5);
                n = (n + 1) % modulus;
            }
        }
        float->float filter Scale(float k) {
            work pop 1 push 1 {
                push(pop() * k);
            }
        }
        void->void pipeline Main() {
            add Ramp(100);
            add Scale(2.0);
            add Sink();
        }
    "#;

    #[test]
    fn compiles_and_runs() {
        let g = compile(PROGRAM).unwrap();
        assert_eq!(g.node_count(), 3);
        let sched = macross_sdf::Schedule::compute(&g).unwrap();
        let res =
            macross_vm::run_scheduled(&g, &sched, &macross_vm::Machine::core_i7(), 4).unwrap();
        assert_eq!(res.output.len(), 4);
        assert_eq!(res.output[2], Value::F32(2.0)); // (2 * 0.5) * 2.0
    }

    #[test]
    fn parameters_fold_to_constants() {
        let g = compile(PROGRAM).unwrap();
        let scale = g
            .nodes()
            .find_map(|(_, n)| n.as_filter().filter(|f| f.name == "Scale"))
            .unwrap();
        let text = scale.work.iter().map(|s| s.to_string()).collect::<String>();
        assert!(
            text.contains("2.0f"),
            "param must be a folded constant: {text}"
        );
    }

    #[test]
    fn splitjoin_elaborates_isomorphic_branches() {
        let src = r#"
            void->float filter Ramp() {
                int n = 0;
                work push 1 { push((float) n); n = (n + 1) % 64; }
            }
            float->float filter Band(float w) {
                work pop 1 push 1 { push(pop() * w); }
            }
            float->float splitjoin Eq() {
                split duplicate;
                add Band(0.1);
                add Band(0.2);
                add Band(0.3);
                add Band(0.4);
                join roundrobin(1, 1, 1, 1);
            }
            float->float filter Sum() {
                work pop 4 push 1 {
                    push(pop() + pop() + pop() + pop());
                }
            }
            void->void pipeline Main() {
                add Ramp();
                add Eq();
                add Sum();
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        // Horizontal SIMDization should find and merge the four bands.
        let simd = macross::driver::macro_simdize(
            &g,
            &macross_vm::Machine::core_i7(),
            &macross::driver::SimdizeOptions::all(),
        )
        .unwrap();
        assert!(
            !simd.report.horizontal_groups.is_empty(),
            "{:?}",
            simd.report
        );
    }

    #[test]
    fn stateful_filter_from_source() {
        let src = r#"
            void->float filter Ramp() {
                int n = 0;
                work push 1 { push((float) n); n = n + 1; }
            }
            float->float filter Acc() {
                float total = 0.0;
                work pop 1 push 1 {
                    total = total + pop();
                    push(total);
                }
            }
            void->void pipeline Main() {
                add Ramp();
                add Acc();
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        let sched = macross_sdf::Schedule::compute(&g).unwrap();
        let res =
            macross_vm::run_scheduled(&g, &sched, &macross_vm::Machine::core_i7(), 4).unwrap();
        assert_eq!(
            res.output,
            vec![
                Value::F32(0.0),
                Value::F32(1.0),
                Value::F32(3.0),
                Value::F32(6.0)
            ]
        );
    }

    #[test]
    fn fir_with_peek_and_discard() {
        let src = r#"
            void->float filter Ramp() {
                int n = 0;
                work push 1 { push((float) n); n = (n + 1) % 32; }
            }
            float->float filter MovingSum() {
                work peek 3 pop 1 push 1 {
                    push(peek(0) + peek(1) + peek(2));
                    pop();
                }
            }
            void->void pipeline Main() {
                add Ramp();
                add MovingSum();
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        let sched = macross_sdf::Schedule::compute(&g).unwrap();
        let res =
            macross_vm::run_scheduled(&g, &sched, &macross_vm::Machine::core_i7(), 3).unwrap();
        assert_eq!(
            res.output,
            vec![Value::F32(3.0), Value::F32(6.0), Value::F32(9.0)]
        );
    }

    #[test]
    fn errors_are_reported() {
        let bad_ident = r#"
            void->float filter F() { work push 1 { push(x); } }
            void->void pipeline Main() { add F(); add Sink(); }
        "#;
        assert!(matches!(
            compile(bad_ident),
            Err(ElabError::UnknownIdent(_))
        ));

        let bad_arity = r#"
            float->float filter G(float k) { work pop 1 push 1 { push(pop() * k); } }
            void->void pipeline Main() { add G(); add Sink(); }
        "#;
        assert!(matches!(compile(bad_arity), Err(ElabError::Arity { .. })));

        let narrowing = r#"
            void->int filter H() { int n = 0; work push 1 { n = 1.5; push(n); } }
            void->void pipeline Main() { add H(); add Sink(); }
        "#;
        assert!(matches!(compile(narrowing), Err(ElabError::Type(_))));
    }

    #[test]
    fn declared_rates_are_verified() {
        let src = r#"
            void->float filter Liar() {
                work push 2 { push(1.0); }
            }
            void->void pipeline Main() { add Liar(); add Sink(); }
        "#;
        assert!(matches!(compile(src), Err(ElabError::Structure(_))));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Result<Graph, ElabError> {
        elaborate(&parse(src).expect("parses"), "Main")
    }

    #[test]
    fn if_else_and_int_streams() {
        let src = r#"
            void->int filter Count() {
                int n = 0;
                work push 1 { push(n); n = (n + 1) % 17; }
            }
            int->int filter Clamp(int lo, int hi) {
                work pop 1 push 1 {
                    int x = pop();
                    if (x < lo) {
                        push(lo);
                    } else {
                        if (x > hi) { push(hi); } else { push(x); }
                    }
                }
            }
            void->void pipeline Main() {
                add Count();
                add Clamp(3, 12);
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        let sched = macross_sdf::Schedule::compute(&g).unwrap();
        let res =
            macross_vm::run_scheduled(&g, &sched, &macross_vm::Machine::core_i7(), 17).unwrap();
        let vals: Vec<i64> = res.output.iter().map(|v| v.as_i64()).collect();
        assert_eq!(vals[0], 3); // clamped up
        assert_eq!(vals[5], 5);
        assert_eq!(vals[16], 12); // clamped down
    }

    #[test]
    fn nested_composites_and_param_weights() {
        let src = r#"
            void->float filter Ramp() {
                int n = 0;
                work push 2 {
                    push((float) n);
                    push((float) n + 0.5);
                    n = (n + 1) % 40;
                }
            }
            float->float filter Half() {
                work pop 1 push 1 { push(pop() * 0.5); }
            }
            float->float pipeline TwoHalves() {
                add Half();
                add Half();
            }
            float->float splitjoin Fan(int w) {
                split roundrobin(w, w);
                add TwoHalves();
                add Half();
                join roundrobin(w, w);
            }
            void->void pipeline Main() {
                add Ramp();
                add Fan(1);
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        let sched = macross_sdf::Schedule::compute(&g).unwrap();
        let res =
            macross_vm::run_scheduled(&g, &sched, &macross_vm::Machine::core_i7(), 2).unwrap();
        let vals: Vec<f64> = res.output.iter().map(|v| v.as_f64()).collect();
        // Branch 0 halves twice (x0.25), branch 1 once (x0.5), round-robin.
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 0.25);
        assert_eq!(vals[2], 0.25);
        assert_eq!(vals[3], 0.75);
    }

    #[test]
    fn integer_bitops_language_level() {
        let src = r#"
            void->int filter Lcg() {
                int n = 1;
                work push 1 { push(n & 255); n = n * 75 + 74; }
            }
            int->int filter Mix() {
                work pop 2 push 1 {
                    int a = pop();
                    int b = pop();
                    push((a ^ (b << 3)) | (a >> 2));
                }
            }
            void->void pipeline Main() {
                add Lcg();
                add Mix();
                add Sink();
            }
        "#;
        let g = compile(src).unwrap();
        // Full SIMDization of the language-built graph stays bit-exact.
        let machine = macross_vm::Machine::core_i7();
        let simd = macross::driver::macro_simdize(&g, &machine, &Default::default()).unwrap();
        let mut ssched = macross_sdf::Schedule::compute(&g).unwrap();
        ssched.scale(simd.report.scale_factor.max(1));
        let a = macross_vm::run_scheduled(&g, &ssched, &machine, 6).unwrap();
        let b = macross_vm::run_scheduled(&simd.graph, &simd.schedule, &machine, 6).unwrap();
        assert_eq!(a.output, b.output);
        assert!(!simd.report.single_actors.is_empty() || !simd.report.vertical_chains.is_empty());
    }
}
