//! Lexer for the StreamIt-like surface language.

use std::fmt;

/// A token with its source position (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    // Punctuation / operators.
    Arrow, // ->
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl, // <<
    Shr, // >>
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    PlusPlus, // ++
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            other => {
                let s = match other {
                    Tok::Arrow => "->",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Assign => "=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Tilde => "~",
                    Tok::Bang => "!",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::PlusPlus => "++",
                    Tok::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A lexical error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string. Supports `//` line and `/* */` block
/// comments.
///
/// # Errors
/// Returns the first lexical error (unknown character, malformed number,
/// unterminated comment).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |msg: &str, line: usize, col: usize| LexError {
        message: msg.into(),
        line,
        col,
    };

    macro_rules! push {
        ($kind:expr, $n:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $n;
            col += $n;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let c2 = chars.get(i + 1).copied().unwrap_or('\0');
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if c2 == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if c2 == '*' => {
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(err("unterminated block comment", sl, sc));
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '-' if c2 == '>' => push!(Tok::Arrow, 2),
            '+' if c2 == '+' => push!(Tok::PlusPlus, 2),
            '<' if c2 == '<' => push!(Tok::Shl, 2),
            '>' if c2 == '>' => push!(Tok::Shr, 2),
            '=' if c2 == '=' => push!(Tok::EqEq, 2),
            '!' if c2 == '=' => push!(Tok::NotEq, 2),
            '<' if c2 == '=' => push!(Tok::Le, 2),
            '>' if c2 == '=' => push!(Tok::Ge, 2),
            '&' if c2 == '&' => push!(Tok::AndAnd, 2),
            '|' if c2 == '|' => push!(Tok::OrOr, 2),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            '=' => push!(Tok::Assign, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' => push!(Tok::Percent, 1),
            '&' => push!(Tok::Amp, 1),
            '|' => push!(Tok::Pipe, 1),
            '^' => push!(Tok::Caret, 1),
            '~' => push!(Tok::Tilde, 1),
            '!' => push!(Tok::Bang, 1),
            '<' => push!(Tok::Lt, 1),
            '>' => push!(Tok::Gt, 1),
            '0'..='9' => {
                let start = i;
                let scol = col;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let is_float = i < chars.len() && chars[i] == '.';
                if is_float {
                    i += 1;
                    col += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| err("malformed float literal", line, scol))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err("malformed integer literal", line, scol))?,
                    )
                };
                out.push(Token {
                    kind,
                    line,
                    col: scol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let scol = col;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token {
                    kind: Tok::Ident(text),
                    line,
                    col: scol,
                });
            }
            other => return Err(err(&format!("unexpected character {other:?}"), line, col)),
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_filter_header() {
        let ks = kinds("float->float filter Scale(float k)");
        assert_eq!(
            ks,
            vec![
                Tok::Ident("float".into()),
                Tok::Arrow,
                Tok::Ident("float".into()),
                Tok::Ident("filter".into()),
                Tok::Ident("Scale".into()),
                Tok::LParen,
                Tok::Ident("float".into()),
                Tok::Ident("k".into()),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let ks = kinds("x = 3 + 4.5 * (1 << 2);");
        assert!(ks.contains(&Tok::Int(3)));
        assert!(ks.contains(&Tok::Float(4.5)));
        assert!(ks.contains(&Tok::Shl));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n /* multi\nline */ b");
        assert_eq!(
            ks,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_character_reports_position() {
        let e = lex("a @").unwrap_err();
        assert_eq!((e.line, e.col), (1, 3));
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(lex("/* nope").is_err());
    }
}
