//! # macross-streamlang
//!
//! A StreamIt-like textual front end for the MacroSS reproduction: parse a
//! stream program, elaborate it into the stream IR, and hand it to the
//! macro-SIMDizer — the same pipeline the paper's compiler implements on
//! top of the StreamIt infrastructure.
//!
//! The language supports `filter` (with `init`, state variables, and a
//! rate-annotated `work` function), `pipeline`, and `splitjoin`
//! declarations with compile-time-constant parameters, which elaboration
//! substitutes ("static parameter propagation") so isomorphic instances
//! differ only in constants — exactly what horizontal SIMDization needs.
//!
//! ```
//! use macross_streamlang::compile;
//!
//! let graph = compile(r#"
//!     void->float filter Ramp() {
//!         int n = 0;
//!         work push 1 { push((float) n); n = (n + 1) % 100; }
//!     }
//!     float->float filter Scale(float k) {
//!         work pop 1 push 1 { push(pop() * k); }
//!     }
//!     void->void pipeline Main() {
//!         add Ramp();
//!         add Scale(3.0);
//!         add Sink();
//!     }
//! "#, "Main").unwrap();
//! assert_eq!(graph.node_count(), 3);
//! ```

pub mod ast;
pub mod elaborate;
pub mod lexer;
pub mod parser;

use macross_streamir::graph::Graph;
use std::fmt;

/// A front-end error: lexing/parsing or elaboration.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Syntax error with position.
    Parse(parser::ParseError),
    /// Semantic error.
    Elab(elaborate::ElabError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Elab(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

/// Parse and elaborate `src`, returning the flattened graph rooted at the
/// stream named `top`.
///
/// # Errors
/// Returns the first syntax or semantic error.
pub fn compile(src: &str, top: &str) -> Result<Graph, CompileError> {
    let program = parser::parse(src).map_err(CompileError::Parse)?;
    elaborate::elaborate(&program, top).map_err(CompileError::Elab)
}
