//! Recursive-descent parser for the StreamIt-like surface language.
//!
//! Grammar sketch (see the crate docs for a full example program):
//!
//! ```text
//! program   := decl*
//! decl      := [type '->' type] ('filter'|'pipeline'|'splitjoin') IDENT
//!              '(' params? ')' body
//! filter    := '{' (state ';' | 'init' block | 'work' rates block)* '}'
//! rates     := (('push'|'pop'|'peek') INT)*
//! pipeline  := '{' ('add' IDENT '(' args? ')' ';')* '}'
//! splitjoin := '{' 'split' ('duplicate' | 'roundrobin' '(' args ')') ';'
//!              adds 'join' 'roundrobin' '(' args ')' ';' '}'
//! ```

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// A parse error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a whole program.
///
/// # Errors
/// Returns the first lexical or syntactic error with its position.
pub fn parse(src: &str) -> Result<LProgram, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decls = Vec::new();
    while !p.at_eof() {
        decls.push(p.decl()?);
    }
    Ok(LProgram { decls })
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == Tok::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: msg.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &Tok) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.err(format!("expected `{kind}`, found `{}`", self.peek().kind))
        }
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek().kind.clone() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found `{other}`")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, Tok::Ident(s) if s == kw)
    }

    fn ty_opt(&mut self) -> Option<LType> {
        match &self.peek().kind {
            Tok::Ident(s) if s == "int" => {
                self.bump();
                Some(LType::Int)
            }
            Tok::Ident(s) if s == "float" => {
                self.bump();
                Some(LType::Float)
            }
            _ => None,
        }
    }

    fn ty(&mut self) -> Result<LType, ParseError> {
        match self.ty_opt() {
            Some(t) => Ok(t),
            None => self.err("expected a type (`int` or `float`)"),
        }
    }

    fn decl(&mut self) -> Result<LDecl, ParseError> {
        // Optional `T -> T` signature.
        let (mut in_ty, mut out_ty) = (None, None);
        if matches!(&self.peek().kind, Tok::Ident(s) if s == "int" || s == "float" || s == "void") {
            if let Tok::Ident(s) = self.peek().kind.clone() {
                self.bump();
                in_ty = match s.as_str() {
                    "int" => Some(LType::Int),
                    "float" => Some(LType::Float),
                    _ => None,
                };
            }
            self.expect(&Tok::Arrow)?;
            if let Tok::Ident(s) = self.peek().kind.clone() {
                self.bump();
                out_ty = match s.as_str() {
                    "int" => Some(LType::Int),
                    "float" => Some(LType::Float),
                    "void" => None,
                    _ => return self.err("expected output type"),
                };
            }
        }
        if self.is_kw("filter") {
            self.bump();
            self.filter(in_ty, out_ty).map(LDecl::Filter)
        } else if self.is_kw("pipeline") {
            self.bump();
            self.pipeline().map(LDecl::Pipeline)
        } else if self.is_kw("splitjoin") {
            self.bump();
            self.splitjoin().map(LDecl::SplitJoin)
        } else {
            self.err("expected `filter`, `pipeline`, or `splitjoin`")
        }
    }

    fn params(&mut self) -> Result<Vec<LParam>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let ty = self.ty()?;
                let name = self.ident()?;
                out.push(LParam { ty, name });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(out)
    }

    fn filter(
        &mut self,
        in_ty: Option<LType>,
        out_ty: Option<LType>,
    ) -> Result<LFilter, ParseError> {
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&Tok::LBrace)?;
        let mut f = LFilter {
            in_ty,
            out_ty,
            name,
            params,
            state: Vec::new(),
            init: Vec::new(),
            peek: None,
            pop: 0,
            push: 0,
            work: Vec::new(),
        };
        let mut saw_work = false;
        while !self.eat(&Tok::RBrace) {
            if self.is_kw("init") {
                self.bump();
                f.init = self.block()?;
            } else if self.is_kw("work") {
                self.bump();
                saw_work = true;
                loop {
                    if self.is_kw("push") {
                        self.bump();
                        f.push = self.usize_lit()?;
                    } else if self.is_kw("pop") {
                        self.bump();
                        f.pop = self.usize_lit()?;
                    } else if self.is_kw("peek") {
                        self.bump();
                        f.peek = Some(self.usize_lit()?);
                    } else {
                        break;
                    }
                }
                f.work = self.block()?;
            } else {
                // State declaration.
                let ty = self.ty()?;
                let name = self.ident()?;
                let len = if self.eat(&Tok::LBracket) {
                    let n = self.usize_lit()?;
                    self.expect(&Tok::RBracket)?;
                    Some(n)
                } else {
                    None
                };
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                f.state.push(LStateDecl {
                    ty,
                    name,
                    len,
                    init,
                });
            }
        }
        if !saw_work {
            return self.err(format!("filter {} has no work function", f.name));
        }
        Ok(f)
    }

    fn usize_lit(&mut self) -> Result<usize, ParseError> {
        match self.peek().kind.clone() {
            Tok::Int(v) if v >= 0 => {
                self.bump();
                Ok(v as usize)
            }
            other => self.err(format!("expected a non-negative integer, found `{other}`")),
        }
    }

    fn adds(&mut self) -> Result<Vec<LAdd>, ParseError> {
        let mut out = Vec::new();
        while self.is_kw("add") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut args = Vec::new();
            if !self.eat(&Tok::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            self.expect(&Tok::Semi)?;
            out.push(LAdd { name, args });
        }
        Ok(out)
    }

    fn pipeline(&mut self) -> Result<LPipeline, ParseError> {
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&Tok::LBrace)?;
        let children = self.adds()?;
        self.expect(&Tok::RBrace)?;
        if children.is_empty() {
            return self.err(format!("pipeline {name} has no children"));
        }
        Ok(LPipeline {
            name,
            params,
            children,
        })
    }

    fn splitjoin(&mut self) -> Result<LSplitJoin, ParseError> {
        let name = self.ident()?;
        let params = self.params()?;
        self.expect(&Tok::LBrace)?;
        self.keyword("split")?;
        let split = if self.is_kw("duplicate") {
            self.bump();
            LSplit::Duplicate
        } else {
            self.keyword("roundrobin")?;
            self.expect(&Tok::LParen)?;
            let mut ws = Vec::new();
            if !self.eat(&Tok::RParen) {
                loop {
                    ws.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            LSplit::RoundRobin(ws)
        };
        self.expect(&Tok::Semi)?;
        let children = self.adds()?;
        self.keyword("join")?;
        self.keyword("roundrobin")?;
        self.expect(&Tok::LParen)?;
        let mut join = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                join.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::Semi)?;
        self.expect(&Tok::RBrace)?;
        if children.is_empty() {
            return self.err(format!("splitjoin {name} has no children"));
        }
        Ok(LSplitJoin {
            name,
            params,
            split,
            children,
            join,
        })
    }

    fn block(&mut self) -> Result<Vec<LStmt>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&Tok::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<LStmt, ParseError> {
        if self.is_kw("for") {
            self.bump();
            self.expect(&Tok::LParen)?;
            self.keyword("int")?;
            let var = self.ident()?;
            self.expect(&Tok::Assign)?;
            match self.bump().kind {
                Tok::Int(0) => {}
                _ => return self.err("for loops must start at 0"),
            }
            self.expect(&Tok::Semi)?;
            let v2 = self.ident()?;
            if v2 != var {
                return self.err("for-loop condition must test the loop variable");
            }
            self.expect(&Tok::Lt)?;
            let bound = self.expr()?;
            self.expect(&Tok::Semi)?;
            let v3 = self.ident()?;
            if v3 != var {
                return self.err("for-loop increment must update the loop variable");
            }
            self.expect(&Tok::PlusPlus)?;
            self.expect(&Tok::RParen)?;
            let body = self.block()?;
            return Ok(LStmt::For { var, bound, body });
        }
        if self.is_kw("if") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            let then_branch = self.block()?;
            let else_branch = if self.is_kw("else") {
                self.bump();
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(LStmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.is_kw("push") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            return Ok(LStmt::Push(e));
        }
        // Local declaration?
        if (self.is_kw("int") || self.is_kw("float")) && matches!(&self.peek2().kind, Tok::Ident(_))
        {
            let ty = self.ty()?;
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            return Ok(LStmt::DeclLocal { ty, name, init });
        }
        // Assignment or expression statement.
        if let Tok::Ident(name) = self.peek().kind.clone() {
            match &self.peek2().kind {
                Tok::Assign => {
                    self.bump();
                    self.bump();
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    return Ok(LStmt::Assign(name, e));
                }
                Tok::LBracket => {
                    // Could be `a[i] = e;` — parse the index then check.
                    let save = self.pos;
                    self.bump();
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    if self.eat(&Tok::Assign) {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        return Ok(LStmt::AssignIndex(name, idx, e));
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        let e = self.expr()?;
        self.expect(&Tok::Semi)?;
        Ok(LStmt::ExprStmt(e))
    }

    fn expr(&mut self) -> Result<LExpr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<LExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek().kind {
                Tok::OrOr => (LBinOp::Or, 1), // logical or -> bitwise on 0/1
                Tok::AndAnd => (LBinOp::And, 2),
                Tok::Pipe => (LBinOp::Or, 3),
                Tok::Caret => (LBinOp::Xor, 4),
                Tok::Amp => (LBinOp::And, 5),
                Tok::EqEq => (LBinOp::Eq, 6),
                Tok::NotEq => (LBinOp::Ne, 6),
                Tok::Lt => (LBinOp::Lt, 7),
                Tok::Le => (LBinOp::Le, 7),
                Tok::Gt => (LBinOp::Gt, 7),
                Tok::Ge => (LBinOp::Ge, 7),
                Tok::Shl => (LBinOp::Shl, 8),
                Tok::Shr => (LBinOp::Shr, 8),
                Tok::Plus => (LBinOp::Add, 9),
                Tok::Minus => (LBinOp::Sub, 9),
                Tok::Star => (LBinOp::Mul, 10),
                Tok::Slash => (LBinOp::Div, 10),
                Tok::Percent => (LBinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = LExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<LExpr, ParseError> {
        match self.peek().kind {
            Tok::Minus => {
                self.bump();
                Ok(LExpr::Unary(LUnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(LExpr::Unary(LUnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(LExpr::Unary(LUnOp::LogNot, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<LExpr, ParseError> {
        match self.peek().kind.clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(LExpr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(LExpr::Float(v))
            }
            Tok::LParen => {
                // Cast `(int) e` / `(float) e` vs. parenthesized expression.
                if let Tok::Ident(s) = &self.peek2().kind {
                    if (s == "int" || s == "float")
                        && self.toks.get(self.pos + 2).map(|t| &t.kind) == Some(&Tok::RParen)
                    {
                        self.bump();
                        let ty = self.ty()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(LExpr::Cast(ty, Box::new(self.unary()?)));
                    }
                }
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(LExpr::Call(name, args))
                } else if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(LExpr::Index(name, Box::new(idx)))
                } else {
                    Ok(LExpr::Ident(name))
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: &str = r#"
        float->float filter Scale(float k) {
            work pop 1 push 1 {
                push(pop() * k);
            }
        }
    "#;

    #[test]
    fn parses_simple_filter() {
        let p = parse(SCALE).unwrap();
        assert_eq!(p.decls.len(), 1);
        let LDecl::Filter(f) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(f.name, "Scale");
        assert_eq!((f.pop, f.push, f.peek), (1, 1, None));
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.work.len(), 1);
    }

    #[test]
    fn parses_state_and_init() {
        let src = r#"
            float->float filter Fir() {
                float coef[8];
                int warm = 0;
                init {
                    for (int i = 0; i < 8; i++) {
                        coef[i] = cos((float) i);
                    }
                }
                work peek 8 pop 1 push 1 {
                    float acc = 0.0;
                    for (int i = 0; i < 8; i++) {
                        acc = acc + peek(i) * coef[i];
                    }
                    pop();
                    push(acc);
                }
            }
        "#;
        let p = parse(src).unwrap();
        let LDecl::Filter(f) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(f.state.len(), 2);
        assert_eq!(f.state[0].len, Some(8));
        assert_eq!(f.peek, Some(8));
        assert!(matches!(f.work[1], LStmt::For { .. }));
        assert!(matches!(f.work[2], LStmt::ExprStmt(_)));
    }

    #[test]
    fn parses_pipeline_and_splitjoin() {
        let src = r#"
            void->void pipeline Main() {
                add Source();
                add Eq(4);
                add Sink();
            }
            float->float splitjoin Eq(int n) {
                split duplicate;
                add Band(0.1);
                add Band(0.2);
                join roundrobin(1, 1);
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 2);
        let LDecl::SplitJoin(sj) = p.find("Eq").unwrap() else {
            panic!()
        };
        assert_eq!(sj.children.len(), 2);
        assert_eq!(sj.join.len(), 2);
        assert!(matches!(sj.split, LSplit::Duplicate));
    }

    #[test]
    fn operator_precedence() {
        let src = "int->int filter F() { work pop 1 push 1 { push(1 + 2 * 3 << 1); } }";
        let p = parse(src).unwrap();
        let LDecl::Filter(f) = &p.decls[0] else {
            panic!()
        };
        let LStmt::Push(e) = &f.work[0] else { panic!() };
        // ((1 + (2*3)) << 1)
        assert!(matches!(e, LExpr::Binary(LBinOp::Shl, _, _)));
    }

    #[test]
    fn cast_vs_parenthesized() {
        let src = "int->int filter F() { work pop 2 push 2 { push((int) pop()); push((pop())); } }";
        let p = parse(src).unwrap();
        let LDecl::Filter(f) = &p.decls[0] else {
            panic!()
        };
        assert!(matches!(
            &f.work[0],
            LStmt::Push(LExpr::Cast(LType::Int, _))
        ));
        assert!(matches!(&f.work[1], LStmt::Push(LExpr::Call(_, _))));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("float->float filter F() { work pop 1 push 1 { push( } }").unwrap_err();
        assert!(e.line >= 1);
        assert!(e.message.contains("expected expression"));
    }

    #[test]
    fn missing_work_rejected() {
        let e = parse("float->float filter F() { }").unwrap_err();
        assert!(e.message.contains("no work function"));
    }
}
