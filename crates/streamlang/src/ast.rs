//! Surface-language AST (pre-elaboration): declarations as written, with
//! identifiers still unresolved and parameters still symbolic.

/// Scalar surface types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LType {
    Int,
    Float,
}

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum LExpr {
    Int(i64),
    Float(f64),
    Ident(String),
    Index(String, Box<LExpr>),
    Unary(LUnOp, Box<LExpr>),
    Binary(LBinOp, Box<LExpr>, Box<LExpr>),
    /// `name(args...)` — intrinsics (`sin`, `pop`, `peek`, ...).
    Call(String, Vec<LExpr>),
    /// `(float) e` style cast.
    Cast(LType, Box<LExpr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LUnOp {
    Neg,
    Not,
    LogNot,
}

/// Binary operators (C precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A surface statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LStmt {
    /// `type name = expr;` or `type name;` local declaration.
    DeclLocal {
        ty: LType,
        name: String,
        init: Option<LExpr>,
    },
    /// `name = expr;`
    Assign(String, LExpr),
    /// `name[idx] = expr;`
    AssignIndex(String, LExpr, LExpr),
    /// `push(expr);`
    Push(LExpr),
    /// `for (int i = 0; i < bound; i++) { ... }`
    For {
        var: String,
        bound: LExpr,
        body: Vec<LStmt>,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        cond: LExpr,
        then_branch: Vec<LStmt>,
        else_branch: Vec<LStmt>,
    },
    /// Bare expression statement `pop();` (value discarded).
    ExprStmt(LExpr),
}

/// A declared parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct LParam {
    pub ty: LType,
    pub name: String,
}

/// A state-variable declaration inside a filter.
#[derive(Debug, Clone, PartialEq)]
pub struct LStateDecl {
    pub ty: LType,
    pub name: String,
    /// Array length, if an array.
    pub len: Option<usize>,
    /// Optional scalar initializer (constant expression over params).
    pub init: Option<LExpr>,
}

/// A filter declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct LFilter {
    pub in_ty: Option<LType>,
    pub out_ty: Option<LType>,
    pub name: String,
    pub params: Vec<LParam>,
    pub state: Vec<LStateDecl>,
    pub init: Vec<LStmt>,
    pub peek: Option<usize>,
    pub pop: usize,
    pub push: usize,
    pub work: Vec<LStmt>,
}

/// One `add Child(args);` inside a composite.
#[derive(Debug, Clone, PartialEq)]
pub struct LAdd {
    pub name: String,
    pub args: Vec<LExpr>,
}

/// A pipeline declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct LPipeline {
    pub name: String,
    pub params: Vec<LParam>,
    pub children: Vec<LAdd>,
}

/// Splitter kinds in the surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum LSplit {
    Duplicate,
    RoundRobin(Vec<LExpr>),
}

/// A split-join declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct LSplitJoin {
    pub name: String,
    pub params: Vec<LParam>,
    pub split: LSplit,
    pub children: Vec<LAdd>,
    pub join: Vec<LExpr>,
}

/// Any top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum LDecl {
    Filter(LFilter),
    Pipeline(LPipeline),
    SplitJoin(LSplitJoin),
}

/// A parsed program: all declarations by order of appearance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LProgram {
    pub decls: Vec<LDecl>,
}

impl LProgram {
    /// Find a declaration by name.
    pub fn find(&self, name: &str) -> Option<&LDecl> {
        self.decls.iter().find(|d| match d {
            LDecl::Filter(f) => f.name == name,
            LDecl::Pipeline(p) => p.name == name,
            LDecl::SplitJoin(s) => s.name == name,
        })
    }
}
