//! Differential suite: for every benchsuite graph, the threaded runtime
//! (1, 2, and 4 workers) must produce bit-identical output to the
//! single-threaded `run_scheduled` interpreter — for the scalar graph and
//! for the macro-SIMDized graph.
//!
//! LPT partitions place the cut edges where the naive multi-core
//! scheduler would; an extra round-robin placement per benchmark cuts
//! *every* edge, stressing the ring path on edges LPT happens to keep
//! local (including reordered tapes split across cores).

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_multicore::Partition;
use macross_runtime::run_threaded;
use macross_sdf::Schedule;
use macross_streamir::graph::Graph;
use macross_streamir::types::Value;
use macross_vm::{run_scheduled, Machine};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn assert_bits_eq(ctx: &str, seq: &[Value], thr: &[Value]) {
    assert_eq!(seq.len(), thr.len(), "{ctx}: output length mismatch");
    assert!(!seq.is_empty(), "{ctx}: produced no output");
    for (i, (a, b)) in seq.iter().zip(thr).enumerate() {
        assert!(
            a.bits_eq(*b),
            "{ctx}: output {i}: sequential {a:?} vs threaded {b:?}"
        );
    }
}

/// Compare threaded against sequential for one (graph, schedule) pair
/// under LPT partitions at each worker count plus a round-robin placement
/// that cuts every edge.
fn check_graph(name: &str, graph: &Graph, schedule: &Schedule, machine: &Machine, iters: u64) {
    let seq = run_scheduled(graph, schedule, machine, iters).expect("sequential run failed");
    for &cores in &WORKER_COUNTS {
        eprintln!("[diff] {name} x{cores}");
        let part = Partition::lpt(graph, schedule, &seq.node_cycles, cores);
        let thr = run_threaded(graph, schedule, machine, &part.assignment, iters)
            .unwrap_or_else(|e| panic!("{name} x{cores}: threaded run failed: {e}"));
        assert_bits_eq(&format!("{name} x{cores} (lpt)"), &seq.output, &thr.output);
        assert_eq!(
            thr.report.cut_edges,
            part.cut_edges.len(),
            "{name} x{cores}: cut edge count"
        );
        // Every steady firing happened exactly iters * reps times (plus init).
        for (i, stage) in thr.report.stages.iter().enumerate() {
            let expected = schedule.init_reps[i] + iters * schedule.reps[i];
            assert_eq!(
                stage.firings, expected,
                "{name} x{cores}: firings of stage {i}"
            );
        }
    }
    eprintln!("[diff] {name} round-robin");
    let rr: Vec<u32> = (0..graph.node_count() as u32).map(|i| i % 4).collect();
    let thr = run_threaded(graph, schedule, machine, &rr, iters)
        .unwrap_or_else(|e| panic!("{name} round-robin: threaded run failed: {e}"));
    assert_bits_eq(&format!("{name} (round-robin)"), &seq.output, &thr.output);
}

fn bench_iters(iters: u64) -> u64 {
    iters.min(6)
}

#[test]
fn scalar_graphs_threaded_matches_sequential() {
    let machine = Machine::core_i7();
    for b in macross_benchsuite::all() {
        let graph = (b.build)();
        let schedule = Schedule::compute(&graph).expect("benchsuite graph must schedule");
        check_graph(b.name, &graph, &schedule, &machine, bench_iters(b.iters));
    }
}

#[test]
fn simdized_graphs_threaded_matches_sequential() {
    // The SAGU machine maximizes VectorReorder tape decisions, so cut
    // edges with producer- and consumer-side reorder halves get exercised.
    let machine = Machine::core_i7_with_sagu();
    for b in macross_benchsuite::all() {
        let graph = (b.build)();
        let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())
            .unwrap_or_else(|e| panic!("{}: simdize failed: {e}", b.name));
        let name = format!("{}-simd", b.name);
        check_graph(
            &name,
            &simd.graph,
            &simd.schedule,
            &machine,
            bench_iters(b.iters),
        );
    }
}

#[test]
fn simdized_no_sagu_variant_also_matches() {
    // Software-reordered tapes (AddrGen::Software) take a different cost
    // path; run a few benchmarks on the plain machine too.
    let machine = Machine::core_i7();
    for name in ["FMRadio", "DCT", "MatrixMult"] {
        let b = macross_benchsuite::by_name(name).expect("known benchmark");
        let graph = (b.build)();
        let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())
            .unwrap_or_else(|e| panic!("{name}: simdize failed: {e}"));
        check_graph(
            &format!("{name}-simd-sw"),
            &simd.graph,
            &simd.schedule,
            &machine,
            bench_iters(b.iters),
        );
    }
}
