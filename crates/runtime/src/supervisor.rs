//! Worker supervision: typed stage failures, the interrupt that turns a
//! failure into a coordinated drain, and the watchdog that escalates
//! stuck stages.
//!
//! The protocol: the first failure (a `VmError`, a caught panic, or a
//! watchdog escalation) is recorded and raises the shared interrupt
//! flag. Every blocking wait in the runtime (ring pushes/pops, the start
//! gate) polls that flag, so no worker can stay blocked past the park
//! timeout. On observing the interrupt, each worker switches from the
//! steady schedule to a *drain*: stages that can still make progress
//! without the failed stages finish whatever is buffered (bounding their
//! firings by what the full run would have executed), everything
//! upstream of a failure parks, and the worker returns its partial
//! output. The coordinator then assembles a [`crate::RuntimeReport`]
//! whose `failures` list tells the caller exactly which stage failed, at
//! which firing, under which engine.

use macross_telemetry::clock;
use macross_vm::{ExecMode, VmError};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::fault::FaultPlan;

/// Why a stage failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The stage's firing returned a typed VM error (includes guest
    /// panics caught at the firing boundary and poisoned tapes).
    Vm(VmError),
    /// The firing panicked outside the VM's own boundary (splitter /
    /// joiner / sink primitives, or an injected panic).
    Panic(String),
    /// The watchdog escalated the stage: one firing exceeded its timeout.
    Watchdog {
        /// How long the firing had been running when escalated.
        waited_nanos: u64,
    },
}

impl FailureCause {
    /// Stable label (`vm` / `panic` / `watchdog`) for reports and replay
    /// bundles.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::Vm(_) => "vm",
            FailureCause::Panic(_) => "panic",
            FailureCause::Watchdog { .. } => "watchdog",
        }
    }
}

/// One stage's failure, as reported to the supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct StageFailure {
    /// Node id of the failed stage.
    pub stage: usize,
    /// Stage display name (filter name or node kind).
    pub name: String,
    /// Core the stage was assigned to.
    pub core: u32,
    /// 0-based firing index at which it failed (init + steady).
    pub firing: u64,
    /// Engine the worker was firing with.
    pub mode: ExecMode,
    /// Why.
    pub cause: FailureCause,
}

impl fmt::Display for StageFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} ({}) on core {} failed at firing {} [{:?}]: ",
            self.stage, self.name, self.core, self.firing, self.mode
        )?;
        match &self.cause {
            FailureCause::Vm(e) => write!(f, "{e}"),
            FailureCause::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureCause::Watchdog { waited_nanos } => {
                write!(f, "watchdog fired after {waited_nanos} ns")
            }
        }
    }
}

/// Options for a supervised run ([`crate::run_supervised`]).
#[derive(Debug, Clone, Default)]
pub struct SupervisorOptions {
    /// Work-function engine on every worker.
    pub mode: ExecMode,
    /// Per-firing watchdog timeout applied to every stage (`None`
    /// disables the watchdog thread entirely).
    pub watchdog: Option<Duration>,
    /// Per-stage overrides of the watchdog timeout (node id, timeout).
    pub stage_timeouts: Vec<(usize, Duration)>,
    /// Faults to inject (inert unless built with `fault-inject`).
    pub plan: FaultPlan,
}

impl SupervisorOptions {
    /// Options injecting `plan` with everything else at defaults.
    pub fn with_plan(plan: FaultPlan) -> SupervisorOptions {
        SupervisorOptions {
            plan,
            ..SupervisorOptions::default()
        }
    }

    /// Set the global watchdog timeout (builder style).
    #[must_use]
    pub fn watchdog_after(mut self, timeout: Duration) -> SupervisorOptions {
        self.watchdog = Some(timeout);
        self
    }

    /// The effective per-firing timeout for `stage`, if any.
    pub(crate) fn timeout_for(&self, stage: usize) -> Option<Duration> {
        self.stage_timeouts
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, t)| *t)
            .or(self.watchdog)
    }

    /// True when a watchdog thread is needed at all.
    pub(crate) fn wants_watchdog(&self) -> bool {
        self.watchdog.is_some() || !self.stage_timeouts.is_empty()
    }
}

/// Per-worker firing heartbeat, written by the worker and read by the
/// watchdog. `seq` is even when idle and odd while inside a firing (a
/// seqlock flavor: the watchdog samples `seq` before and after reading
/// the rest and retries on mismatch).
#[derive(Debug, Default)]
pub(crate) struct Heartbeat {
    seq: AtomicU64,
    stage: AtomicU32,
    firing: AtomicU64,
    started_ns: AtomicU64,
}

impl Heartbeat {
    pub(crate) fn begin(&self, stage: usize, firing: u64) {
        self.stage.store(stage as u32, Ordering::Relaxed);
        self.firing.store(firing, Ordering::Relaxed);
        self.started_ns.store(clock::now_ns(), Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release); // even -> odd
    }

    pub(crate) fn end(&self) {
        self.seq.fetch_add(1, Ordering::Release); // odd -> even
    }

    /// `(seq, stage, firing, started_ns)` if a firing is in progress and
    /// the sample is consistent.
    fn sample(&self) -> Option<(u64, usize, u64, u64)> {
        let seq = self.seq.load(Ordering::Acquire);
        if seq & 1 == 0 {
            return None;
        }
        let stage = self.stage.load(Ordering::Relaxed) as usize;
        let firing = self.firing.load(Ordering::Relaxed);
        let started = self.started_ns.load(Ordering::Relaxed);
        (self.seq.load(Ordering::Acquire) == seq).then_some((seq, stage, firing, started))
    }
}

/// Shared supervision state for one run: the failure list, the interrupt
/// flag that triggers draining, and the per-worker heartbeats.
pub(crate) struct Supervisor {
    interrupt: AtomicBool,
    done: AtomicBool,
    failures: Mutex<Vec<StageFailure>>,
    heartbeats: Vec<Heartbeat>,
}

impl Supervisor {
    pub(crate) fn new(workers: usize) -> Supervisor {
        Supervisor {
            interrupt: AtomicBool::new(false),
            done: AtomicBool::new(false),
            failures: Mutex::new(Vec::new()),
            heartbeats: (0..workers).map(|_| Heartbeat::default()).collect(),
        }
    }

    /// The flag every blocking wait polls. Raised on the first failure.
    pub(crate) fn interrupt_flag(&self) -> &AtomicBool {
        &self.interrupt
    }

    /// True once any failure was recorded: workers switch to draining.
    pub(crate) fn draining(&self) -> bool {
        self.interrupt.load(Ordering::Relaxed)
    }

    /// Record a failure and raise the interrupt.
    pub(crate) fn raise(&self, failure: StageFailure) {
        self.failures.lock().unwrap().push(failure);
        self.interrupt.store(true, Ordering::Release);
    }

    /// Node ids of every failed stage so far.
    pub(crate) fn failed_stages(&self) -> Vec<usize> {
        self.failures
            .lock()
            .unwrap()
            .iter()
            .map(|f| f.stage)
            .collect()
    }

    pub(crate) fn heartbeat(&self, worker: usize) -> &Heartbeat {
        &self.heartbeats[worker]
    }

    /// Workers all joined; stops the watchdog loop.
    pub(crate) fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    pub(crate) fn take_failures(&self) -> Vec<StageFailure> {
        std::mem::take(&mut self.failures.lock().unwrap())
    }

    /// The watchdog loop: poll heartbeats until [`Supervisor::finish`],
    /// escalating any firing that outlives its stage's timeout. Each
    /// stuck firing is escalated once (keyed by heartbeat seq). Runs on
    /// its own thread inside the run's scope; returns the escalations it
    /// raised (already recorded).
    pub(crate) fn run_watchdog(
        &self,
        opts: &SupervisorOptions,
        worker_cores: &[u32],
        stage_names: &[String],
    ) {
        let min_timeout = opts
            .watchdog
            .iter()
            .chain(opts.stage_timeouts.iter().map(|(_, t)| t))
            .min()
            .copied()
            .unwrap_or(Duration::from_millis(100));
        let poll = (min_timeout / 8).clamp(Duration::from_micros(100), Duration::from_millis(5));
        let mut escalated: Vec<u64> = vec![0; self.heartbeats.len()];
        while !self.done.load(Ordering::Acquire) {
            std::thread::sleep(poll);
            for (w, hb) in self.heartbeats.iter().enumerate() {
                let Some((seq, stage, firing, started_ns)) = hb.sample() else {
                    continue;
                };
                if escalated[w] == seq {
                    continue;
                }
                let Some(timeout) = opts.timeout_for(stage) else {
                    continue;
                };
                let waited_nanos = clock::now_ns().saturating_sub(started_ns);
                if waited_nanos < timeout.as_nanos() as u64 {
                    continue;
                }
                escalated[w] = seq;
                self.raise(StageFailure {
                    stage,
                    name: stage_names.get(stage).cloned().unwrap_or_default(),
                    core: worker_cores[w],
                    firing,
                    mode: opts.mode,
                    cause: FailureCause::Watchdog { waited_nanos },
                });
            }
        }
    }
}
