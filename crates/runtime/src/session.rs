//! Per-session supervised execution for the multi-tenant service layer.
//!
//! A [`SessionEngine`] runs one tenant's stream graph incrementally —
//! iterations are requested in slices ([`SessionEngine::run_steady`]),
//! between which the hosting shard thread is free to run other tenants —
//! from *shared* compiled programs ([`macross_vm::CompiledPrograms`]), so
//! a thousand sessions of the same graph shape pay for one compilation.
//!
//! The engine carries PR 4's supervision envelope down to session
//! granularity: every firing runs behind `catch_unwind` with any planned
//! [`FaultPlan`] fault applied, and a failure quarantines *this session
//! only*. Quarantine is a taint drain, not an abort: the failed stage and
//! everything data-dependent on it (descendants, plus any stage adjacent
//! to a poisoned tape) stop firing, while independent branches finish the
//! current steady iteration so every sink ends on a bit-exact clean
//! prefix of the fault-free run. Co-resident sessions on the same shard
//! share nothing but the immutable compiled artifacts, so they are
//! unaffected by construction — the tenant-isolation tests assert this
//! bit-for-bit.
//!
//! Differences from the threaded worker's envelope, by design: there are
//! no cut-edge rings (one session = one timeline), so the ring faults
//! `DelayPush` / `DropUnpark` are inert here, and without a watchdog
//! `StallFiring` is pure latency rather than an escalation.

use crate::fault::{FaultKind, FaultPlan};
use crate::supervisor::{FailureCause, StageFailure};
use macross_sdf::Schedule;
use macross_streamir::analysis::analyze_vectorizability;
use macross_streamir::graph::{Graph, Node, NodeId, ReorderSide};
use macross_streamir::types::Value;
use macross_telemetry::{EventKind, WorkerTrace};
use macross_vm::firing::{self, FilterState};
use macross_vm::{CompiledPrograms, CycleCounters, ExecMode, Machine, Tape};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Immutable per-node adjacency (tape indices and reorder address
/// costs), resolved once at admission — the session-engine analogue of
/// the executor's fire plan.
struct NodeAdj {
    in_edge: Option<usize>,
    out_edge: Option<usize>,
    in_cost: u64,
    out_cost: u64,
    in_idx: Vec<usize>,
    out_idx: Vec<usize>,
    in_costs: Vec<u64>,
    out_costs: Vec<u64>,
}

impl NodeAdj {
    fn compute(graph: &Graph, id: NodeId, machine: &Machine) -> NodeAdj {
        let ins = graph.in_edges(id);
        let outs = graph.out_edges(id);
        let in_edge = graph.single_in_edge(id);
        let out_edge = graph.single_out_edge(id);
        NodeAdj {
            in_cost: in_edge
                .map(|e| firing::edge_addr_cost(graph, e, true, machine))
                .unwrap_or(0),
            out_cost: out_edge
                .map(|e| firing::edge_addr_cost(graph, e, false, machine))
                .unwrap_or(0),
            in_costs: ins
                .iter()
                .map(|&e| firing::edge_addr_cost(graph, e, true, machine))
                .collect(),
            out_costs: outs
                .iter()
                .map(|&e| firing::edge_addr_cost(graph, e, false, machine))
                .collect(),
            in_idx: ins.iter().map(|e| e.0 as usize).collect(),
            out_idx: outs.iter().map(|e| e.0 as usize).collect(),
            in_edge: in_edge.map(|e| e.0 as usize),
            out_edge: out_edge.map(|e| e.0 as usize),
        }
    }
}

/// Name-level identity of an edge, stable across independently compiled
/// configurations of the same parameterized program (node *ids* are not:
/// SIMDization inserts and renumbers nodes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeSig {
    /// Producer node name.
    pub src: String,
    /// Producer output port.
    pub src_port: usize,
    /// Consumer node name.
    pub dst: String,
    /// Consumer input port.
    pub dst_port: usize,
}

/// The portable quiescent-point state of a session: everything that must
/// survive a configuration swap for the continued run to stay bit-exact.
///
/// Captured by [`SessionEngine::export_carrier`] at a steady-iteration
/// boundary and installed into a freshly built engine by
/// [`SessionEngine::resume`]. Stateful filters (state written in `work`)
/// travel by name — the SIMDizer never renames them — while init-only
/// state (e.g. FIR coefficient tables) is deterministically recomputed by
/// the new engine's init functions and therefore not carried. Resident
/// tape tokens (the peek slack the init schedule primed) travel by edge
/// signature, so the new configuration skips its init schedule entirely.
#[derive(Debug, Clone)]
pub struct SessionCarrier {
    /// `(filter name, flattened state values)` per stateful filter.
    pub states: Vec<(String, Vec<Value>)>,
    /// `(edge signature, resident tokens in FIFO order)` per non-empty
    /// tape.
    pub tapes: Vec<(EdgeSig, Vec<Value>)>,
    /// Sink count (output-continuity check across configurations).
    pub sinks: usize,
}

/// Whether a session can accept more work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Healthy; more iterations may be fed.
    Running,
    /// A stage failed; the session drained its clean prefix and is
    /// permanently quarantined ([`SessionEngine::failures`] says why).
    Faulted,
}

/// One tenant's incremental, supervised run of one graph.
pub struct SessionEngine {
    graph: Arc<Graph>,
    schedule: Arc<Schedule>,
    machine: Arc<Machine>,
    mode: ExecMode,
    plan: FaultPlan,
    /// Shard hosting the session — reported as `core` in failures.
    shard: u32,
    tapes: Vec<Tape>,
    states: Vec<FilterState>,
    adj: Vec<NodeAdj>,
    /// Captured values per node id (non-empty for sinks only).
    outputs: Vec<Vec<Value>>,
    sink_ids: Vec<NodeId>,
    counters: CycleCounters,
    /// Per-stage firing index (init + steady), the address space of
    /// [`FaultPlan`] — identical numbering to the threaded worker.
    attempts: Vec<u64>,
    /// Total firings completed cleanly.
    firings: u64,
    iters_done: u64,
    failures: Vec<StageFailure>,
    tainted: Vec<bool>,
    init_fns_done: bool,
    init_schedule_done: bool,
    quarantined: bool,
    trace: WorkerTrace,
}

impl SessionEngine {
    /// Build a session over shared compiled programs. No compilation
    /// happens here — only tape and state allocation.
    pub fn new(
        graph: Arc<Graph>,
        schedule: Arc<Schedule>,
        machine: Arc<Machine>,
        programs: &CompiledPrograms,
        plan: FaultPlan,
        shard: u32,
    ) -> SessionEngine {
        assert_eq!(
            programs.node_count(),
            graph.node_count(),
            "compiled programs were built for a different graph"
        );
        let mut tapes: Vec<Tape> = graph.edges().map(|(_, e)| Tape::new(e.elem)).collect();
        for (i, (_, e)) in graph.edges().enumerate() {
            if let Some(r) = e.reorder {
                match r.side {
                    ReorderSide::Consumer => tapes[i].set_read_reorder(r.rate, r.sw),
                    ReorderSide::Producer => tapes[i].set_write_reorder(r.rate, r.sw),
                }
            }
        }
        let states = graph
            .nodes()
            .map(|(id, node)| programs.state_for(id, node))
            .collect();
        let adj = graph
            .nodes()
            .map(|(id, _)| NodeAdj::compute(&graph, id, &machine))
            .collect();
        let sink_ids = graph
            .nodes()
            .filter(|(_, n)| matches!(n, Node::Sink))
            .map(|(id, _)| id)
            .collect();
        let n = graph.node_count();
        SessionEngine {
            mode: programs.mode(),
            tapes,
            states,
            adj,
            outputs: vec![Vec::new(); n],
            sink_ids,
            counters: CycleCounters::default(),
            attempts: vec![0; n],
            firings: 0,
            iters_done: 0,
            failures: Vec::new(),
            tainted: vec![false; n],
            init_fns_done: false,
            init_schedule_done: false,
            quarantined: false,
            trace: WorkerTrace::disabled(),
            graph,
            schedule,
            machine,
            plan,
            shard,
        }
    }

    /// Install a recording handle for firing/fault/drain events.
    pub fn set_trace(&mut self, trace: WorkerTrace) {
        self.trace = trace;
    }

    /// Sink node ids, in node order — the row order of
    /// [`SessionEngine::take_outputs`].
    pub fn sink_ids(&self) -> &[NodeId] {
        &self.sink_ids
    }

    /// Drain everything the sinks captured since the last call, one `Vec`
    /// per sink in [`SessionEngine::sink_ids`] order.
    pub fn take_outputs(&mut self) -> Vec<Vec<Value>> {
        let ids = self.sink_ids.clone();
        ids.iter()
            .map(|id| std::mem::take(&mut self.outputs[id.0 as usize]))
            .collect()
    }

    /// Failures recorded so far (at most the first fault and any
    /// secondary poisoning it caused).
    pub fn failures(&self) -> &[StageFailure] {
        &self.failures
    }

    /// True once a fault quarantined this session.
    pub fn is_faulted(&self) -> bool {
        self.quarantined
    }

    /// Total firings completed cleanly (init + steady).
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Steady iterations fully executed.
    pub fn iters_done(&self) -> u64 {
        self.iters_done
    }

    /// Aggregate modelled-cycle counters.
    pub fn counters(&self) -> &CycleCounters {
        &self.counters
    }

    fn status(&self) -> SessionStatus {
        if self.quarantined {
            SessionStatus::Faulted
        } else {
            SessionStatus::Running
        }
    }

    /// Record a failure, begin the taint drain.
    fn fail(&mut self, id: NodeId, firing: u64, cause: FailureCause) {
        self.trace.record(EventKind::StageFailed, id.0, firing);
        if self.failures.is_empty() {
            self.trace.record(EventKind::DrainBegin, id.0, 0);
        }
        self.failures.push(StageFailure {
            stage: id.0 as usize,
            name: self.graph.node(id).name(),
            core: self.shard,
            firing,
            mode: self.mode,
            cause,
        });
        self.quarantined = true;
        self.taint_from(id);
    }

    /// Taint `id` and every node data-dependent on it (reachable through
    /// out-edges): none of them may fire again, their inputs are
    /// compromised.
    fn taint_from(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut self.tainted[n.0 as usize], true) {
                continue;
            }
            for e in self.graph.out_edges(n) {
                stack.push(self.graph.edge(e).dst);
            }
        }
    }

    /// During a drain, a stage touching a poisoned tape must not fire:
    /// taint it instead of letting the firing fail a second time.
    fn adjacent_poisoned(&self, id: NodeId) -> bool {
        let a = &self.adj[id.0 as usize];
        a.in_idx
            .iter()
            .chain(a.out_idx.iter())
            .any(|&t| self.tapes[t].is_poisoned())
    }

    /// Fire `id` once under the supervision envelope: planned fault
    /// applied, panic caught, failure recorded and drained. Returns
    /// `false` when the firing failed.
    fn fire_guarded(&mut self, id: NodeId) -> bool {
        let stage = id.0 as usize;
        let firing = self.attempts[stage];
        self.attempts[stage] += 1;
        let fault = self.plan.fault_for(stage, firing);
        if let Some(kind) = fault {
            self.trace.record(EventKind::FaultInjected, id.0, firing);
            match kind {
                FaultKind::PoisonTape => {
                    // Poison the stage's input half (or output half for
                    // sources); the firing below then refuses to run.
                    if let Some(e) = self.adj[stage].in_edge {
                        self.tapes[e].poison();
                    } else if let Some(e) = self.adj[stage].out_edge {
                        self.tapes[e].poison();
                    }
                }
                FaultKind::StallFiring { nanos } => {
                    // No watchdog on the sequential engine: a stall is
                    // pure latency, never an escalation.
                    std::thread::sleep(std::time::Duration::from_nanos(nanos));
                }
                // Ring-level faults; the session engine has no rings.
                FaultKind::DelayPush { .. } | FaultKind::DropUnpark { .. } => {}
                FaultKind::Panic => {}
            }
        }
        self.trace.record(EventKind::FiringStart, id.0, 0);
        let before = self.counters.total();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(FaultKind::Panic)) {
                panic!("injected fault: panic at stage {stage} firing {firing}");
            }
            self.fire_node(id)
        }));
        self.trace
            .record(EventKind::FiringEnd, id.0, self.counters.total() - before);
        match result {
            Ok(Ok(())) => {
                self.firings += 1;
                true
            }
            Ok(Err(e)) => {
                // fire_filter already poisoned the touched tapes.
                self.fail(id, firing, FailureCause::Vm(e));
                false
            }
            Err(payload) => {
                // A panic outside the VM's own boundary (native node or
                // injected): quarantine the stage's tapes ourselves.
                for t in self.adj[stage]
                    .in_idx
                    .iter()
                    .chain(self.adj[stage].out_idx.iter())
                    .copied()
                    .collect::<Vec<_>>()
                {
                    self.tapes[t].poison();
                }
                let msg = firing::panic_message(payload.as_ref());
                self.fail(id, firing, FailureCause::Panic(msg));
                false
            }
        }
    }

    /// Fire one node once (no supervision — callers wrap this).
    fn fire_node(&mut self, id: NodeId) -> Result<(), macross_vm::VmError> {
        self.counters.firing_overhead += self.machine.cost.firing;
        let i = id.0 as usize;
        let a = &self.adj[i];
        match self.graph.node(id) {
            Node::Filter(f) => firing::fire_filter(
                f,
                &mut self.states[i],
                &mut self.tapes,
                a.in_edge,
                a.out_edge,
                a.in_cost,
                a.out_cost,
                &self.machine,
                &mut self.counters,
            )?,
            Node::Splitter(kind) => firing::fire_splitter(
                kind,
                &mut self.tapes,
                a.in_edge.expect("splitter needs an input"),
                &a.out_idx,
                a.in_cost,
                &a.out_costs,
                &self.machine,
                &mut self.counters,
            ),
            Node::Joiner(weights) => firing::fire_joiner(
                weights,
                &mut self.tapes,
                &a.in_idx,
                a.out_edge.expect("joiner needs an output"),
                &a.in_costs,
                a.out_cost,
                &self.machine,
                &mut self.counters,
            ),
            Node::HSplitter { kind, width } => firing::fire_hsplitter(
                kind,
                *width,
                &mut self.tapes,
                a.in_edge.expect("hsplitter needs an input"),
                &a.out_idx,
                &self.machine,
                &mut self.counters,
            ),
            Node::HJoiner { weights, width } => firing::fire_hjoiner(
                weights,
                *width,
                &mut self.tapes,
                &a.in_idx,
                a.out_edge.expect("hjoiner needs an output"),
                &self.machine,
                &mut self.counters,
            ),
            Node::Sink => {
                let v = firing::fire_sink(
                    &mut self.tapes,
                    a.in_edge.expect("sink needs an input"),
                    a.in_cost,
                    &self.machine,
                    &mut self.counters,
                );
                self.outputs[i].push(v);
            }
        }
        Ok(())
    }

    /// One pass over a schedule phase (init or steady), honouring the
    /// taint drain: tainted stages are skipped, stages that would touch a
    /// poisoned tape are tainted instead of fired, everything else runs
    /// to flush its clean data.
    fn run_phase(&mut self, init: bool) {
        let order = self.schedule.order.clone();
        let draining_at_entry = self.quarantined;
        for id in order {
            let reps = if init {
                self.schedule.init_reps[id.0 as usize]
            } else {
                self.schedule.reps[id.0 as usize]
            };
            for _ in 0..reps {
                if self.tainted[id.0 as usize] {
                    break;
                }
                if (self.quarantined || draining_at_entry) && self.adjacent_poisoned(id) {
                    self.taint_from(id);
                    break;
                }
                if !self.fire_guarded(id) {
                    break;
                }
            }
        }
    }

    fn run_init_functions(&mut self) {
        if self.init_fns_done {
            return;
        }
        self.init_fns_done = true;
        for (id, node) in self.graph.clone().nodes() {
            if let Node::Filter(f) = node {
                let state = &mut self.states[id.0 as usize];
                let kernels = state.kernel_count();
                if kernels > 0 {
                    self.trace
                        .record(EventKind::KernelFusion, id.0, kernels as u64);
                }
                let result = catch_unwind(AssertUnwindSafe(|| {
                    self.states[id.0 as usize].run_init_fn(f, &self.machine)
                }));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        self.fail(id, 0, FailureCause::Vm(e));
                        return;
                    }
                    Err(payload) => {
                        let msg = firing::panic_message(payload.as_ref());
                        self.fail(id, 0, FailureCause::Panic(msg));
                        return;
                    }
                }
            }
        }
    }

    /// Run filter `init` functions and the init schedule (idempotent).
    pub fn run_init(&mut self) -> SessionStatus {
        self.run_init_functions();
        if !self.init_schedule_done && !self.quarantined {
            self.init_schedule_done = true;
            self.run_phase(true);
        }
        self.status()
    }

    fn edge_sig(&self, idx: usize) -> EdgeSig {
        let (_, e) = self
            .graph
            .edges()
            .nth(idx)
            .expect("tape index is an edge index");
        EdgeSig {
            src: self.graph.node(e.src).name(),
            src_port: e.src_port,
            dst: self.graph.node(e.dst).name(),
            dst_port: e.dst_port,
        }
    }

    /// Capture the session's quiescent-point carrier (see
    /// [`SessionCarrier`]). Must be called at a steady-iteration boundary
    /// — which is the only place slice-based callers can call it, since
    /// [`SessionEngine::run_steady`] returns only at boundaries.
    ///
    /// # Errors
    /// Fails when the session is faulted, initialization has not run, or
    /// a tape's resident state cannot be expressed as a plain token
    /// sequence (partial reorder block / staged rpush data — states that
    /// template validation proves unreachable for swappable programs).
    pub fn export_carrier(&self) -> Result<SessionCarrier, String> {
        if self.quarantined {
            return Err("cannot export the carrier of a faulted session".into());
        }
        if !self.init_fns_done || !self.init_schedule_done {
            return Err("cannot export a carrier before initialization".into());
        }
        let mut states = Vec::new();
        for (id, node) in self.graph.nodes() {
            if let Node::Filter(f) = node {
                if analyze_vectorizability(f).stateful {
                    if states.iter().any(|(n, _)| *n == f.name) {
                        return Err(format!("duplicate stateful filter name '{}'", f.name));
                    }
                    let vals = self.states[id.0 as usize].export_state_vars(f);
                    states.push((f.name.clone(), vals));
                }
            }
        }
        let mut tapes = Vec::new();
        for (idx, tape) in self.tapes.iter().enumerate() {
            let vals = tape.export_resident().ok_or_else(|| {
                format!(
                    "tape {:?} holds reordered or uncommitted resident state",
                    self.edge_sig(idx)
                )
            })?;
            if !vals.is_empty() {
                let sig = self.edge_sig(idx);
                if tapes.iter().any(|(s, _)| *s == sig) {
                    return Err(format!("ambiguous resident-tape signature {sig:?}"));
                }
                tapes.push((sig, vals));
            }
        }
        Ok(SessionCarrier {
            states,
            tapes,
            sinks: self.sink_ids.len(),
        })
    }

    /// Build a session over `programs` primed from `carrier` instead of
    /// the init schedule: init *functions* run (recomputing deterministic
    /// init-only state such as coefficient tables), carried stateful
    /// values overwrite the corresponding filters' state, carried tokens
    /// preload the corresponding tapes, and the init schedule is skipped
    /// — its priming is exactly what the carrier holds.
    ///
    /// # Errors
    /// Fails when the carrier does not fit this configuration: a carried
    /// stateful filter or tape signature missing or ambiguous here, a
    /// state-shape mismatch, a sink-count mismatch, or an init function
    /// fault. Template validation makes these unreachable for programs it
    /// accepted; the error path exists so an unvalidated swap degrades to
    /// a typed failure instead of silent corruption.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        graph: Arc<Graph>,
        schedule: Arc<Schedule>,
        machine: Arc<Machine>,
        programs: &CompiledPrograms,
        plan: FaultPlan,
        shard: u32,
        carrier: &SessionCarrier,
    ) -> Result<SessionEngine, String> {
        let mut s = SessionEngine::new(graph, schedule, machine, programs, plan, shard);
        if s.sink_ids.len() != carrier.sinks {
            return Err(format!(
                "sink count changed across configurations: {} -> {}",
                carrier.sinks,
                s.sink_ids.len()
            ));
        }
        s.run_init_functions();
        if s.quarantined {
            return Err("init function faulted while resuming".into());
        }
        for (name, vals) in &carrier.states {
            let mut target = None;
            for (id, node) in s.graph.nodes() {
                if let Node::Filter(f) = node {
                    if f.name == *name {
                        if target.is_some() {
                            return Err(format!("ambiguous stateful filter name '{name}'"));
                        }
                        target = Some(id);
                    }
                }
            }
            let id = target
                .ok_or_else(|| format!("stateful filter '{name}' missing in new configuration"))?;
            let filter = match s.graph.clone().node(id) {
                Node::Filter(f) => f.clone(),
                _ => unreachable!("target is a filter"),
            };
            s.states[id.0 as usize]
                .import_state_vars(&filter, vals)
                .map_err(|e| format!("state carrier rejected for '{name}': {e}"))?;
        }
        for (sig, vals) in &carrier.tapes {
            let mut target = None;
            for idx in 0..s.tapes.len() {
                if s.edge_sig(idx) == *sig {
                    if target.is_some() {
                        return Err(format!("ambiguous tape signature {sig:?}"));
                    }
                    target = Some(idx);
                }
            }
            let idx = target.ok_or_else(|| format!("tape {sig:?} missing in new configuration"))?;
            if !s.tapes[idx].import_resident(vals) {
                return Err(format!("tape {sig:?} refused the carried tokens"));
            }
        }
        s.init_schedule_done = true;
        Ok(s)
    }

    /// Run up to `iters` steady iterations, stopping (after draining the
    /// current iteration's clean remainder) on the first fault.
    pub fn run_steady(&mut self, iters: u64) -> SessionStatus {
        if !self.init_fns_done || !self.init_schedule_done {
            self.run_init();
        }
        for _ in 0..iters {
            if self.quarantined {
                break;
            }
            self.run_phase(false);
            if !self.quarantined {
                self.iters_done += 1;
            }
        }
        self.status()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_sdf::Schedule as SdfSchedule;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::run_scheduled_mode;

    fn pipeline() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 2, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(|b| {
            b.push(pop() * 5i32);
        });
        StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    fn build(plan: FaultPlan) -> SessionEngine {
        let g = Arc::new(pipeline());
        let sched = Arc::new(SdfSchedule::compute(&g).unwrap());
        let machine = Arc::new(Machine::core_i7());
        let programs = CompiledPrograms::compile(&g, &machine, ExecMode::default());
        SessionEngine::new(g, sched, machine, &programs, plan, 0)
    }

    #[test]
    fn incremental_slices_match_one_shot() {
        let mut s = build(FaultPlan::none());
        assert_eq!(s.run_init(), SessionStatus::Running);
        let mut collected: Vec<Value> = Vec::new();
        for _ in 0..5 {
            assert_eq!(s.run_steady(2), SessionStatus::Running);
            let outs = s.take_outputs();
            assert_eq!(outs.len(), 1);
            collected.extend(outs[0].iter().copied());
        }
        let g = pipeline();
        let sched = SdfSchedule::compute(&g).unwrap();
        let one_shot =
            run_scheduled_mode(&g, &sched, &Machine::core_i7(), 10, ExecMode::default()).unwrap();
        assert_eq!(collected, one_shot.output);
        assert_eq!(s.iters_done(), 10);
        assert!(s.failures().is_empty());
    }

    #[test]
    fn injected_panic_quarantines_with_clean_prefix() {
        if !crate::fault::FAULTS_COMPILED {
            return;
        }
        // Stage 1 is the scaling filter; fail its 7th firing (2 per iter
        // steady, so mid-iteration 3 counting from 0).
        let plan = FaultPlan::single(1, 6, FaultKind::Panic);
        let mut s = build(plan);
        s.run_init();
        let status = s.run_steady(10);
        assert_eq!(status, SessionStatus::Faulted);
        assert!(s.is_faulted());
        assert_eq!(s.failures().len(), 1);
        let f = &s.failures()[0];
        assert_eq!(f.stage, 1);
        assert_eq!(f.firing, 6);
        assert_eq!(f.cause.label(), "panic");
        // Clean prefix: exactly the 6 completed firings' outputs.
        let outs = s.take_outputs();
        let expect: Vec<Value> = (0..6).map(|x| Value::I32(x * 5)).collect();
        assert_eq!(outs[0], expect);
        // Further work is refused without panicking.
        assert_eq!(s.run_steady(3), SessionStatus::Faulted);
        assert!(s.take_outputs()[0].is_empty());
    }
}
