//! Per-core worker: executes one core's slice of the global SDF schedule
//! against thread-local tapes, bridging cut edges through SPSC rings.
//!
//! Each worker owns a full `Vec<Tape>` indexed by edge id but only touches
//! the edges incident to its own nodes. A cut edge is represented twice —
//! a producer-side tape half on the producing core and a consumer-side
//! half on the consuming core — with the physical [`crate::ring::Ring`]
//! in between. Reorder semantics stay in the local halves: a
//! producer-side reorder (`ReorderSide::Producer`) stages and commits on
//! the producing core, a consumer-side reorder (`ReorderSide::Consumer`)
//! remaps reads on the consuming core, and the ring always carries
//! elements in committed physical order. Draining a tape front-first
//! therefore preserves exactly the layout the single-threaded executor
//! would have seen, which is what makes the differential tests exact.
//!
//! Workers are *supervised*: every firing runs inside `catch_unwind`
//! with a heartbeat the watchdog samples, failures become typed
//! [`StageFailure`]s instead of process aborts, and on the first failure
//! the run switches to a coordinated drain (see [`Worker::drain`]).

use crate::fault::FaultKind;
use crate::ring::Ring;
use crate::supervisor::{FailureCause, StageFailure, Supervisor, SupervisorOptions};
use crate::{stage_name, EdgeRings, Placement, Stage, StartGate};
use macross_sdf::Schedule;
use macross_streamir::graph::{Graph, Node, NodeId};
use macross_streamir::types::Value;
use macross_telemetry::{clock, EventKind, WorkerTrace};
use macross_vm::firing::{self, FilterState};
use macross_vm::machine::{CycleCounters, Machine};
use macross_vm::tape::Tape;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The supervisor interrupt was observed: stop the scheduled phase and
/// switch to draining (or return, when already draining).
struct Stop;

/// Smallest batch worth the admission work (a 1-batch is just a firing).
const MIN_BATCH: u64 = 2;
/// Starting adaptive batch depth (the old fixed `MAX_BATCH`).
const INIT_BATCH: u64 = 8;
/// Upper clamp for the adaptive depth: bounds roll-back cost and
/// drain-response latency even when downstream rings always run dry.
const MAX_BATCH: u64 = 64;

/// What a worker hands back to the coordinator. Failures travel through
/// the [`Supervisor`], so this is plain (possibly partial) output.
pub(crate) struct WorkerOut {
    /// `(sink node id, values captured)` for sinks hosted on this core.
    pub sink_outputs: Vec<(usize, Vec<Value>)>,
    /// Wall-clock nanoseconds spent in the steady loop.
    pub steady_nanos: u64,
    /// Modelled cycles accumulated by this core's firings (steady only).
    pub modelled: CycleCounters,
}

/// One cut in-edge the worker must pull tokens for before firing.
///
/// Normally one ring; when the edge's *producer* is fissioned this is a
/// merge point — one ring per replica, read round-robin in `ring_block`
/// chunks (the producer's per-firing push rate), which reassembles the
/// exact sequential stream.
struct Pull {
    edge: usize,
    rings: Vec<Arc<Ring>>,
    /// Tokens read from one ring before rotating to the next (unused when
    /// `rings.len() == 1`).
    ring_block: usize,
    /// Total tokens pulled off this edge's rings — the rotation cursor.
    taken: usize,
    /// Physical tokens one firing must be able to address:
    /// `max(pop, peek)` for filters, the exact pop rate otherwise.
    need: usize,
    /// Logical tokens one firing consumes (advances the block position).
    pop: usize,
    /// Read-reorder block of the local consumer tape half (1 if plain).
    /// Column-major remapping addresses anywhere inside the current
    /// block, so availability is rounded up to whole blocks.
    block: usize,
    /// Total tokens consumed so far — `consumed % block` is the position
    /// inside the current block.
    consumed: usize,
}

impl Pull {
    fn single(edge: usize, ring: Arc<Ring>, need: usize, pop: usize, block: usize) -> Pull {
        Pull {
            edge,
            rings: vec![ring],
            ring_block: 0,
            taken: 0,
            need,
            pop,
            block,
            consumed: 0,
        }
    }

    /// Physical tokens the local tape half must hold for the next firing.
    fn needed_phys(&self) -> usize {
        if self.block > 1 {
            let pos = self.consumed % self.block;
            (pos + self.need).div_ceil(self.block) * self.block
        } else {
            self.need
        }
    }

    /// Index of the ring holding the next token in stream order.
    fn cur(&self) -> usize {
        if self.rings.len() == 1 {
            0
        } else {
            (self.taken / self.ring_block) % self.rings.len()
        }
    }

    /// Pop up to `max` tokens into `tape` without blocking, rotating
    /// rings at merge-block boundaries. Returns tokens moved. Stops when
    /// the ring holding the next in-order token runs dry — a later
    /// replica's tokens must not be read early.
    fn pop_rotating(&mut self, tape: &mut Tape, mut max: usize) -> usize {
        let mut total = 0;
        while max > 0 {
            let (i, room) = if self.rings.len() == 1 {
                (0, max)
            } else {
                let i = self.cur();
                (i, (self.ring_block - self.taken % self.ring_block).min(max))
            };
            let n = self.rings[i].pop_avail(|v| tape.push(v), room);
            self.taken += n;
            total += n;
            max -= n;
            if n < room {
                break;
            }
        }
        total
    }
}

/// One cut out-edge the worker must flush after firing.
///
/// Normally one ring; when the edge's *consumer* is fissioned this is a
/// deal point — one ring per replica, written round-robin in `ring_block`
/// chunks (the consumer's per-firing pop rate), so replica `r` receives
/// exactly the tokens of steady firings `g ≡ r (mod k)`.
struct Push {
    edge: usize,
    rings: Vec<Arc<Ring>>,
    /// Tokens written to one ring before rotating to the next (unused
    /// when `rings.len() == 1`).
    ring_block: usize,
    /// Total tokens shipped on this edge — the rotation cursor.
    shipped: usize,
    /// Tokens one firing pushes on this edge (sizes batch admission).
    rate: usize,
}

impl Push {
    fn single(edge: usize, ring: Arc<Ring>, rate: usize) -> Push {
        Push {
            edge,
            rings: vec![ring],
            ring_block: 0,
            shipped: 0,
            rate,
        }
    }

    /// Index of the ring receiving the next token in stream order.
    fn cur(&self) -> usize {
        if self.rings.len() == 1 {
            0
        } else {
            (self.shipped / self.ring_block) % self.rings.len()
        }
    }

    /// How many of `want` tokens fit in the current deal block.
    fn room_in_block(&self, want: usize) -> usize {
        if self.rings.len() == 1 {
            want
        } else {
            (self.ring_block - self.shipped % self.ring_block).min(want)
        }
    }
}

/// One same-core in-edge, tracked so the post-failure drain can check
/// token sufficiency without firing (the scheduled phase needs no such
/// check: the schedule guarantees availability).
struct LocalIn {
    edge: usize,
    /// Physical tokens one firing must be able to address.
    need: usize,
    /// Consumer-side reorder block (1 if plain). The drain has no block
    /// cursor for local tapes, so sufficiency is `need + block - 1` —
    /// conservative by at most one block.
    block: usize,
}

/// Per-node firing plan for one core.
struct NodePlan {
    id: NodeId,
    reps: u64,
    init_reps: u64,
    pulls: Vec<Pull>,
    pushes: Vec<Push>,
    local_ins: Vec<LocalIn>,
    /// Firings attempted so far (the fault-addressing clock: init +
    /// steady, 0-based, deterministic because each node fires on exactly
    /// one worker in schedule order).
    attempts: u64,
    /// Firings completed (output committed).
    completed: u64,
    /// Total firings a full run would execute; the drain never exceeds it
    /// (keeps branch sources from running away from a failed sibling).
    scheduled: u64,
    /// Firing-index stride. 1 for a whole node; `k` for a fission
    /// replica, which executes global steady firings `offset, offset+k,
    /// offset+2k, …` — `attempts` stays the *global* firing index, so
    /// fault addressing and trace attribution match the sequential run.
    stride: u64,
    /// Current adaptive batch depth, clamped to `[MIN_BATCH, MAX_BATCH]`.
    depth: u64,
}

pub(crate) struct Worker<'g> {
    graph: &'g Graph,
    machine: &'g Machine,
    tapes: Vec<Tape>,
    states: Vec<FilterState>,
    plans: Vec<NodePlan>,
    stages: Arc<Vec<Stage>>,
    counters: CycleCounters,
    sink_outputs: Vec<(usize, Vec<Value>)>,
    scratch: Vec<Value>,
    /// This core's trace handle (zero-sized no-op unless the `telemetry`
    /// feature is on and a live session was passed to the run).
    trace: WorkerTrace,
    core: u32,
    opts: &'g SupervisorOptions,
    sup: &'g Supervisor,
    /// Index into the supervisor's heartbeat table.
    slot: usize,
}

impl<'g> Worker<'g> {
    /// Build the worker for `core`: local tapes (with reorder halves for
    /// cut edges), filter states for its own nodes, and the pull/push
    /// plan per node. Registers this thread on its rings for unpark.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        graph: &'g Graph,
        schedule: &'g Schedule,
        machine: &'g Machine,
        placement: &'g Placement,
        core: u32,
        rings: &'g [EdgeRings],
        stages: Arc<Vec<Stage>>,
        trace: WorkerTrace,
        opts: &'g SupervisorOptions,
        sup: &'g Supervisor,
        slot: usize,
        iters: u64,
    ) -> Worker<'g> {
        let assignment = &placement.assignment;
        let mut tapes: Vec<Tape> = graph.edges().map(|(_, e)| Tape::new(e.elem)).collect();
        for (i, (_, e)) in graph.edges().enumerate() {
            let Some(r) = e.reorder else { continue };
            // Fissioned nodes reject reorder on their edges (see
            // `Placement::validate`), so plain assignment lookups suffice.
            let (src_core, dst_core) = (assignment[e.src.0 as usize], assignment[e.dst.0 as usize]);
            match r.side {
                // Consumer-side remap lives on the consuming core's half.
                macross_streamir::graph::ReorderSide::Consumer if dst_core == core => {
                    tapes[i].set_read_reorder(r.rate, r.sw);
                }
                // Producer-side staging lives on the producing core's half.
                macross_streamir::graph::ReorderSide::Producer if src_core == core => {
                    tapes[i].set_write_reorder(r.rate, r.sw);
                }
                _ => {}
            }
        }
        // A node runs here when assigned here — or, if fissioned, when
        // this core hosts one of its replicas.
        let on_core = |id: NodeId| match placement.fission_of(id) {
            Some(spec) => spec.replicas.contains(&core),
            None => assignment[id.0 as usize] == core,
        };
        let states: Vec<FilterState> = graph
            .nodes()
            .map(|(id, node)| match node {
                Node::Filter(f) if on_core(id) => {
                    let in_elem = graph.single_in_edge(id).map(|e| graph.edge(e).elem);
                    let out_elem = graph.single_out_edge(id).map(|e| graph.edge(e).elem);
                    FilterState::prepared(f, machine, in_elem, out_elem, opts.mode)
                }
                _ => FilterState::default(),
            })
            .collect();
        let mut plans = Vec::new();
        for &id in &schedule.order {
            // stride/offset: replica r of a k-way fission fires global
            // steady firings r, r+k, r+2k, …
            let (stride, offset) = match placement.fission_of(id) {
                Some(spec) => match spec.replicas.iter().position(|&c| c == core) {
                    Some(r) => (spec.replicas.len() as u64, r as u64),
                    None => continue,
                },
                None => {
                    if assignment[id.0 as usize] != core {
                        continue;
                    }
                    (1, 0)
                }
            };
            let node = graph.node(id);
            let mut pulls = Vec::new();
            let mut local_ins = Vec::new();
            for eid in graph.in_edges(id) {
                let e = graph.edge(eid);
                let pop = node.pop_rate(e.dst_port);
                let need = match node {
                    Node::Filter(f) => f.pop.max(f.peek),
                    _ => pop,
                };
                let block = e
                    .reorder
                    .filter(|r| r.side == macross_streamir::graph::ReorderSide::Consumer)
                    .map(|r| r.block())
                    .unwrap_or(1);
                match &rings[eid.0 as usize] {
                    EdgeRings::Single(ring) => {
                        ring.register_consumer();
                        pulls.push(Pull::single(
                            eid.0 as usize,
                            Arc::clone(ring),
                            need,
                            pop,
                            block,
                        ));
                    }
                    EdgeRings::Fission(rs) if stride > 1 => {
                        // This node is the fissioned consumer: replica r
                        // reads only its own deal ring.
                        let ring = &rs[offset as usize];
                        ring.register_consumer();
                        pulls.push(Pull::single(
                            eid.0 as usize,
                            Arc::clone(ring),
                            need,
                            pop,
                            block,
                        ));
                    }
                    EdgeRings::Fission(rs) => {
                        // Merge point: the producer is fissioned, replica
                        // streams interleave in push-rate blocks.
                        for ring in rs {
                            ring.register_consumer();
                        }
                        let ring_block = graph.node(e.src).push_rate(e.src_port);
                        pulls.push(Pull {
                            edge: eid.0 as usize,
                            rings: rs.iter().map(Arc::clone).collect(),
                            ring_block,
                            taken: 0,
                            need,
                            pop,
                            block,
                            consumed: 0,
                        });
                    }
                    EdgeRings::Local => local_ins.push(LocalIn {
                        edge: eid.0 as usize,
                        need,
                        block,
                    }),
                }
            }
            let mut pushes = Vec::new();
            for eid in graph.out_edges(id) {
                let e = graph.edge(eid);
                let rate = node.push_rate(e.src_port);
                match &rings[eid.0 as usize] {
                    EdgeRings::Local => {}
                    EdgeRings::Single(ring) => {
                        ring.register_producer();
                        pushes.push(Push::single(eid.0 as usize, Arc::clone(ring), rate));
                    }
                    EdgeRings::Fission(rs) if stride > 1 => {
                        // Fissioned producer: replica r writes only its
                        // own merge ring.
                        let ring = &rs[offset as usize];
                        ring.register_producer();
                        pushes.push(Push::single(eid.0 as usize, Arc::clone(ring), rate));
                    }
                    EdgeRings::Fission(rs) => {
                        // Deal point: the consumer is fissioned, tokens
                        // rotate across replicas in pop-rate blocks.
                        for ring in rs {
                            ring.register_producer();
                        }
                        let ring_block = graph.node(e.dst).pop_rate(e.dst_port);
                        pushes.push(Push {
                            edge: eid.0 as usize,
                            rings: rs.iter().map(Arc::clone).collect(),
                            ring_block,
                            shipped: 0,
                            rate,
                        });
                    }
                }
            }
            let reps = schedule.reps[id.0 as usize];
            let init_reps = schedule.init_reps[id.0 as usize];
            // Replicas start their firing clock at their offset and own
            // every stride-th firing; init firings exist only for whole
            // nodes (validate rejects fission with init_reps > 0).
            let (attempts, scheduled) = if stride > 1 {
                (
                    offset,
                    (iters * reps).saturating_sub(offset).div_ceil(stride),
                )
            } else {
                (0, init_reps + iters * reps)
            };
            plans.push(NodePlan {
                id,
                reps,
                init_reps,
                pulls,
                pushes,
                local_ins,
                attempts,
                completed: 0,
                scheduled,
                stride,
                depth: INIT_BATCH,
            });
        }
        Worker {
            graph,
            machine,
            tapes,
            states,
            plans,
            stages,
            counters: CycleCounters::default(),
            sink_outputs: Vec::new(),
            scratch: Vec::new(),
            trace,
            core,
            opts,
            sup,
            slot,
        }
    }

    /// Run this core: filter init functions, the init schedule, the start
    /// gate, then `iters` timed steady iterations. Always returns (the
    /// possibly partial) output — failures travel through the supervisor.
    pub(crate) fn run(mut self, iters: u64, gate: &StartGate) -> WorkerOut {
        for p in 0..self.plans.len() {
            let id = self.plans[p].id;
            if self.plans[p].stride > 1 {
                self.trace
                    .record(EventKind::FissionReplica, id.0, self.plans[p].stride);
            }
            if let Node::Filter(f) = self.graph.node(id) {
                let kernels = self.states[id.0 as usize].kernel_count();
                if kernels > 0 {
                    self.trace
                        .record(EventKind::KernelFusion, id.0, kernels as u64);
                }
                if let Err(e) = self.states[id.0 as usize].run_init_fn(f, self.machine) {
                    self.fail(id.0 as usize, 0, FailureCause::Vm(e));
                    return self.into_out(0);
                }
            }
        }
        // Init schedule (primes peek slack), in global-order restriction.
        for p in 0..self.plans.len() {
            for _ in 0..self.plans[p].init_reps {
                if self.fire_plan(p).is_err() {
                    self.drain();
                    return self.into_out(0);
                }
            }
        }
        // Don't let fast cores start the clock while others still prime.
        if gate.wait(self.sup.interrupt_flag()).is_err() {
            self.drain();
            return self.into_out(0);
        }
        self.counters = CycleCounters::default();
        let t0 = Instant::now();
        let mut stopped = false;
        'steady: for t in 0..iters {
            for p in 0..self.plans.len() {
                if self.plans[p].stride > 1 {
                    // Replica: fire every stride-th global firing up to
                    // this iteration's boundary. `attempts` is the global
                    // index, so the bound is the full per-iteration reps.
                    let end = (t + 1) * self.plans[p].reps;
                    while self.plans[p].attempts < end {
                        if self.fire_plan(p).is_err() {
                            stopped = true;
                            break 'steady;
                        }
                    }
                    continue;
                }
                let reps = self.plans[p].reps;
                let mut done = 0u64;
                while done < reps {
                    let k = self.batch_size(p, reps - done);
                    let fired = if k >= MIN_BATCH {
                        self.fire_batch(p, k)
                    } else {
                        self.fire_plan(p)
                    };
                    if fired.is_err() {
                        stopped = true;
                        break 'steady;
                    }
                    done += if k >= MIN_BATCH { k } else { 1 };
                }
            }
        }
        let steady_nanos = t0.elapsed().as_nanos() as u64;
        if stopped || self.sup.draining() {
            self.drain();
        }
        self.into_out(steady_nanos)
    }

    fn into_out(self, steady_nanos: u64) -> WorkerOut {
        WorkerOut {
            sink_outputs: self.sink_outputs,
            steady_nanos,
            modelled: self.counters,
        }
    }

    /// Record a failure of `stage` at `firing` and raise the interrupt.
    fn fail(&mut self, stage: usize, firing: u64, cause: FailureCause) {
        self.trace
            .record(EventKind::StageFailed, stage as u32, firing);
        self.sup.raise(StageFailure {
            stage,
            name: stage_name(self.graph.node(NodeId(stage as u32))),
            core: self.core,
            firing,
            mode: self.opts.mode,
            cause,
        });
    }

    /// Sleep `nanos` in supervisor-aware slices, so an injected stall (or
    /// push delay) can outlive a watchdog timeout without outliving the
    /// run. Returns `Err(Stop)` if the run started draining meanwhile.
    fn cooperative_stall(&self, nanos: u64) -> Result<(), Stop> {
        let until = clock::now_ns() + nanos;
        while clock::now_ns() < until {
            if self.sup.draining() {
                return Err(Stop);
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        Ok(())
    }

    /// Quarantine the torn outputs of a failed firing: poison every local
    /// out-edge tape half of `id` so nothing downstream consumes a torn
    /// write prefix. (Cut-edge rings only ever receive post-firing
    /// flushes, so they need no quarantine.)
    fn quarantine_outputs(&mut self, id: NodeId) {
        for eid in self.graph.out_edges(id) {
            self.tapes[eid.0 as usize].poison();
        }
    }

    /// One firing of plan `p`: pull cut-edge inputs, fire (inside
    /// `catch_unwind`, under a heartbeat, with any planned fault applied),
    /// flush cut-edge outputs.
    fn fire_plan(&mut self, p: usize) -> Result<(), Stop> {
        if self.sup.draining() {
            return Err(Stop);
        }
        let id = self.plans[p].id;
        let stage = id.0 as usize;
        let firing = self.plans[p].attempts;
        self.plans[p].attempts += self.plans[p].stride;
        let fault = self.opts.plan.fault_for(stage, firing);
        let mut delay_push = 0u64;
        if let Some(kind) = fault {
            self.trace.record(EventKind::FaultInjected, id.0, firing);
            match kind {
                FaultKind::PoisonTape => {
                    // Poison the stage's input half (or output half for
                    // sources); the firing below then refuses to run.
                    if let Some(e) = self.graph.single_in_edge(id) {
                        self.tapes[e.0 as usize].poison();
                    } else if let Some(e) = self.graph.single_out_edge(id) {
                        self.tapes[e.0 as usize].poison();
                    }
                }
                FaultKind::DelayPush { nanos } => delay_push = nanos,
                FaultKind::DropUnpark { count } => {
                    for push in &self.plans[p].pushes {
                        for ring in &push.rings {
                            ring.arm_unpark_drops(count as u64);
                        }
                    }
                    for pull in &self.plans[p].pulls {
                        for ring in &pull.rings {
                            ring.arm_unpark_drops(count as u64);
                        }
                    }
                }
                FaultKind::Panic | FaultKind::StallFiring { .. } => {}
            }
        }
        // Input waits stay OUTSIDE the heartbeat window: a stage blocked
        // on an empty ring is waiting, not executing, and must not be
        // condemned by the watchdog (blocked waits are interruptible
        // through the abort flag instead). The heartbeat covers only the
        // firing itself.
        if self.ensure_inputs(p).is_err() {
            return Err(Stop);
        }
        let hb = self.sup.heartbeat(self.slot);
        hb.begin(stage, firing);
        if let Some(FaultKind::StallFiring { nanos }) = fault {
            // Under the heartbeat: a stall longer than the watchdog
            // timeout is escalated; a shorter one is pure latency.
            if self.cooperative_stall(nanos).is_err() {
                hb.end();
                return Err(Stop);
            }
        }
        self.trace.record(EventKind::FiringStart, id.0, 0);
        let before = self.counters.total();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(FaultKind::Panic)) {
                panic!("injected fault: panic at stage {stage} firing {firing}");
            }
            self.fire_node(id)
        }));
        self.trace
            .record(EventKind::FiringEnd, id.0, self.counters.total() - before);
        hb.end();
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                self.quarantine_outputs(id);
                self.fail(stage, firing, FailureCause::Vm(e));
                return Err(Stop);
            }
            Err(payload) => {
                self.quarantine_outputs(id);
                let msg = firing::panic_message(payload.as_ref());
                self.fail(stage, firing, FailureCause::Panic(msg));
                return Err(Stop);
            }
        }
        // The watchdog may have condemned this very firing while it ran
        // (stall injection, genuinely slow stage). Its output must not be
        // committed then: the failure report says the firing never
        // finished cleanly.
        if self.sup.draining() && self.sup.failed_stages().contains(&stage) {
            self.trace.record(EventKind::WatchdogFire, id.0, firing);
            self.quarantine_outputs(id);
            return Err(Stop);
        }
        self.plans[p].completed += 1;
        self.stages[stage].firings.fetch_add(1, Ordering::Relaxed);
        if delay_push > 0 && self.cooperative_stall(delay_push).is_err() {
            // Another stage failed during the injected delay; the drain
            // below flushes this firing's committed output.
            return Err(Stop);
        }
        if self.flush_outputs(p).is_err() {
            return Err(Stop);
        }
        Ok(())
    }

    /// How many of the next `remaining` firings of plan `p` can run as
    /// one batch. Filters only, steady phase only, never under a
    /// watchdog (per-firing timeout attribution needs per-firing
    /// heartbeats) and never across an injected fault (the faulty firing
    /// runs un-batched with the full fault setup). Tops the cut in-edge
    /// tapes up with whatever their rings hold right now (non-blocking)
    /// and requires ring space for the whole batch's output, so the
    /// batched firings themselves never wait on a ring.
    fn batch_size(&mut self, p: usize, remaining: u64) -> u64 {
        if remaining < MIN_BATCH || self.opts.wants_watchdog() || self.sup.draining() {
            return 1;
        }
        let id = self.plans[p].id;
        if !matches!(self.graph.node(id), Node::Filter(_)) {
            return 1;
        }
        let stage = id.0 as usize;
        // Replicas fire strided global indices (batch bookkeeping assumes
        // +1 steps) and deal producers rotate rings mid-flush under
        // rollback — both stay un-batched. Merge consumers batch fine:
        // the top-up below rotates deterministically and is never rolled
        // back (it precedes the batch snapshot).
        if self.plans[p].stride > 1 || self.plans[p].pushes.iter().any(|ps| ps.rings.len() > 1) {
            return 1;
        }
        let mut k = remaining.min(self.plans[p].depth);
        let attempts = self.plans[p].attempts;
        for j in 0..k {
            if self.opts.plan.fault_for(stage, attempts + j).is_some() {
                k = j;
                break;
            }
        }
        if k < MIN_BATCH {
            return 1;
        }
        let plan = &mut self.plans[p];
        for pull in &mut plan.pulls {
            let tape = &mut self.tapes[pull.edge];
            let pos = pull.consumed % pull.block;
            // Physical tokens k successive firings address: the last
            // starts at block position pos + (k-1)*pop and reaches
            // `need` further, rounded up to whole reorder blocks.
            let target = pos + (k as usize - 1) * pull.pop + pull.need;
            let target_phys = if pull.block > 1 {
                target.div_ceil(pull.block) * pull.block
            } else {
                target
            };
            if tape.len() < target_phys {
                let missing = target_phys - tape.len();
                let got = pull.pop_rotating(tape, missing);
                if got > 0 {
                    self.stages[stage]
                        .ring_in
                        .fetch_add(got as u64, Ordering::Relaxed);
                }
            }
            let len = tape.len();
            let cap = if pull.block > 1 {
                (len / pull.block) * pull.block
            } else {
                len
            };
            let k_max = if cap < pos + pull.need {
                0
            } else {
                match (cap - pos - pull.need).checked_div(pull.pop) {
                    Some(extra) => (extra as u64 + 1).min(k),
                    None => k,
                }
            };
            k = k_max;
            if k < MIN_BATCH {
                return 1;
            }
        }
        for push in &plan.pushes {
            if let Some(room) = push.rings[0].free_space().checked_div(push.rate) {
                k = k.min(room as u64);
            }
        }
        if k < MIN_BATCH {
            1
        } else {
            k
        }
    }

    /// Adjust plan `p`'s batch depth from downstream ring occupancy after
    /// a flush: any near-full ring (≥ 3/4) means the consumer is behind —
    /// halve so it waits less per wakeup; all near-empty (≤ 1/4) means
    /// the consumer is starved — grow so each flush delivers more.
    /// Output-invariant: depth only regroups firings into batches, never
    /// reorders tokens.
    fn adapt_depth(&mut self, p: usize) {
        let plan = &mut self.plans[p];
        if plan.pushes.is_empty() {
            return;
        }
        let mut any_full = false;
        let mut all_idle = true;
        for push in &plan.pushes {
            for ring in &push.rings {
                let cap = ring.capacity();
                let used = cap - ring.free_space().min(cap);
                if used * 4 >= cap * 3 {
                    any_full = true;
                }
                if used * 4 > cap {
                    all_idle = false;
                }
            }
        }
        let depth = plan.depth;
        let next = if any_full {
            (depth / 2).max(MIN_BATCH)
        } else if all_idle {
            (depth * 2).min(MAX_BATCH)
        } else {
            depth
        };
        if next != depth {
            plan.depth = next;
            self.trace.record(EventKind::BatchDepth, plan.id.0, next);
        }
    }

    /// Fire plan `p` `k` times as one batch: inputs already topped up and
    /// output space verified by [`Worker::batch_size`], one heartbeat
    /// window and one output flush for the whole batch. Cycle accounting
    /// and failure attribution stay per-firing: `fire_node` runs (and
    /// charges) each firing individually, and a batch that fails is
    /// rolled back — tapes, filter state, modelled counters, plan
    /// cursors — and re-run un-batched, so the deterministic failure
    /// recurs at the exact firing with the standard path's quarantine
    /// and `StageFailure` attribution.
    fn fire_batch(&mut self, p: usize, k: u64) -> Result<(), Stop> {
        if self.sup.draining() {
            return Err(Stop);
        }
        let id = self.plans[p].id;
        let stage = id.0 as usize;
        let first_firing = self.plans[p].attempts;

        // Snapshot everything a failed batch must roll back: every tape
        // half the node touches (cut and local, both sides), the filter
        // state, the modelled counters, and the plan cursors. Stats and
        // traces are not rolled back — the replay does not re-pull from
        // rings (tokens are already local), and the batch loop records no
        // per-firing trace events (see below), so nothing double-counts.
        let tape_ids: Vec<usize> = self
            .graph
            .in_edges(id)
            .into_iter()
            .chain(self.graph.out_edges(id))
            .map(|e| e.0 as usize)
            .collect();
        let tapes: Vec<Tape> = tape_ids.iter().map(|&e| self.tapes[e].clone()).collect();
        let consumed: Vec<usize> = self.plans[p].pulls.iter().map(|pl| pl.consumed).collect();
        let state = self.states[stage].clone();
        let counters = self.counters;
        let completed = self.plans[p].completed;

        let hb = self.sup.heartbeat(self.slot);
        hb.begin(stage, first_firing);
        let mut failed = false;
        for _ in 0..k {
            self.plans[p].attempts += 1;
            // The tapes were topped up, so this finds every token
            // locally — no ring waits — while keeping the per-firing
            // `consumed` bookkeeping identical to the un-batched path.
            if self.ensure_inputs(p).is_err() {
                hb.end();
                return Err(Stop);
            }
            // No FiringStart/End here: a successful batch is represented
            // by the single BatchedFiring event below, and a failed batch
            // replays un-batched through fire_plan, whose per-firing
            // events would otherwise duplicate ones recorded here for the
            // firings that succeeded before the failure.
            let result = catch_unwind(AssertUnwindSafe(|| self.fire_node(id)));
            if !matches!(result, Ok(Ok(()))) {
                failed = true;
                break;
            }
            self.plans[p].completed += 1;
        }
        hb.end();
        if failed {
            for (&e, tape) in tape_ids.iter().zip(tapes) {
                self.tapes[e] = tape;
            }
            for (pull, &c) in self.plans[p].pulls.iter_mut().zip(&consumed) {
                pull.consumed = c;
            }
            self.states[stage] = state;
            self.counters = counters;
            self.plans[p].attempts = first_firing;
            self.plans[p].completed = completed;
            for _ in 0..k {
                self.fire_plan(p)?;
            }
            return Ok(());
        }
        self.stages[stage].firings.fetch_add(k, Ordering::Relaxed);
        self.stages[stage]
            .batched_firings
            .fetch_add(k, Ordering::Relaxed);
        self.trace.record(EventKind::BatchedFiring, id.0, k);
        self.flush_outputs(p)?;
        self.adapt_depth(p);
        Ok(())
    }

    /// Pull from each cut in-edge until the local tape half holds every
    /// physical token this firing can address.
    fn ensure_inputs(&mut self, p: usize) -> Result<(), Stop> {
        let abort = self.sup.interrupt_flag();
        let plan = &mut self.plans[p];
        let node_idx = plan.id.0 as usize;
        for pull in &mut plan.pulls {
            let needed_phys = pull.needed_phys();
            let tape = &mut self.tapes[pull.edge];
            let mut got = 0u64;
            // One stall interval per insufficient-input episode: opened
            // on the first park, closed when the input is satisfied (or
            // re-keyed when the merge rotation moves to another ring).
            // Spurious unparks and partial arrivals re-enter the wait
            // without opening a second interval, so `empty_stalls` counts
            // episodes and `empty_stall_nanos` stays monotonic per
            // episode.
            let mut stall: Option<(usize, Instant)> = None;
            while tape.len() < needed_phys {
                let missing = needed_phys - tape.len();
                got += pull.pop_rotating(tape, missing) as u64;
                if tape.len() >= needed_phys {
                    break;
                }
                let cur = pull.cur();
                match stall {
                    Some((i, _)) if i == cur => {}
                    Some((i, t0)) => {
                        pull.rings[i].end_empty_stall(t0, &self.trace);
                        stall = Some((cur, pull.rings[cur].begin_empty_stall(&self.trace)));
                    }
                    None => {
                        stall = Some((cur, pull.rings[cur].begin_empty_stall(&self.trace)));
                    }
                }
                if pull.rings[cur]
                    .wait_nonempty_quiet(abort, &self.trace)
                    .is_err()
                {
                    if let Some((i, t0)) = stall {
                        pull.rings[i].end_empty_stall(t0, &self.trace);
                    }
                    return Err(Stop);
                }
            }
            if let Some((i, t0)) = stall {
                pull.rings[i].end_empty_stall(t0, &self.trace);
            }
            pull.consumed += pull.pop;
            if got > 0 {
                self.stages[node_idx]
                    .ring_in
                    .fetch_add(got, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Drain every committed element of each cut out-edge's local tape
    /// half into its ring, in physical order.
    fn flush_outputs(&mut self, p: usize) -> Result<(), Stop> {
        let abort = self.sup.interrupt_flag();
        let plan = &mut self.plans[p];
        let node_idx = plan.id.0 as usize;
        for push in &mut plan.pushes {
            let tape = &mut self.tapes[push.edge];
            let n = tape.len();
            if n == 0 {
                continue;
            }
            self.scratch.clear();
            for _ in 0..n {
                self.scratch.push(tape.pop());
            }
            // Single ring: one batch. Deal point: rotate replicas at
            // pop-rate block boundaries so replica r receives exactly the
            // tokens of its own global firings.
            let mut off = 0;
            while off < n {
                let i = push.cur();
                let take = push.room_in_block(n - off);
                if push.rings[i]
                    .push_batch_traced(&self.scratch[off..off + take], abort, &self.trace)
                    .is_err()
                {
                    return Err(Stop);
                }
                push.shipped += take;
                off += take;
            }
            self.stages[node_idx]
                .ring_out
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Coordinated drain after a failure, the "degrade gracefully" half
    /// of the supervision protocol:
    ///
    /// - stages with a path to any failed stage (including the failed
    ///   stages themselves) stop — anything they produced would never be
    ///   consumed past the failure point;
    /// - every other local stage keeps firing as long as its inputs are
    ///   already available (non-blocking ring pops, no waits), bounded by
    ///   the firing count a full run would have executed;
    /// - cut-edge flushes become non-blocking and keep the unflushed tail
    ///   buffered locally, so no committed token is dropped while a full
    ///   ring empties;
    /// - the pass loop ends after two consecutive passes without
    ///   progress (the second separated by a short sleep so in-flight
    ///   tokens from other cores can land).
    ///
    /// Termination is structural: every pass either completes a firing
    /// (bounded by the schedule) or burns one of the two idle passes.
    fn drain(&mut self) {
        let failed = self.sup.failed_stages();
        self.trace.record(
            EventKind::DrainBegin,
            failed.first().map(|&s| s as u32).unwrap_or(0),
            0,
        );
        let excluded = self.upstream_of(&failed);
        let mut dead = vec![false; self.graph.node_count()];
        let mut idle_passes = 0;
        while idle_passes < 2 {
            let mut fired = false;
            for p in 0..self.plans.len() {
                let stage = self.plans[p].id.0 as usize;
                if excluded[stage] || dead[stage] {
                    continue;
                }
                // Committed output first: even if the stage never fires
                // again, what it already produced must reach its ring.
                self.flush_avail(p);
                while self.plans[p].completed < self.plans[p].scheduled
                    && self.drain_inputs_ready(p)
                {
                    if self.drain_fire(p, &mut dead) {
                        fired = true;
                    } else {
                        break;
                    }
                }
            }
            if fired {
                idle_passes = 0;
            } else {
                idle_passes += 1;
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// `excluded[n]` = node `n` can reach a failed stage (or is one):
    /// its remaining output is undeliverable, so it parks instead of
    /// firing into a dead subgraph.
    fn upstream_of(&self, failed: &[usize]) -> Vec<bool> {
        let mut marked = vec![false; self.graph.node_count()];
        for &f in failed {
            if f < marked.len() {
                marked[f] = true;
            }
        }
        loop {
            let mut changed = false;
            for (_, e) in self.graph.edges() {
                if marked[e.dst.0 as usize] && !marked[e.src.0 as usize] {
                    marked[e.src.0 as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                return marked;
            }
        }
    }

    /// True when every in-edge of plan `p` already holds enough tokens
    /// for one firing (after topping up cut edges non-blocking) and none
    /// of its tapes is quarantined.
    fn drain_inputs_ready(&mut self, p: usize) -> bool {
        let node_idx = self.plans[p].id.0 as usize;
        let plan = &mut self.plans[p];
        for pull in &mut plan.pulls {
            let needed_phys = pull.needed_phys();
            let tape = &mut self.tapes[pull.edge];
            if tape.is_poisoned() {
                return false;
            }
            if tape.len() < needed_phys {
                let missing = needed_phys - tape.len();
                let got = pull.pop_rotating(tape, missing);
                if got > 0 {
                    self.stages[node_idx]
                        .ring_in
                        .fetch_add(got as u64, Ordering::Relaxed);
                }
                if tape.len() < needed_phys {
                    return false;
                }
            }
        }
        for li in &plan.local_ins {
            let tape = &self.tapes[li.edge];
            if tape.is_poisoned() {
                return false;
            }
            // No block cursor for local tapes: require a worst-case
            // block-aligned window (conservative by < one block).
            let required = if li.block > 1 {
                li.need + li.block - 1
            } else {
                li.need
            };
            if tape.len() < required {
                return false;
            }
        }
        // The firing below also writes: a poisoned output half (torn
        // prefix quarantine) refuses the firing for filters and must
        // equally stop splitters/joiners/sinks here.
        if self
            .graph
            .out_edges(self.plans[p].id)
            .iter()
            .any(|e| self.tapes[e.0 as usize].is_poisoned())
        {
            return false;
        }
        true
    }

    /// Fire plan `p` once during the drain. Returns false (and marks the
    /// stage dead) if the firing failed — a second failure during the
    /// drain is recorded like the first, but must not loop forever.
    fn drain_fire(&mut self, p: usize, dead: &mut [bool]) -> bool {
        let id = self.plans[p].id;
        let stage = id.0 as usize;
        let firing = self.plans[p].attempts;
        self.plans[p].attempts += self.plans[p].stride;
        self.trace.record(EventKind::FiringStart, id.0, 0);
        let before = self.counters.total();
        let result = catch_unwind(AssertUnwindSafe(|| self.fire_node(id)));
        self.trace
            .record(EventKind::FiringEnd, id.0, self.counters.total() - before);
        let cause = match result {
            Ok(Ok(())) => {
                self.plans[p].completed += 1;
                self.stages[stage].firings.fetch_add(1, Ordering::Relaxed);
                for pull in &mut self.plans[p].pulls {
                    pull.consumed += pull.pop;
                }
                self.flush_avail(p);
                return true;
            }
            Ok(Err(e)) => FailureCause::Vm(e),
            Err(payload) => FailureCause::Panic(firing::panic_message(payload.as_ref())),
        };
        self.quarantine_outputs(id);
        self.fail(stage, firing, cause);
        dead[stage] = true;
        false
    }

    /// Non-blocking cut-edge flush: push what fits, keep the tail local
    /// (in order) for the next pass.
    fn flush_avail(&mut self, p: usize) {
        let plan = &mut self.plans[p];
        let node_idx = plan.id.0 as usize;
        for push in &mut plan.pushes {
            let tape = &mut self.tapes[push.edge];
            let n = tape.len();
            if n == 0 {
                continue;
            }
            self.scratch.clear();
            for i in 0..n {
                self.scratch.push(tape.peek(i));
            }
            // Same deal rotation as the blocking flush, but stop at the
            // first ring that refuses tokens — the cursor must stay
            // exactly at the next undelivered token.
            let mut off = 0;
            while off < n {
                let i = push.cur();
                let take = push.room_in_block(n - off);
                let accepted = push.rings[i].push_avail(&self.scratch[off..off + take]);
                push.shipped += accepted;
                off += accepted;
                if accepted < take {
                    break;
                }
            }
            for _ in 0..off {
                tape.pop();
            }
            if off > 0 {
                self.stages[node_idx]
                    .ring_out
                    .fetch_add(off as u64, Ordering::Relaxed);
            }
        }
    }

    /// Fire one node once against the local tapes — the same dispatch as
    /// `Executor::fire`, built on the shared [`firing`] primitives.
    fn fire_node(&mut self, id: NodeId) -> Result<(), macross_vm::VmError> {
        self.counters.firing_overhead += self.machine.cost.firing;
        let in_edge = self.graph.single_in_edge(id);
        let out_edge = self.graph.single_out_edge(id);
        match self.graph.node(id) {
            Node::Filter(f) => {
                let in_cost = in_edge
                    .map(|e| firing::edge_addr_cost(self.graph, e, true, self.machine))
                    .unwrap_or(0);
                let out_cost = out_edge
                    .map(|e| firing::edge_addr_cost(self.graph, e, false, self.machine))
                    .unwrap_or(0);
                firing::fire_filter(
                    f,
                    &mut self.states[id.0 as usize],
                    &mut self.tapes,
                    in_edge.map(|e| e.0 as usize),
                    out_edge.map(|e| e.0 as usize),
                    in_cost,
                    out_cost,
                    self.machine,
                    &mut self.counters,
                )?;
            }
            Node::Splitter(kind) => {
                let kind = kind.clone();
                let in_edge = in_edge.expect("splitter needs an input");
                let outs = self.graph.out_edges(id);
                let in_cost = firing::edge_addr_cost(self.graph, in_edge, true, self.machine);
                let out_costs: Vec<u64> = outs
                    .iter()
                    .map(|&e| firing::edge_addr_cost(self.graph, e, false, self.machine))
                    .collect();
                let out_idx: Vec<usize> = outs.iter().map(|e| e.0 as usize).collect();
                firing::fire_splitter(
                    &kind,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &out_idx,
                    in_cost,
                    &out_costs,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Joiner(weights) => {
                let weights = weights.clone();
                let ins = self.graph.in_edges(id);
                let out = out_edge.expect("joiner needs an output");
                let in_costs: Vec<u64> = ins
                    .iter()
                    .map(|&e| firing::edge_addr_cost(self.graph, e, true, self.machine))
                    .collect();
                let out_cost = firing::edge_addr_cost(self.graph, out, false, self.machine);
                let in_idx: Vec<usize> = ins.iter().map(|e| e.0 as usize).collect();
                firing::fire_joiner(
                    &weights,
                    &mut self.tapes,
                    &in_idx,
                    out.0 as usize,
                    &in_costs,
                    out_cost,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HSplitter { kind, width } => {
                let (kind, width) = (kind.clone(), *width);
                let in_edge = in_edge.expect("hsplitter needs an input");
                let out_idx: Vec<usize> = self
                    .graph
                    .out_edges(id)
                    .iter()
                    .map(|e| e.0 as usize)
                    .collect();
                firing::fire_hsplitter(
                    &kind,
                    width,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &out_idx,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HJoiner { weights, width } => {
                let (weights, width) = (weights.clone(), *width);
                let out = out_edge.expect("hjoiner needs an output");
                let in_idx: Vec<usize> = self
                    .graph
                    .in_edges(id)
                    .iter()
                    .map(|e| e.0 as usize)
                    .collect();
                firing::fire_hjoiner(
                    &weights,
                    width,
                    &mut self.tapes,
                    &in_idx,
                    out.0 as usize,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Sink => {
                let in_edge = in_edge.expect("sink needs an input");
                let in_cost = firing::edge_addr_cost(self.graph, in_edge, true, self.machine);
                let v = firing::fire_sink(
                    &mut self.tapes,
                    in_edge.0 as usize,
                    in_cost,
                    self.machine,
                    &mut self.counters,
                );
                let idx = id.0 as usize;
                match self.sink_outputs.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, vals)) => vals.push(v),
                    None => self.sink_outputs.push((idx, vec![v])),
                }
            }
        }
        Ok(())
    }
}
