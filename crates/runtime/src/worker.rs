//! Per-core worker: executes one core's slice of the global SDF schedule
//! against thread-local tapes, bridging cut edges through SPSC rings.
//!
//! Each worker owns a full `Vec<Tape>` indexed by edge id but only touches
//! the edges incident to its own nodes. A cut edge is represented twice —
//! a producer-side tape half on the producing core and a consumer-side
//! half on the consuming core — with the physical [`crate::ring::Ring`]
//! in between. Reorder semantics stay in the local halves: a
//! producer-side reorder (`ReorderSide::Producer`) stages and commits on
//! the producing core, a consumer-side reorder (`ReorderSide::Consumer`)
//! remaps reads on the consuming core, and the ring always carries
//! elements in committed physical order. Draining a tape front-first
//! therefore preserves exactly the layout the single-threaded executor
//! would have seen, which is what makes the differential tests exact.

use crate::ring::{Aborted, Ring};
use crate::{Stage, StartGate};
use macross_sdf::Schedule;
use macross_streamir::graph::{Graph, Node, NodeId};
use macross_streamir::types::Value;
use macross_telemetry::{EventKind, WorkerTrace};
use macross_vm::exec::ExecMode;
use macross_vm::firing::{self, FilterState};
use macross_vm::machine::{CycleCounters, Machine};
use macross_vm::tape::Tape;
use macross_vm::VmError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A worker failure, before mapping to `RuntimeError`.
#[derive(Debug)]
pub(crate) enum WorkerFail {
    /// A filter body failed on this core.
    Vm(VmError),
    /// Another core failed; this one was unblocked by the abort flag.
    Aborted,
}

impl From<Aborted> for WorkerFail {
    fn from(_: Aborted) -> Self {
        WorkerFail::Aborted
    }
}

impl From<VmError> for WorkerFail {
    fn from(e: VmError) -> Self {
        WorkerFail::Vm(e)
    }
}

/// What a worker hands back to the coordinator.
pub(crate) struct WorkerOut {
    /// `(sink node id, values captured)` for sinks hosted on this core.
    pub sink_outputs: Vec<(usize, Vec<Value>)>,
    /// Wall-clock nanoseconds spent in the steady loop.
    pub steady_nanos: u64,
    /// Modelled cycles accumulated by this core's firings (steady only).
    pub modelled: CycleCounters,
}

/// One cut in-edge the worker must pull tokens for before firing.
struct Pull {
    edge: usize,
    ring: Arc<Ring>,
    /// Physical tokens one firing must be able to address:
    /// `max(pop, peek)` for filters, the exact pop rate otherwise.
    need: usize,
    /// Logical tokens one firing consumes (advances the block position).
    pop: usize,
    /// Read-reorder block of the local consumer tape half (1 if plain).
    /// Column-major remapping addresses anywhere inside the current
    /// block, so availability is rounded up to whole blocks.
    block: usize,
    /// Total tokens consumed so far — `consumed % block` is the position
    /// inside the current block.
    consumed: usize,
}

/// One cut out-edge the worker must flush after firing.
struct Push {
    edge: usize,
    ring: Arc<Ring>,
}

/// Per-node firing plan for one core.
struct NodePlan {
    id: NodeId,
    reps: u64,
    init_reps: u64,
    pulls: Vec<Pull>,
    pushes: Vec<Push>,
}

pub(crate) struct Worker<'g> {
    graph: &'g Graph,
    machine: &'g Machine,
    tapes: Vec<Tape>,
    states: Vec<FilterState>,
    plans: Vec<NodePlan>,
    stages: Arc<Vec<Stage>>,
    counters: CycleCounters,
    sink_outputs: Vec<(usize, Vec<Value>)>,
    scratch: Vec<Value>,
    /// This core's trace handle (zero-sized no-op unless the `telemetry`
    /// feature is on and a live session was passed to the run).
    trace: WorkerTrace,
}

impl<'g> Worker<'g> {
    /// Build the worker for `core`: local tapes (with reorder halves for
    /// cut edges), filter states for its own nodes, and the pull/push
    /// plan per node. Registers this thread on its rings for unpark.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        graph: &'g Graph,
        schedule: &'g Schedule,
        machine: &'g Machine,
        assignment: &[u32],
        core: u32,
        rings: &[Option<Arc<Ring>>],
        stages: Arc<Vec<Stage>>,
        trace: WorkerTrace,
        mode: ExecMode,
    ) -> Worker<'g> {
        let mut tapes: Vec<Tape> = graph.edges().map(|(_, e)| Tape::new(e.elem)).collect();
        for (i, (_, e)) in graph.edges().enumerate() {
            let Some(r) = e.reorder else { continue };
            let (src_core, dst_core) = (assignment[e.src.0 as usize], assignment[e.dst.0 as usize]);
            match r.side {
                // Consumer-side remap lives on the consuming core's half.
                macross_streamir::graph::ReorderSide::Consumer if dst_core == core => {
                    tapes[i].set_read_reorder(r.rate, r.sw);
                }
                // Producer-side staging lives on the producing core's half.
                macross_streamir::graph::ReorderSide::Producer if src_core == core => {
                    tapes[i].set_write_reorder(r.rate, r.sw);
                }
                _ => {}
            }
        }
        let states: Vec<FilterState> = graph
            .nodes()
            .map(|(id, node)| match node {
                Node::Filter(f) if assignment[id.0 as usize] == core => {
                    let in_elem = graph.single_in_edge(id).map(|e| graph.edge(e).elem);
                    let out_elem = graph.single_out_edge(id).map(|e| graph.edge(e).elem);
                    FilterState::prepared(f, machine, in_elem, out_elem, mode)
                }
                _ => FilterState::default(),
            })
            .collect();
        let mut plans = Vec::new();
        for &id in &schedule.order {
            if assignment[id.0 as usize] != core {
                continue;
            }
            let node = graph.node(id);
            let mut pulls = Vec::new();
            for eid in graph.in_edges(id) {
                let Some(ring) = &rings[eid.0 as usize] else {
                    continue;
                };
                ring.register_consumer();
                let e = graph.edge(eid);
                let pop = node.pop_rate(e.dst_port);
                let need = match node {
                    Node::Filter(f) => f.pop.max(f.peek),
                    _ => pop,
                };
                let block = e
                    .reorder
                    .filter(|r| r.side == macross_streamir::graph::ReorderSide::Consumer)
                    .map(|r| r.block())
                    .unwrap_or(1);
                pulls.push(Pull {
                    edge: eid.0 as usize,
                    ring: Arc::clone(ring),
                    need,
                    pop,
                    block,
                    consumed: 0,
                });
            }
            let mut pushes = Vec::new();
            for eid in graph.out_edges(id) {
                let Some(ring) = &rings[eid.0 as usize] else {
                    continue;
                };
                ring.register_producer();
                pushes.push(Push {
                    edge: eid.0 as usize,
                    ring: Arc::clone(ring),
                });
            }
            plans.push(NodePlan {
                id,
                reps: schedule.reps[id.0 as usize],
                init_reps: schedule.init_reps[id.0 as usize],
                pulls,
                pushes,
            });
        }
        Worker {
            graph,
            machine,
            tapes,
            states,
            plans,
            stages,
            counters: CycleCounters::default(),
            sink_outputs: Vec::new(),
            scratch: Vec::new(),
            trace,
        }
    }

    /// Run this core: filter init functions, the init schedule, the start
    /// gate, then `iters` timed steady iterations.
    pub(crate) fn run(
        mut self,
        iters: u64,
        gate: &StartGate,
        abort: &AtomicBool,
    ) -> Result<WorkerOut, WorkerFail> {
        for p in 0..self.plans.len() {
            let id = self.plans[p].id;
            if let Node::Filter(f) = self.graph.node(id) {
                self.states[id.0 as usize].run_init_fn(f, self.machine)?;
            }
        }
        // Init schedule (primes peek slack), in global-order restriction.
        for p in 0..self.plans.len() {
            for _ in 0..self.plans[p].init_reps {
                self.fire_plan(p, abort)?;
            }
        }
        // Don't let fast cores start the clock while others still prime.
        gate.wait(abort)?;
        self.counters = CycleCounters::default();
        let t0 = Instant::now();
        for _ in 0..iters {
            for p in 0..self.plans.len() {
                for _ in 0..self.plans[p].reps {
                    self.fire_plan(p, abort)?;
                }
            }
        }
        let steady_nanos = t0.elapsed().as_nanos() as u64;
        Ok(WorkerOut {
            sink_outputs: self.sink_outputs,
            steady_nanos,
            modelled: self.counters,
        })
    }

    /// One firing of plan `p`: pull cut-edge inputs, fire, flush cut-edge
    /// outputs.
    fn fire_plan(&mut self, p: usize, abort: &AtomicBool) -> Result<(), WorkerFail> {
        self.ensure_inputs(p, abort)?;
        let id = self.plans[p].id;
        self.trace.record(EventKind::FiringStart, id.0, 0);
        let before = self.counters.total();
        self.fire_node(id)?;
        // aux = modelled cycles this firing cost, so the timeline carries
        // both wall time (span length) and the cost model's estimate.
        self.trace
            .record(EventKind::FiringEnd, id.0, self.counters.total() - before);
        self.stages[id.0 as usize]
            .firings
            .fetch_add(1, Ordering::Relaxed);
        self.flush_outputs(p, abort)
    }

    /// Pull from each cut in-edge until the local tape half holds every
    /// physical token this firing can address.
    fn ensure_inputs(&mut self, p: usize, abort: &AtomicBool) -> Result<(), WorkerFail> {
        let plan = &mut self.plans[p];
        let node_idx = plan.id.0 as usize;
        for pull in &mut plan.pulls {
            let needed_phys = if pull.block > 1 {
                let pos = pull.consumed % pull.block;
                (pos + pull.need).div_ceil(pull.block) * pull.block
            } else {
                pull.need
            };
            let tape = &mut self.tapes[pull.edge];
            let mut got = 0u64;
            while tape.len() < needed_phys {
                let missing = needed_phys - tape.len();
                let n = pull.ring.pop_avail(|v| tape.push(v), missing);
                if n == 0 {
                    pull.ring.wait_nonempty_traced(abort, &self.trace)?;
                }
                got += n as u64;
            }
            pull.consumed += pull.pop;
            if got > 0 {
                self.stages[node_idx]
                    .ring_in
                    .fetch_add(got, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Drain every committed element of each cut out-edge's local tape
    /// half into its ring, in physical order.
    fn flush_outputs(&mut self, p: usize, abort: &AtomicBool) -> Result<(), WorkerFail> {
        let plan = &self.plans[p];
        let node_idx = plan.id.0 as usize;
        for push in &plan.pushes {
            let tape = &mut self.tapes[push.edge];
            let n = tape.len();
            if n == 0 {
                continue;
            }
            self.scratch.clear();
            for _ in 0..n {
                self.scratch.push(tape.pop());
            }
            push.ring
                .push_batch_traced(&self.scratch, abort, &self.trace)?;
            self.stages[node_idx]
                .ring_out
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fire one node once against the local tapes — the same dispatch as
    /// `Executor::fire`, built on the shared [`firing`] primitives.
    fn fire_node(&mut self, id: NodeId) -> Result<(), VmError> {
        self.counters.firing_overhead += self.machine.cost.firing;
        let in_edge = self.graph.single_in_edge(id);
        let out_edge = self.graph.single_out_edge(id);
        match self.graph.node(id) {
            Node::Filter(f) => {
                let in_cost = in_edge
                    .map(|e| firing::edge_addr_cost(self.graph, e, true, self.machine))
                    .unwrap_or(0);
                let out_cost = out_edge
                    .map(|e| firing::edge_addr_cost(self.graph, e, false, self.machine))
                    .unwrap_or(0);
                firing::fire_filter(
                    f,
                    &mut self.states[id.0 as usize],
                    &mut self.tapes,
                    in_edge.map(|e| e.0 as usize),
                    out_edge.map(|e| e.0 as usize),
                    in_cost,
                    out_cost,
                    self.machine,
                    &mut self.counters,
                )?;
            }
            Node::Splitter(kind) => {
                let kind = kind.clone();
                let in_edge = in_edge.expect("splitter needs an input");
                let outs = self.graph.out_edges(id);
                let in_cost = firing::edge_addr_cost(self.graph, in_edge, true, self.machine);
                let out_costs: Vec<u64> = outs
                    .iter()
                    .map(|&e| firing::edge_addr_cost(self.graph, e, false, self.machine))
                    .collect();
                let out_idx: Vec<usize> = outs.iter().map(|e| e.0 as usize).collect();
                firing::fire_splitter(
                    &kind,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &out_idx,
                    in_cost,
                    &out_costs,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Joiner(weights) => {
                let weights = weights.clone();
                let ins = self.graph.in_edges(id);
                let out = out_edge.expect("joiner needs an output");
                let in_costs: Vec<u64> = ins
                    .iter()
                    .map(|&e| firing::edge_addr_cost(self.graph, e, true, self.machine))
                    .collect();
                let out_cost = firing::edge_addr_cost(self.graph, out, false, self.machine);
                let in_idx: Vec<usize> = ins.iter().map(|e| e.0 as usize).collect();
                firing::fire_joiner(
                    &weights,
                    &mut self.tapes,
                    &in_idx,
                    out.0 as usize,
                    &in_costs,
                    out_cost,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HSplitter { kind, width } => {
                let (kind, width) = (kind.clone(), *width);
                let in_edge = in_edge.expect("hsplitter needs an input");
                let out_idx: Vec<usize> = self
                    .graph
                    .out_edges(id)
                    .iter()
                    .map(|e| e.0 as usize)
                    .collect();
                firing::fire_hsplitter(
                    &kind,
                    width,
                    &mut self.tapes,
                    in_edge.0 as usize,
                    &out_idx,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::HJoiner { weights, width } => {
                let (weights, width) = (weights.clone(), *width);
                let out = out_edge.expect("hjoiner needs an output");
                let in_idx: Vec<usize> = self
                    .graph
                    .in_edges(id)
                    .iter()
                    .map(|e| e.0 as usize)
                    .collect();
                firing::fire_hjoiner(
                    &weights,
                    width,
                    &mut self.tapes,
                    &in_idx,
                    out.0 as usize,
                    self.machine,
                    &mut self.counters,
                );
            }
            Node::Sink => {
                let in_edge = in_edge.expect("sink needs an input");
                let in_cost = firing::edge_addr_cost(self.graph, in_edge, true, self.machine);
                let v = firing::fire_sink(
                    &mut self.tapes,
                    in_edge.0 as usize,
                    in_cost,
                    self.machine,
                    &mut self.counters,
                );
                let idx = id.0 as usize;
                match self.sink_outputs.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, vals)) => vals.push(v),
                    None => self.sink_outputs.push((idx, vec![v])),
                }
            }
        }
        Ok(())
    }
}
