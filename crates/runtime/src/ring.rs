//! Bounded lock-free SPSC ring buffer: the inter-core tape segment.
//!
//! One producer worker and one consumer worker share a ring per cut edge.
//! The data path is wait-free on both sides — a single release store of
//! the head or tail index publishes a whole batch (one firing's worth of
//! elements). Head and tail live on separate cache lines so the producer
//! and consumer don't false-share. When the ring is full (producer) or
//! empty (consumer), the stalled side spins briefly, then parks; the peer
//! unparks it on the next batch. Parks use a timeout so an abort raised by
//! a failing worker is always noticed.

use macross_streamir::types::Value;
use macross_telemetry::{EventKind, WorkerTrace};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Bucket count of the occupancy histogram kept per ring.
pub const OCC_BUCKETS: usize = 8;

/// The run was aborted by another worker while this one was blocked on a
/// ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

/// Pad to a cache line so head and tail never share one.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Iterations of `spin_loop` before a stalled side parks.
const SPIN_BUDGET: u32 = 256;
/// Park timeout — bounds abort-detection latency if an unpark is lost.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Bounded single-producer single-consumer ring of tape elements.
pub struct Ring {
    buf: Box<[UnsafeCell<Value>]>,
    mask: usize,
    /// The cut edge this ring carries (trace subject; 0 when standalone).
    edge: u32,
    /// Next slot the consumer reads. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer writes. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Times the producer found the ring full and had to wait.
    full_stalls: AtomicU64,
    /// Times the consumer found the ring empty and had to wait.
    empty_stalls: AtomicU64,
    /// Nanoseconds the producer spent waiting for space.
    full_stall_nanos: AtomicU64,
    /// Nanoseconds the consumer spent waiting for data.
    empty_stall_nanos: AtomicU64,
    /// Highest occupancy ever observed at a publish point.
    high_water: AtomicUsize,
    /// Occupancy histogram, one sample per published batch; bucket `i`
    /// covers occupancies in `[i, i+1) * capacity / OCC_BUCKETS`.
    occ_hist: [AtomicU64; OCC_BUCKETS],
    producer_parked: AtomicBool,
    consumer_parked: AtomicBool,
    producer: Mutex<Option<Thread>>,
    consumer: Mutex<Option<Thread>>,
    /// Fault injection: unparks left to swallow ([`Ring::arm_unpark_drops`]).
    /// Normally 0, in which case the wake paths pay a single relaxed load.
    unpark_drops: AtomicU64,
    /// Unparks actually swallowed (observability for the fault tests).
    unparks_dropped: AtomicU64,
}

// SAFETY: slots are only written by the producer between `tail` publication
// points and only read by the consumer below the published `tail`; the
// acquire/release pair on head/tail orders the accesses.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 8), zero-filled with `fill`.
    pub fn with_capacity(capacity: usize, fill: Value) -> Ring {
        Ring::for_edge(0, capacity, fill)
    }

    /// Like [`Ring::with_capacity`], tagged with the cut edge it carries
    /// so trace events and ring stats can name it.
    pub fn for_edge(edge: u32, capacity: usize, fill: Value) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let buf: Vec<UnsafeCell<Value>> = (0..cap).map(|_| UnsafeCell::new(fill)).collect();
        Ring {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            edge,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            full_stalls: AtomicU64::new(0),
            empty_stalls: AtomicU64::new(0),
            full_stall_nanos: AtomicU64::new(0),
            empty_stall_nanos: AtomicU64::new(0),
            high_water: AtomicUsize::new(0),
            occ_hist: Default::default(),
            producer_parked: AtomicBool::new(false),
            consumer_parked: AtomicBool::new(false),
            producer: Mutex::new(None),
            consumer: Mutex::new(None),
            unpark_drops: AtomicU64::new(0),
            unparks_dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The cut edge this ring was built for.
    pub fn edge(&self) -> u32 {
        self.edge
    }

    /// Register the calling thread as the producer (for unpark).
    pub fn register_producer(&self) {
        *self.producer.lock().unwrap() = Some(std::thread::current());
    }

    /// Register the calling thread as the consumer (for unpark).
    pub fn register_consumer(&self) {
        *self.consumer.lock().unwrap() = Some(std::thread::current());
    }

    /// Times the producer found the ring full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls.load(Ordering::Relaxed)
    }

    /// Times the consumer found the ring empty.
    pub fn empty_stalls(&self) -> u64 {
        self.empty_stalls.load(Ordering::Relaxed)
    }

    /// Nanoseconds the producer spent waiting for space.
    pub fn full_stall_nanos(&self) -> u64 {
        self.full_stall_nanos.load(Ordering::Relaxed)
    }

    /// Nanoseconds the consumer spent waiting for data.
    pub fn empty_stall_nanos(&self) -> u64 {
        self.empty_stall_nanos.load(Ordering::Relaxed)
    }

    /// Highest occupancy observed at any publish point.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Occupancy histogram snapshot (one sample per published batch).
    pub fn occupancy_hist(&self) -> [u64; OCC_BUCKETS] {
        std::array::from_fn(|i| self.occ_hist[i].load(Ordering::Relaxed))
    }

    /// One occupancy sample at a publish point.
    fn sample_occupancy(&self, occupied: usize) {
        self.high_water.fetch_max(occupied, Ordering::Relaxed);
        let bucket = (occupied * OCC_BUCKETS / self.capacity()).min(OCC_BUCKETS - 1);
        self.occ_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Fault injection: swallow the next `n` unparks this ring would have
    /// delivered (either side). The peer's park timeout bounds the extra
    /// latency, so a run under this fault must still complete — the
    /// property the fault differential suite pins down.
    pub fn arm_unpark_drops(&self, n: u64) {
        self.unpark_drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Unparks actually swallowed so far.
    pub fn unparks_dropped(&self) -> u64 {
        self.unparks_dropped.load(Ordering::Relaxed)
    }

    /// True when an armed drop consumed this wakeup.
    fn take_unpark_drop(&self) -> bool {
        if self.unpark_drops.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let took = self
            .unpark_drops
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if took {
            self.unparks_dropped.fetch_add(1, Ordering::Relaxed);
        }
        took
    }

    fn wake_consumer(&self) {
        if self.consumer_parked.swap(false, Ordering::AcqRel) {
            if self.take_unpark_drop() {
                return;
            }
            if let Some(t) = self.consumer.lock().unwrap().as_ref() {
                t.unpark();
            }
        }
    }

    fn wake_producer(&self) {
        if self.producer_parked.swap(false, Ordering::AcqRel) {
            if self.take_unpark_drop() {
                return;
            }
            if let Some(t) = self.producer.lock().unwrap().as_ref() {
                t.unpark();
            }
        }
    }

    /// Producer: append all of `vals`, in chunks as space frees up.
    /// Deadlock-free for any capacity — the consumer always drains what is
    /// visible before it waits, so space eventually appears.
    ///
    /// # Errors
    /// Returns [`Aborted`] if `abort` is raised while waiting for space.
    pub fn push_batch(&self, vals: &[Value], abort: &AtomicBool) -> Result<(), Aborted> {
        self.push_batch_traced(vals, abort, &WorkerTrace::disabled())
    }

    /// [`Ring::push_batch`] with a trace handle: full-ring stalls are
    /// recorded as `RingPushStallBegin`/`End` spans on the producer's
    /// timeline (subject = this ring's edge).
    ///
    /// # Errors
    /// Returns [`Aborted`] if `abort` is raised while waiting for space.
    pub fn push_batch_traced(
        &self,
        vals: &[Value],
        abort: &AtomicBool,
        trace: &WorkerTrace,
    ) -> Result<(), Aborted> {
        let mut written = 0;
        while written < vals.len() {
            let tail = self.tail.0.load(Ordering::Relaxed);
            let head = self.head.0.load(Ordering::Acquire);
            let free = self.capacity() - (tail - head);
            if free == 0 {
                self.full_stalls.fetch_add(1, Ordering::Relaxed);
                trace.record(EventKind::RingPushStallBegin, self.edge, 0);
                let waited = Instant::now();
                let res = self.wait_for_space(tail, abort, trace);
                let ns = waited.elapsed().as_nanos() as u64;
                self.full_stall_nanos.fetch_add(ns, Ordering::Relaxed);
                trace.record(EventKind::RingPushStallEnd, self.edge, ns);
                res?;
                continue;
            }
            let n = free.min(vals.len() - written);
            for i in 0..n {
                // SAFETY: slots in [tail, tail+n) are unpublished; only the
                // producer writes them.
                unsafe {
                    *self.buf[(tail + i) & self.mask].get() = vals[written + i];
                }
            }
            self.tail.0.store(tail + n, Ordering::Release);
            written += n;
            // `head` is a snapshot, so this occupancy is an upper bound;
            // good enough for a histogram and exact for the high-water.
            self.sample_occupancy(tail + n - head);
            self.wake_consumer();
        }
        Ok(())
    }

    fn wait_for_space(
        &self,
        tail: usize,
        abort: &AtomicBool,
        trace: &WorkerTrace,
    ) -> Result<(), Aborted> {
        let full = |s: &Ring| s.capacity() - (tail - s.head.0.load(Ordering::Acquire)) == 0;
        for _ in 0..SPIN_BUDGET {
            if !full(self) {
                return Ok(());
            }
            if abort.load(Ordering::Relaxed) {
                return Err(Aborted);
            }
            std::hint::spin_loop();
        }
        loop {
            self.producer_parked.store(true, Ordering::Release);
            if !full(self) {
                self.producer_parked.store(false, Ordering::Release);
                return Ok(());
            }
            if abort.load(Ordering::Relaxed) {
                self.producer_parked.store(false, Ordering::Release);
                return Err(Aborted);
            }
            trace.record(EventKind::Park, self.edge, 0);
            std::thread::park_timeout(PARK_TIMEOUT);
            trace.record(EventKind::Unpark, self.edge, 0);
        }
    }

    /// Free slots from the producer's perspective (a lower bound: the
    /// consumer may free more concurrently, never less). Producer-side
    /// call, like [`Ring::push_avail`].
    pub fn free_space(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        self.capacity() - (tail - head)
    }

    /// Producer: append as many of `vals` as currently fit, without
    /// blocking. Returns how many were written. Used by the drain after a
    /// failure, where a full ring whose consumer is gone must not wedge
    /// the draining worker.
    pub fn push_avail(&self, vals: &[Value]) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        let n = (self.capacity() - (tail - head)).min(vals.len());
        if n == 0 {
            return 0;
        }
        for (i, v) in vals.iter().take(n).enumerate() {
            // SAFETY: slots in [tail, tail+n) are unpublished; only the
            // producer writes them.
            unsafe {
                *self.buf[(tail + i) & self.mask].get() = *v;
            }
        }
        self.tail.0.store(tail + n, Ordering::Release);
        self.sample_occupancy(tail + n - head);
        self.wake_consumer();
        n
    }

    /// Consumer: drain up to `max` available elements into `sink` without
    /// blocking. Returns how many were taken.
    pub fn pop_avail(&self, mut sink: impl FnMut(Value), max: usize) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Relaxed);
        let avail = (tail - head).min(max);
        for i in 0..avail {
            // SAFETY: slots in [head, tail) are published and not written
            // again until the head advances past them.
            sink(unsafe { *self.buf[(head + i) & self.mask].get() });
        }
        if avail > 0 {
            self.head.0.store(head + avail, Ordering::Release);
            self.wake_producer();
        }
        avail
    }

    /// Consumer: block until at least one element is visible.
    ///
    /// # Errors
    /// Returns [`Aborted`] if `abort` is raised while waiting.
    pub fn wait_nonempty(&self, abort: &AtomicBool) -> Result<(), Aborted> {
        self.wait_nonempty_traced(abort, &WorkerTrace::disabled())
    }

    /// [`Ring::wait_nonempty`] with a trace handle: the empty-ring stall
    /// is recorded as a `RingPopStallBegin`/`End` span on the consumer's
    /// timeline (subject = this ring's edge).
    ///
    /// # Errors
    /// Returns [`Aborted`] if `abort` is raised while waiting.
    pub fn wait_nonempty_traced(
        &self,
        abort: &AtomicBool,
        trace: &WorkerTrace,
    ) -> Result<(), Aborted> {
        self.empty_stalls.fetch_add(1, Ordering::Relaxed);
        trace.record(EventKind::RingPopStallBegin, self.edge, 0);
        let waited = Instant::now();
        let res = self.wait_nonempty_inner(abort, trace);
        let ns = waited.elapsed().as_nanos() as u64;
        self.empty_stall_nanos.fetch_add(ns, Ordering::Relaxed);
        trace.record(EventKind::RingPopStallEnd, self.edge, ns);
        res
    }

    /// Open a consumer-side stall interval: count one empty-ring stall and
    /// emit the trace span begin. Pair with [`Ring::end_empty_stall`]; any
    /// number of [`Ring::wait_nonempty_quiet`] calls may happen in between
    /// without the interval double-counting — the protocol `ensure_inputs`
    /// uses so one insufficient-input episode is exactly one stall, no
    /// matter how many partial arrivals or spurious wakeups it spans.
    pub fn begin_empty_stall(&self, trace: &WorkerTrace) -> Instant {
        self.empty_stalls.fetch_add(1, Ordering::Relaxed);
        trace.record(EventKind::RingPopStallBegin, self.edge, 0);
        Instant::now()
    }

    /// Close a stall interval opened by [`Ring::begin_empty_stall`],
    /// attributing the whole elapsed wall time to this ring.
    pub fn end_empty_stall(&self, since: Instant, trace: &WorkerTrace) {
        let ns = since.elapsed().as_nanos() as u64;
        self.empty_stall_nanos.fetch_add(ns, Ordering::Relaxed);
        trace.record(EventKind::RingPopStallEnd, self.edge, ns);
    }

    /// [`Ring::wait_nonempty`] without opening a stall interval: park and
    /// unpark events are still traced, but the stall counters and nanos
    /// are untouched — the caller owns the interval through
    /// [`Ring::begin_empty_stall`] / [`Ring::end_empty_stall`].
    ///
    /// # Errors
    /// Returns [`Aborted`] if `abort` is raised while waiting.
    pub fn wait_nonempty_quiet(
        &self,
        abort: &AtomicBool,
        trace: &WorkerTrace,
    ) -> Result<(), Aborted> {
        self.wait_nonempty_inner(abort, trace)
    }

    fn wait_nonempty_inner(&self, abort: &AtomicBool, trace: &WorkerTrace) -> Result<(), Aborted> {
        let head = self.head.0.load(Ordering::Relaxed);
        let empty = |s: &Ring| s.tail.0.load(Ordering::Acquire) == head;
        for _ in 0..SPIN_BUDGET {
            if !empty(self) {
                return Ok(());
            }
            if abort.load(Ordering::Relaxed) {
                return Err(Aborted);
            }
            std::hint::spin_loop();
        }
        loop {
            self.consumer_parked.store(true, Ordering::Release);
            if !empty(self) {
                self.consumer_parked.store(false, Ordering::Release);
                return Ok(());
            }
            if abort.load(Ordering::Relaxed) {
                self.consumer_parked.store(false, Ordering::Release);
                return Err(Aborted);
            }
            trace.record(EventKind::Park, self.edge, 0);
            std::thread::park_timeout(PARK_TIMEOUT);
            trace.record(EventKind::Unpark, self.edge, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn iv(x: i32) -> Value {
        Value::I32(x)
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let r = Ring::with_capacity(13, iv(0));
        assert_eq!(r.capacity(), 16);
        assert_eq!(Ring::with_capacity(0, iv(0)).capacity(), 8);
    }

    #[test]
    fn batch_roundtrip_single_thread() {
        let r = Ring::with_capacity(8, iv(0));
        let abort = AtomicBool::new(false);
        r.push_batch(&(0..6).map(iv).collect::<Vec<_>>(), &abort)
            .unwrap();
        let mut got = Vec::new();
        assert_eq!(r.pop_avail(|v| got.push(v), 100), 6);
        assert_eq!(got, (0..6).map(iv).collect::<Vec<_>>());
        assert_eq!(r.pop_avail(|v| got.push(v), 100), 0);
    }

    #[test]
    fn oversized_batch_flows_in_chunks() {
        // Batch larger than capacity: requires a concurrent consumer.
        let r = Arc::new(Ring::with_capacity(8, iv(0)));
        let abort = Arc::new(AtomicBool::new(false));
        let vals: Vec<Value> = (0..1000).map(iv).collect();
        let rc = Arc::clone(&r);
        let ac = Arc::clone(&abort);
        let consumer = std::thread::spawn(move || {
            rc.register_consumer();
            let mut got = Vec::new();
            while got.len() < 1000 {
                if rc.pop_avail(|v| got.push(v), 64) == 0 {
                    rc.wait_nonempty(&ac).unwrap();
                }
            }
            got
        });
        r.register_producer();
        r.push_batch(&vals, &abort).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, vals);
        // 1000 elements through 8 slots: the producer must have stalled,
        // and stall time must have been accounted.
        assert!(r.full_stalls() > 0);
        assert!(r.full_stall_nanos() > 0);
        // Some publish point must have seen the ring completely full.
        assert_eq!(r.high_water(), r.capacity());
    }

    #[test]
    fn occupancy_stats_track_publishes() {
        let r = Ring::for_edge(3, 8, iv(0));
        assert_eq!(r.edge(), 3);
        let abort = AtomicBool::new(false);
        r.push_batch(&(0..6).map(iv).collect::<Vec<_>>(), &abort)
            .unwrap();
        assert_eq!(r.high_water(), 6);
        let hist = r.occupancy_hist();
        assert_eq!(hist.iter().sum::<u64>(), 1);
        // Occupancy 6 of 8 lands in bucket 6*OCC_BUCKETS/8.
        assert_eq!(hist[6 * OCC_BUCKETS / 8], 1);
    }

    #[test]
    fn spsc_stress_preserves_order() {
        let r = Arc::new(Ring::with_capacity(32, iv(0)));
        let abort = Arc::new(AtomicBool::new(false));
        const N: i32 = 100_000;
        let rc = Arc::clone(&r);
        let ac = Arc::clone(&abort);
        let consumer = std::thread::spawn(move || {
            rc.register_consumer();
            let mut next = 0i32;
            while next < N {
                let got = rc.pop_avail(
                    |v| {
                        assert_eq!(v, iv(next));
                        next += 1;
                    },
                    usize::MAX,
                );
                if got == 0 {
                    rc.wait_nonempty(&ac).unwrap();
                }
            }
        });
        r.register_producer();
        let mut k = 0i32;
        while k < N {
            let n = (1 + (k % 17)) as usize;
            let batch: Vec<Value> = (k..(k + n as i32).min(N)).map(iv).collect();
            r.push_batch(&batch, &abort).unwrap();
            k += batch.len() as i32;
        }
        consumer.join().unwrap();
    }

    #[test]
    fn stall_episode_counts_once_across_partial_arrivals() {
        // Consumer needs 3 tokens that arrive in 3 separate pushes. Under
        // the old per-wait accounting this produced up to 3 stall events
        // with disjoint intervals; the episode protocol records exactly
        // one interval covering the whole wait — the monotonic accounting
        // `ensure_inputs` relies on.
        let r = Arc::new(Ring::with_capacity(8, iv(0)));
        let abort = Arc::new(AtomicBool::new(false));
        let rc = Arc::clone(&r);
        let ac = Arc::clone(&abort);
        let consumer = std::thread::spawn(move || {
            rc.register_consumer();
            let trace = WorkerTrace::disabled();
            let mut got = Vec::new();
            let t0 = rc.begin_empty_stall(&trace);
            while got.len() < 3 {
                let want = 3 - got.len();
                if rc.pop_avail(|v| got.push(v), want) == 0 {
                    rc.wait_nonempty_quiet(&ac, &trace).unwrap();
                }
            }
            rc.end_empty_stall(t0, &trace);
            got
        });
        r.register_producer();
        for k in 0..3 {
            std::thread::sleep(Duration::from_millis(2));
            r.push_batch(&[iv(k)], &abort).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), vec![iv(0), iv(1), iv(2)]);
        assert_eq!(r.empty_stalls(), 1);
        assert!(r.empty_stall_nanos() > 0);
    }

    #[test]
    fn abort_unblocks_waiters() {
        let r = Arc::new(Ring::with_capacity(8, iv(0)));
        let abort = Arc::new(AtomicBool::new(false));
        let rc = Arc::clone(&r);
        let ac = Arc::clone(&abort);
        let consumer = std::thread::spawn(move || {
            rc.register_consumer();
            rc.wait_nonempty(&ac)
        });
        std::thread::sleep(Duration::from_millis(20));
        abort.store(true, Ordering::Relaxed);
        assert_eq!(consumer.join().unwrap(), Err(Aborted));
        assert!(r.empty_stalls() > 0);
    }
}
