//! Threaded steady-state runtime for scheduled stream graphs.
//!
//! Where `macross_vm::run_scheduled` interprets the whole graph on one
//! thread, this crate executes the *same* schedule pipeline-parallel: one
//! worker thread per core of a partition (e.g. from
//! `macross_multicore::Partition::lpt`), with every cross-core tape edge
//! bridged by a bounded lock-free SPSC ring ([`ring::Ring`]).
//!
//! The execution model is a Kahn process network specialization: each
//! worker fires its nodes in the global schedule order restricted to its
//! core, blocking on ring reads until enough tokens are visible and on
//! ring writes until space frees. Because every worker preserves its
//! local firing order and rings preserve element order, the threaded run
//! is deterministic and bit-identical to the single-threaded executor —
//! the property the differential test suite pins down for every
//! benchmark graph, scalar and macro-SIMDized.
//!
//! Alongside the outputs, a run produces a [`RuntimeReport`]: per-stage
//! firing and ring-traffic counters, per-edge stall counts, and measured
//! wall-clock per steady iteration, for comparison against the analytic
//! `macross_multicore::CoreEstimate` model.

pub mod fault;
pub mod ring;
pub mod session;
pub mod supervisor;
mod worker;

use macross_sdf::{buffer_requirements, Schedule};
use macross_streamir::analysis::analyze_vectorizability;
use macross_streamir::graph::{Graph, Node, NodeId};
use macross_streamir::types::Value;
use macross_telemetry::TraceSession;
use macross_vm::machine::{CycleCounters, Machine};
use macross_vm::{ExecMode, VmError};
use ring::{Aborted, Ring, OCC_BUCKETS};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use supervisor::Supervisor;
use worker::Worker;

pub use fault::{FaultKind, FaultPlan, FaultSpec, ReplayBundle, FAULTS_COMPILED};
pub use session::{EdgeSig, SessionCarrier, SessionEngine, SessionStatus};
pub use supervisor::{FailureCause, StageFailure, SupervisorOptions};

/// Errors from a threaded run.
#[derive(Debug)]
pub enum RuntimeError {
    /// A filter body failed on some worker.
    Vm(VmError),
    /// `assignment.len()` does not match the graph's node count.
    BadAssignment {
        /// Nodes in the graph.
        expected: usize,
        /// Entries in the assignment.
        got: usize,
    },
    /// A worker thread panicked (runtime bug, not a guest-program error).
    WorkerPanicked(String),
    /// The run aborted without a recorded cause.
    Aborted,
    /// A [`Placement`] violates a fission legality rule (the message names
    /// the node and the rule).
    InvalidPlacement(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Vm(e) => write!(f, "worker failed: {e}"),
            RuntimeError::BadAssignment { expected, got } => {
                write!(
                    f,
                    "assignment has {got} entries for a graph of {expected} nodes"
                )
            }
            RuntimeError::WorkerPanicked(msg) => write!(f, "worker thread panicked: {msg}"),
            RuntimeError::Aborted => write!(f, "run aborted"),
            RuntimeError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for RuntimeError {
    fn from(e: VmError) -> Self {
        RuntimeError::Vm(e)
    }
}

/// Live per-stage counters, shared between the workers and the
/// coordinator. One entry per node, indexed by node id; each node is
/// updated by exactly one worker, so the relaxed atomics are contention
/// free — they exist so the counters can be observed while running.
#[derive(Debug, Default)]
pub struct Stage {
    /// Completed firings.
    pub firings: AtomicU64,
    /// Of those, firings executed inside a batched invocation.
    pub batched_firings: AtomicU64,
    /// Tokens pulled from cross-core rings into this node's input tapes.
    pub ring_in: AtomicU64,
    /// Tokens flushed from this node's output tapes into cross-core rings.
    pub ring_out: AtomicU64,
}

/// Spin barrier between the init schedule and the timed steady phase.
/// Abort-aware so a worker that failed during init cannot strand the
/// others (a `std::sync::Barrier` would).
pub(crate) struct StartGate {
    arrived: AtomicUsize,
    total: usize,
}

impl StartGate {
    pub(crate) fn new(total: usize) -> StartGate {
        StartGate {
            arrived: AtomicUsize::new(0),
            total,
        }
    }

    pub(crate) fn wait(&self, abort: &AtomicBool) -> Result<(), Aborted> {
        self.arrived.fetch_add(1, Ordering::AcqRel);
        while self.arrived.load(Ordering::Acquire) < self.total {
            if abort.load(Ordering::Relaxed) {
                return Err(Aborted);
            }
            std::thread::yield_now();
        }
        Ok(())
    }
}

/// Final per-stage numbers in a [`RuntimeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Node id in the graph.
    pub node: usize,
    /// Human-readable stage name (filter name or node kind).
    pub name: String,
    /// Core the stage ran on.
    pub core: u32,
    /// Completed firings (init + steady).
    pub firings: u64,
    /// Of those, firings executed inside a batched invocation
    /// (scheduling-dependent; excluded from bit-exact comparisons).
    pub batched_firings: u64,
    /// Tokens pulled from cross-core rings.
    pub ring_in: u64,
    /// Tokens pushed to cross-core rings.
    pub ring_out: u64,
    /// Times this stage blocked pushing into a full ring.
    pub full_stalls: u64,
    /// Times this stage blocked pulling from an empty ring.
    pub empty_stalls: u64,
    /// Nanoseconds this stage spent blocked on its rings (full + empty).
    pub stall_nanos: u64,
}

/// Final per-ring numbers in a [`RuntimeReport`], one per cut edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingStat {
    /// Edge id in the graph.
    pub edge: usize,
    /// Producing node id.
    pub src: usize,
    /// Consuming node id.
    pub dst: usize,
    /// Slot count of the ring.
    pub capacity: usize,
    /// Highest occupancy observed at any publish point.
    pub high_water: usize,
    /// Occupancy histogram: one sample per published batch, bucket `i`
    /// covering `[i, i+1) * capacity / OCC_BUCKETS`.
    pub occ_hist: [u64; OCC_BUCKETS],
    /// Times the producer found the ring full.
    pub full_stalls: u64,
    /// Times the consumer found the ring empty.
    pub empty_stalls: u64,
    /// Nanoseconds the producer spent waiting for space.
    pub full_stall_nanos: u64,
    /// Nanoseconds the consumer spent waiting for data.
    pub empty_stall_nanos: u64,
}

/// Measured counters from a threaded run, the empirical counterpart of
/// the analytic `CoreEstimate`.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Worker threads (cores in the assignment).
    pub cores: usize,
    /// Steady iterations executed.
    pub iters: u64,
    /// Cross-core (cut) edges bridged by rings.
    pub cut_edges: usize,
    /// Per-stage counters, indexed by node id.
    pub stages: Vec<StageStats>,
    /// Per-ring occupancy and stall numbers, one per cut edge.
    pub rings: Vec<RingStat>,
    /// Steady-loop wall nanoseconds per core (0 for cores with no nodes).
    pub core_nanos: Vec<u64>,
    /// Slowest core's steady-loop nanoseconds — the measured makespan.
    pub wall_nanos: u64,
    /// Modelled cycles per core (steady phase), from the interpreter's
    /// cost accounting.
    pub core_modelled: Vec<CycleCounters>,
    /// Stage failures recorded by the supervisor, in the order they were
    /// raised. Empty for a clean run; the first entry is the root cause
    /// (later entries are secondary failures hit while draining, or
    /// further watchdog escalations).
    pub failures: Vec<StageFailure>,
}

impl RuntimeReport {
    /// Measured wall nanoseconds per steady iteration.
    pub fn nanos_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.wall_nanos as f64 / self.iters as f64
        }
    }

    /// Modelled cycles of the slowest core — the analytic makespan this
    /// run should be compared against.
    pub fn modelled_makespan(&self) -> u64 {
        self.core_modelled
            .iter()
            .map(CycleCounters::total)
            .max()
            .unwrap_or(0)
    }

    /// Total tokens that crossed core boundaries.
    pub fn ring_traffic(&self) -> u64 {
        self.stages.iter().map(|s| s.ring_out).sum()
    }

    /// Total ring stall events (full + empty) across all stages.
    pub fn total_stalls(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.full_stalls + s.empty_stalls)
            .sum()
    }

    /// Total nanoseconds workers spent blocked on rings (both sides).
    pub fn total_stall_nanos(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.full_stall_nanos + r.empty_stall_nanos)
            .sum()
    }

    /// The first failure raised — the root cause, if the run failed.
    pub fn root_failure(&self) -> Option<&StageFailure> {
        self.failures.first()
    }
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// All sink outputs concatenated in node-id order — the same order as
    /// `macross_vm::RunResult::output`, so the two are directly
    /// comparable.
    pub output: Vec<Value>,
    /// Per-sink outputs, indexed by node id (empty for non-sinks).
    pub outputs: Vec<Vec<Value>>,
    /// Measured counters.
    pub report: RuntimeReport,
}

/// Result of a supervised run ([`run_supervised`]): always carries the
/// output produced so far, even when the run failed.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// All sink outputs concatenated in node-id order. For a failed run
    /// this is the committed partial output: each sink's stream is a
    /// prefix of what a clean run would have produced.
    pub output: Vec<Value>,
    /// Per-sink outputs, indexed by node id (empty for non-sinks).
    pub outputs: Vec<Vec<Value>>,
    /// Measured counters, including `failures`.
    pub report: RuntimeReport,
    /// True when every scheduled firing completed (no failures).
    pub completed: bool,
}

fn stage_name(node: &Node) -> String {
    match node {
        Node::Filter(f) => f.name.clone(),
        Node::Splitter(_) => "splitter".to_string(),
        Node::Joiner(_) => "joiner".to_string(),
        Node::HSplitter { .. } => "hsplitter".to_string(),
        Node::HJoiner { .. } => "hjoiner".to_string(),
        Node::Sink => "sink".to_string(),
    }
}

/// One fissioned stage: its steady firings are dealt round-robin across
/// `replicas` (global steady firing `g` runs on `replicas[g % k]`), with
/// tokens dealt to / merged from one SPSC ring per replica in firing-block
/// order — so the merged stream is bit-identical to the sequential one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FissionSpec {
    /// The stage being split. Must be a stateless filter (see
    /// [`Placement::validate`] for the full legality rules).
    pub node: NodeId,
    /// Cores hosting the replicas, in deal order. At least two, all
    /// distinct; `assignment[node]` must equal `replicas[0]`.
    pub replicas: Vec<u32>,
}

/// A full multicore placement: the per-node core assignment plus any
/// fissioned stages. [`run_supervised`] is the `fission: []` special case.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    /// Node id -> core, as in [`run_supervised`].
    pub assignment: Vec<u32>,
    /// Stages split across cores (empty for plain placements).
    pub fission: Vec<FissionSpec>,
}

impl Placement {
    /// A plain whole-stage placement with no fission.
    pub fn whole_stage(assignment: Vec<u32>) -> Placement {
        Placement {
            assignment,
            fission: Vec::new(),
        }
    }

    /// The fission spec covering `node`, if any.
    pub fn fission_of(&self, node: NodeId) -> Option<&FissionSpec> {
        self.fission.iter().find(|s| s.node == node)
    }

    /// Worker threads this placement needs (max named core + 1).
    pub fn cores(&self) -> usize {
        let a = self.assignment.iter().copied().max().unwrap_or(0);
        let f = self
            .fission
            .iter()
            .flat_map(|s| s.replicas.iter().copied())
            .max()
            .unwrap_or(0);
        a.max(f) as usize + 1
    }

    /// Check the placement against `graph` and `schedule`.
    ///
    /// Fission legality (each rule keeps the dealt/merged streams
    /// bit-identical to the sequential schedule):
    ///
    /// - the node is a filter with no state written in `work`
    ///   (read-only state is fine — every replica initializes it
    ///   identically), so firings are independent;
    /// - `peek <= pop`: a firing addresses only its own dealt block,
    ///   never a successor's tokens;
    /// - `init_reps == 0`: the deal clock starts at steady firing 0;
    /// - no reorder marking on its edges (the ring must carry committed
    ///   physical order, and reorder halves assume one consumer);
    /// - neighbors are not fissioned (one deal/merge per edge);
    /// - at least two distinct replica cores, and `assignment[node] ==
    ///   replicas[0]` (the canonical core for stage attribution).
    ///
    /// # Errors
    /// [`RuntimeError::BadAssignment`] / [`RuntimeError::InvalidPlacement`].
    pub fn validate(&self, graph: &Graph, schedule: &Schedule) -> Result<(), RuntimeError> {
        if self.assignment.len() != graph.node_count() {
            return Err(RuntimeError::BadAssignment {
                expected: graph.node_count(),
                got: self.assignment.len(),
            });
        }
        let bad = |msg: String| Err(RuntimeError::InvalidPlacement(msg));
        for spec in &self.fission {
            let idx = spec.node.0 as usize;
            if idx >= graph.node_count() {
                return bad(format!("fission node {idx} out of range"));
            }
            if self.fission.iter().filter(|s| s.node == spec.node).count() > 1 {
                return bad(format!("node {idx} fissioned twice"));
            }
            if spec.replicas.len() < 2 {
                return bad(format!("node {idx}: fission needs >= 2 replicas"));
            }
            for (i, &c) in spec.replicas.iter().enumerate() {
                if spec.replicas[..i].contains(&c) {
                    return bad(format!("node {idx}: duplicate replica core {c}"));
                }
            }
            if self.assignment[idx] != spec.replicas[0] {
                return bad(format!(
                    "node {idx}: assignment[{idx}] must equal replicas[0]"
                ));
            }
            let Node::Filter(f) = graph.node(spec.node) else {
                return bad(format!("node {idx}: only filters can be fissioned"));
            };
            if analyze_vectorizability(f).stateful {
                return bad(format!("node {idx} ({}): stateful filter", f.name));
            }
            if f.peek > f.pop {
                return bad(format!(
                    "node {idx} ({}): peek {} > pop {} carries lookahead across firings",
                    f.name, f.peek, f.pop
                ));
            }
            if schedule.init_reps[idx] != 0 {
                return bad(format!(
                    "node {idx} ({}): fires in the init schedule",
                    f.name
                ));
            }
            for eid in graph
                .in_edges(spec.node)
                .into_iter()
                .chain(graph.out_edges(spec.node))
            {
                let e = graph.edge(eid);
                if e.reorder.is_some() {
                    return bad(format!(
                        "node {idx} ({}): edge {} carries a reorder marking",
                        f.name, eid.0
                    ));
                }
                let peer = if e.src == spec.node { e.dst } else { e.src };
                if self.fission_of(peer).is_some() {
                    return bad(format!(
                        "node {idx} ({}): neighbor {} is also fissioned",
                        f.name, peer.0
                    ));
                }
            }
        }
        Ok(())
    }
}

/// How one edge's tokens travel between cores.
pub(crate) enum EdgeRings {
    /// Same-core edge: plain local tape, no ring.
    Local,
    /// Ordinary cut edge: one SPSC ring.
    Single(Arc<Ring>),
    /// An endpoint is fissioned: one ring per replica — deal rings when
    /// the consumer is fissioned, merge rings when the producer is.
    Fission(Vec<Arc<Ring>>),
}

/// Execute `iters` steady iterations of a scheduled graph across worker
/// threads, one per core of `assignment` (node id -> core).
///
/// Within a core, nodes fire in the global schedule order via the same
/// interpreter primitives as the single-threaded executor; cross-core
/// edges stream through bounded SPSC rings sized from the schedule's
/// [`buffer_requirements`]. The init schedule runs before timing starts;
/// sink outputs and modelled cycle counters cover the steady phase
/// exactly like `run_scheduled`.
///
/// # Errors
/// [`RuntimeError::BadAssignment`] for a malformed assignment, and any
/// [`VmError`] a filter raises on a worker (the other workers are aborted
/// and joined).
pub fn run_threaded(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    assignment: &[u32],
    iters: u64,
) -> Result<ThreadedRun, RuntimeError> {
    run_threaded_traced(
        graph,
        schedule,
        machine,
        assignment,
        iters,
        &TraceSession::disabled(),
    )
}

/// [`run_threaded`] with an explicit execution engine ([`ExecMode`]) for
/// the filter work functions on every worker, instead of the build's
/// default. Used by the differential suite to pit the bytecode engine
/// against the tree-walking oracle inside the same binary.
///
/// # Errors
/// Same as [`run_threaded`].
pub fn run_threaded_mode(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    assignment: &[u32],
    iters: u64,
    mode: ExecMode,
) -> Result<ThreadedRun, RuntimeError> {
    run_threaded_traced_mode(
        graph,
        schedule,
        machine,
        assignment,
        iters,
        &TraceSession::disabled(),
        mode,
    )
}

/// [`run_threaded`] with a live trace session: each worker records firing
/// spans, ring stalls, and park/unpark events into the session's per-core
/// event ring (core id = trace worker index = Chrome `tid`). With the
/// `telemetry` feature off, or a [`TraceSession::disabled`] session, the
/// hooks compile to (or short-circuit into) nothing and the run is
/// behaviorally identical to [`run_threaded`].
///
/// # Errors
/// Same as [`run_threaded`].
pub fn run_threaded_traced(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    assignment: &[u32],
    iters: u64,
    session: &TraceSession,
) -> Result<ThreadedRun, RuntimeError> {
    run_threaded_traced_mode(
        graph,
        schedule,
        machine,
        assignment,
        iters,
        session,
        ExecMode::default(),
    )
}

/// [`run_threaded_traced`] with an explicit execution engine for the
/// filter work functions, combining tracing and engine selection.
///
/// # Errors
/// Same as [`run_threaded`].
pub fn run_threaded_traced_mode(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    assignment: &[u32],
    iters: u64,
    session: &TraceSession,
    mode: ExecMode,
) -> Result<ThreadedRun, RuntimeError> {
    run_threaded_placed_traced_mode(
        graph,
        schedule,
        machine,
        &Placement::whole_stage(assignment.to_vec()),
        iters,
        session,
        mode,
    )
}

/// [`run_threaded`] generalized to a full [`Placement`] (assignment plus
/// fissioned stages). The cost-model planner in `macross-multicore`
/// produces placements for this entry point.
///
/// # Errors
/// Same as [`run_threaded`], plus [`RuntimeError::InvalidPlacement`] for
/// an illegal fission spec.
pub fn run_threaded_placed(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    placement: &Placement,
    iters: u64,
) -> Result<ThreadedRun, RuntimeError> {
    run_threaded_placed_traced_mode(
        graph,
        schedule,
        machine,
        placement,
        iters,
        &TraceSession::disabled(),
        ExecMode::default(),
    )
}

/// [`run_threaded_placed`] with a trace session and an explicit engine.
///
/// # Errors
/// Same as [`run_threaded_placed`].
pub fn run_threaded_placed_traced_mode(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    placement: &Placement,
    iters: u64,
    session: &TraceSession,
    mode: ExecMode,
) -> Result<ThreadedRun, RuntimeError> {
    let opts = SupervisorOptions {
        mode,
        ..SupervisorOptions::default()
    };
    let run = run_supervised_placed(graph, schedule, machine, placement, iters, &opts, session)?;
    if run.completed {
        return Ok(ThreadedRun {
            output: run.output,
            outputs: run.outputs,
            report: run.report,
        });
    }
    // Legacy error surface: the root-cause VM error wins, then a panic,
    // then a bare abort (watchdog escalations cannot happen here — the
    // legacy entry points never configure one).
    let failures = run.report.failures;
    if let Some(e) = failures.iter().find_map(|f| match &f.cause {
        FailureCause::Vm(e) => Some(e.clone()),
        _ => None,
    }) {
        return Err(RuntimeError::Vm(e));
    }
    if let Some(msg) = failures.iter().find_map(|f| match &f.cause {
        FailureCause::Panic(msg) => Some(msg.clone()),
        _ => None,
    }) {
        return Err(RuntimeError::WorkerPanicked(msg));
    }
    Err(RuntimeError::Aborted)
}

/// Pipeline slack: how many steady iterations of an edge its ring can
/// hold (`MACROSS_RING_SLACK`, default 8, clamped to [1, 64]).
///
/// Slack 1 reproduces the strict one-iteration sizing; larger values buy
/// wall-clock (stages overlap across iterations and every park/unpark is
/// amortized over `slack` iterations) for memory, without affecting
/// outputs: firing order per stage, deal/merge rotation, and fault
/// addressing are all capacity-independent.
///
/// Public because the multicore planner's communication-cost calibration
/// amortizes its measured handshake cost by the same factor.
pub fn ring_slack() -> u64 {
    static SLACK: OnceLock<u64> = OnceLock::new();
    *SLACK.get_or_init(|| {
        std::env::var("MACROSS_RING_SLACK")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|v| v.clamp(1, 64))
            .unwrap_or(8)
    })
}

/// The full-fidelity entry point: execute `iters` steady iterations under
/// supervision and *always* return the (possibly partial) output plus a
/// report whose `failures` list types every stage failure.
///
/// This is [`run_threaded`]'s engine. On top of it, supervision adds:
///
/// - every firing runs inside `catch_unwind` under a heartbeat, so a
///   panicking or erroring stage becomes a [`StageFailure`] instead of a
///   process abort or a wedged pipeline;
/// - an optional watchdog thread ([`SupervisorOptions::watchdog`])
///   escalates any single firing that exceeds its timeout;
/// - after the first failure, workers coordinate a drain: stages
///   upstream of the failure park, everything else finishes what is
///   already buffered, and committed sink output is preserved;
/// - a [`fault::FaultPlan`] can deterministically inject faults at exact
///   `(stage, firing)` coordinates when built with `fault-inject` (the
///   plan is inert otherwise — see [`FAULTS_COMPILED`]).
///
/// # Errors
/// Only [`RuntimeError::BadAssignment`]. Stage failures are *not* errors
/// here: they come back inside the report.
pub fn run_supervised(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    assignment: &[u32],
    iters: u64,
    opts: &SupervisorOptions,
    session: &TraceSession,
) -> Result<SupervisedRun, RuntimeError> {
    run_supervised_placed(
        graph,
        schedule,
        machine,
        &Placement::whole_stage(assignment.to_vec()),
        iters,
        opts,
        session,
    )
}

/// [`run_supervised`] generalized to a full [`Placement`]: besides the
/// node-to-core assignment, stages named in `placement.fission` are split
/// across replica cores. Steady firing `g` of a fissioned stage runs on
/// `replicas[g % k]`; its input tokens are dealt to one ring per replica
/// in pop-rate blocks and its output merged back in push-rate blocks, so
/// the downstream consumer observes the exact sequential stream.
///
/// # Errors
/// [`RuntimeError::BadAssignment`] / [`RuntimeError::InvalidPlacement`]
/// for a malformed placement. Stage failures come back inside the report.
pub fn run_supervised_placed(
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    placement: &Placement,
    iters: u64,
    opts: &SupervisorOptions,
    session: &TraceSession,
) -> Result<SupervisedRun, RuntimeError> {
    placement.validate(graph, schedule)?;
    let assignment = &placement.assignment;
    let cores = placement.cores();
    // Rings bridge cut edges, sized to `ring_slack()` steady iterations
    // of the edge so a producer can run several iterations ahead before
    // backpressure. With exactly one iteration of capacity, a cut edge
    // serializes the pipeline: the producer fills the ring, parks, the
    // consumer drains it, parks, and every iteration pays at least one
    // park/unpark round trip per edge — multicore can't win. Slack lets
    // the stages drift apart and amortizes every wake-up over `slack`
    // iterations; growing a ring can never introduce deadlock. The floor
    // is the larger of the steady-iteration capacity and the init-phase
    // resident count: the node-major init schedule has a producer
    // complete ALL init firings before its consumer's first, so
    // init_reps[src] * push tokens are simultaneously live — possibly
    // more than the steady capacity (deep peeking pipelines do this), and
    // undersized rings can deadlock a cyclic cross-core wait.
    //
    // Fission edges get one ring per replica, each at the full edge
    // capacity: a ring only ever holds its rotation share of the edge's
    // tokens, so this over-provision can never deadlock, and it keeps the
    // per-ring bound independent of how the deal divides an iteration.
    let reqs = buffer_requirements(graph, schedule);
    let rings: Vec<EdgeRings> = graph
        .edges()
        .map(|(eid, e)| {
            let init_peak = schedule.init_reps[e.src.0 as usize]
                * graph.node(e.src).push_rate(e.src_port) as u64;
            let req = &reqs[eid.0 as usize];
            let steady = req.capacity - req.init_tokens;
            let cap = (req.init_tokens + ring_slack() * steady)
                .max(req.capacity)
                .max(init_peak) as usize;
            let mk = || Arc::new(Ring::for_edge(eid.0, cap, e.elem.zero()));
            if let Some(spec) = placement.fission_of(e.dst).or(placement.fission_of(e.src)) {
                EdgeRings::Fission((0..spec.replicas.len()).map(|_| mk()).collect())
            } else if assignment[e.src.0 as usize] != assignment[e.dst.0 as usize] {
                EdgeRings::Single(mk())
            } else {
                EdgeRings::Local
            }
        })
        .collect();
    let cut_edges = rings
        .iter()
        .filter(|r| !matches!(r, EdgeRings::Local))
        .count();
    let stages: Arc<Vec<Stage>> =
        Arc::new((0..graph.node_count()).map(|_| Stage::default()).collect());
    let worker_cores: Vec<u32> = {
        let mut seen = vec![false; cores];
        for &c in assignment {
            seen[c as usize] = true;
        }
        for spec in &placement.fission {
            for &c in &spec.replicas {
                seen[c as usize] = true;
            }
        }
        (0..cores as u32).filter(|&c| seen[c as usize]).collect()
    };
    let sup = Supervisor::new(worker_cores.len());
    let gate = StartGate::new(worker_cores.len());

    let mut results: Vec<(u32, Option<worker::WorkerOut>)> = Vec::with_capacity(worker_cores.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = worker_cores
            .iter()
            .enumerate()
            .map(|(slot, &core)| {
                let stages = Arc::clone(&stages);
                let (rings, gate, sup) = (&rings, &gate, &sup);
                let trace = session.worker(core as usize);
                let h = s.spawn(move || {
                    // The worker catches firing panics itself; this outer
                    // net only catches harness bugs (so a buggy runtime
                    // still cannot strand sibling workers on the gate).
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        let w = Worker::new(
                            graph, schedule, machine, placement, core, rings, stages, trace, opts,
                            sup, slot, iters,
                        );
                        w.run(iters, gate)
                    }));
                    match run {
                        Ok(out) => Some(out),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "unknown panic".to_string());
                            sup.raise(StageFailure {
                                stage: usize::MAX,
                                name: format!("worker {core}"),
                                core,
                                firing: 0,
                                mode: opts.mode,
                                cause: FailureCause::Panic(msg),
                            });
                            None
                        }
                    }
                });
                (core, h)
            })
            .collect();
        let watchdog = opts.wants_watchdog().then(|| {
            let sup = &sup;
            let worker_cores = &worker_cores;
            let stage_names: Vec<String> = graph.nodes().map(|(_, n)| stage_name(n)).collect();
            s.spawn(move || sup.run_watchdog(opts, worker_cores, &stage_names))
        });
        for (core, h) in handles {
            // The spawned closure never panics: the body is wrapped in
            // catch_unwind, so join() only fails on harness bugs.
            results.push((core, h.join().expect("worker wrapper panicked")));
        }
        sup.finish();
        if let Some(w) = watchdog {
            w.join().expect("watchdog panicked");
        }
    });

    let failures = sup.take_failures();
    let finished: Vec<(u32, worker::WorkerOut)> = results
        .into_iter()
        .filter_map(|(core, r)| r.map(|out| (core, out)))
        .collect();

    let mut outputs: Vec<Vec<Value>> = vec![Vec::new(); graph.node_count()];
    let mut core_nanos = vec![0u64; cores];
    let mut core_modelled = vec![CycleCounters::default(); cores];
    for (core, out) in finished {
        for (node, vals) in out.sink_outputs {
            outputs[node] = vals;
        }
        core_nanos[core as usize] = out.steady_nanos;
        core_modelled[core as usize] = out.modelled;
    }
    let wall_nanos = core_nanos.iter().copied().max().unwrap_or(0);

    let mut stage_stats: Vec<StageStats> = graph
        .nodes()
        .map(|(id, node)| {
            let i = id.0 as usize;
            StageStats {
                node: i,
                name: stage_name(node),
                core: assignment[i],
                firings: stages[i].firings.load(Ordering::Relaxed),
                batched_firings: stages[i].batched_firings.load(Ordering::Relaxed),
                ring_in: stages[i].ring_in.load(Ordering::Relaxed),
                ring_out: stages[i].ring_out.load(Ordering::Relaxed),
                full_stalls: 0,
                empty_stalls: 0,
                stall_nanos: 0,
            }
        })
        .collect();
    let mut ring_stats: Vec<RingStat> = Vec::with_capacity(cut_edges);
    for (eid, e) in graph.edges() {
        let physical: &[Arc<Ring>] = match &rings[eid.0 as usize] {
            EdgeRings::Local => &[],
            EdgeRings::Single(ring) => std::slice::from_ref(ring),
            EdgeRings::Fission(rs) => rs,
        };
        for ring in physical {
            stage_stats[e.src.0 as usize].full_stalls += ring.full_stalls();
            stage_stats[e.dst.0 as usize].empty_stalls += ring.empty_stalls();
            stage_stats[e.src.0 as usize].stall_nanos += ring.full_stall_nanos();
            stage_stats[e.dst.0 as usize].stall_nanos += ring.empty_stall_nanos();
            ring_stats.push(RingStat {
                edge: eid.0 as usize,
                src: e.src.0 as usize,
                dst: e.dst.0 as usize,
                capacity: ring.capacity(),
                high_water: ring.high_water(),
                occ_hist: ring.occupancy_hist(),
                full_stalls: ring.full_stalls(),
                empty_stalls: ring.empty_stalls(),
                full_stall_nanos: ring.full_stall_nanos(),
                empty_stall_nanos: ring.empty_stall_nanos(),
            });
        }
    }

    let output = outputs.iter().flatten().copied().collect();
    let completed = failures.is_empty();
    Ok(SupervisedRun {
        output,
        outputs,
        report: RuntimeReport {
            cores,
            iters,
            cut_edges,
            stages: stage_stats,
            rings: ring_stats,
            core_nanos,
            wall_nanos,
            core_modelled,
            failures,
        },
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    /// counter -> tripler -> sink, for splitting across cores.
    fn chain() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let mut scale = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::I32);
        scale.work(|b| {
            b.push(pop() * 3i32);
        });
        StreamSpec::pipeline(vec![src.build_spec(), scale.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    #[test]
    fn bad_assignment_is_rejected() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let err = run_threaded(&g, &sched, &Machine::core_i7(), &[0, 1], 4).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::BadAssignment {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn two_core_chain_matches_single_threaded() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let seq = macross_vm::run_scheduled(&g, &sched, &m, 8).unwrap();
        let thr = run_threaded(&g, &sched, &m, &[0, 1, 1], 8).unwrap();
        assert_eq!(thr.output, seq.output);
        assert_eq!(thr.report.cores, 2);
        assert_eq!(thr.report.cut_edges, 1);
        // src fired 8 steady times and shipped every token cross-core.
        assert_eq!(thr.report.stages[0].firings, 8);
        assert_eq!(thr.report.stages[0].ring_out, 8);
        assert_eq!(thr.report.stages[1].ring_in, 8);
        // Modelled cycles are partitioned, not duplicated.
        let total: u64 = thr
            .report
            .core_modelled
            .iter()
            .map(CycleCounters::total)
            .sum();
        assert_eq!(total, seq.counters.total());
    }

    #[test]
    fn single_core_threaded_matches_single_threaded() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let seq = macross_vm::run_scheduled(&g, &sched, &m, 5).unwrap();
        let thr = run_threaded(&g, &sched, &m, &[0, 0, 0], 5).unwrap();
        assert_eq!(thr.output, seq.output);
        assert_eq!(thr.report.cut_edges, 0);
        assert_eq!(thr.report.ring_traffic(), 0);
        assert!(thr.report.rings.is_empty());
        assert_eq!(thr.report.total_stall_nanos(), 0);
    }

    #[test]
    fn report_carries_ring_stats() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let thr = run_threaded(&g, &sched, &Machine::core_i7(), &[0, 1, 1], 16).unwrap();
        assert_eq!(thr.report.rings.len(), 1);
        let rs = &thr.report.rings[0];
        assert_eq!((rs.src, rs.dst), (0, 1));
        assert!(rs.capacity >= 8);
        // 16 steady + init publishes: samples must have landed somewhere.
        assert!(rs.occ_hist.iter().sum::<u64>() > 0);
        assert!(rs.high_water >= 1);
        assert!(rs.high_water <= rs.capacity);
    }

    #[test]
    fn per_iteration_ratios_guard_zero_iters() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let thr = run_threaded(&g, &sched, &Machine::core_i7(), &[0, 1, 1], 0).unwrap();
        assert_eq!(thr.report.iters, 0);
        let ns = thr.report.nanos_per_iter();
        assert!(ns.is_finite());
        assert_eq!(ns, 0.0);
    }

    /// Without the `telemetry` feature the traced entry point must accept
    /// any session, record nothing, and stay bit-identical.
    #[test]
    fn traced_run_with_inert_session_is_identical() {
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let seq = macross_vm::run_scheduled(&g, &sched, &m, 8).unwrap();
        let session = TraceSession::new(2, 1 << 12);
        let thr = run_threaded_traced(&g, &sched, &m, &[0, 1, 1], 8, &session).unwrap();
        assert_eq!(thr.output, seq.output);
        if cfg!(feature = "telemetry") {
            // Each worker records at least its firing spans.
            assert!(!session.drain().is_empty());
        } else {
            assert!(session.drain().is_empty());
        }
    }

    /// counter (push 4) -> doubler (stateless, pop 1 push 1) -> sink:
    /// the doubler runs 4 firings per iteration, enough for a 2-way
    /// fission to actually rotate deal/merge blocks mid-iteration.
    fn fissionable_chain() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 4, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            for _ in 0..4 {
                b.push(v(n));
                b.set(n, v(n) + 1i32);
            }
        });
        let mut dbl = FilterBuilder::new("dbl", 1, 1, 1, ScalarTy::I32);
        dbl.work(|b| {
            b.push(pop() * 2i32);
        });
        StreamSpec::pipeline(vec![src.build_spec(), dbl.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    #[test]
    fn fissioned_stage_matches_single_threaded() {
        let g = fissionable_chain();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let seq = macross_vm::run_scheduled(&g, &sched, &m, 8).unwrap();
        let placement = Placement {
            assignment: vec![0, 1, 0],
            fission: vec![FissionSpec {
                node: NodeId(1),
                replicas: vec![1, 2],
            }],
        };
        let thr = run_threaded_placed(&g, &sched, &m, &placement, 8).unwrap();
        assert_eq!(thr.output, seq.output);
        assert_eq!(thr.report.cores, 3);
        // Both fission edges are cut (2 rings each); replicas split the
        // 8 * 4 steady firings between them while the shared stage
        // counter still reads the sequential total.
        assert_eq!(thr.report.stages[1].firings, 32);
        assert_eq!(thr.report.stages[1].ring_in, 32);
        assert_eq!(thr.report.stages[1].ring_out, 32);
        assert_eq!(thr.report.rings.len(), 4);
    }

    #[test]
    fn fission_of_stateful_stage_is_rejected() {
        let g = fissionable_chain();
        let sched = Schedule::compute(&g).unwrap();
        let placement = Placement {
            assignment: vec![0, 0, 0],
            fission: vec![FissionSpec {
                node: NodeId(0), // the counter: carries state across firings
                replicas: vec![0, 1],
            }],
        };
        let err = run_threaded_placed(&g, &sched, &Machine::core_i7(), &placement, 4).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidPlacement(_)));
    }

    #[test]
    fn fission_needs_two_distinct_replicas() {
        let g = fissionable_chain();
        let sched = Schedule::compute(&g).unwrap();
        let placement = Placement {
            assignment: vec![0, 1, 0],
            fission: vec![FissionSpec {
                node: NodeId(1),
                replicas: vec![1, 1],
            }],
        };
        let err = run_threaded_placed(&g, &sched, &Machine::core_i7(), &placement, 4).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidPlacement(_)));
    }

    #[test]
    fn stall_episodes_bounded_by_consumer_firings() {
        // gobble needs 4 tokens per firing that trickle in from a
        // cross-core src pushing 1 per firing. The episode protocol
        // opens at most one stall interval per insufficient-input wait,
        // so `empty_stalls` is bounded by gobble's firing count even
        // though each episode can span several partial arrivals.
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let mut gob = FilterBuilder::new("gobble", 4, 4, 1, ScalarTy::I32);
        gob.work(|b| {
            b.push(pop() + pop() + pop() + pop());
        });
        let g = StreamSpec::pipeline(vec![src.build_spec(), gob.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let sched = Schedule::compute(&g).unwrap();
        let m = Machine::core_i7();
        let iters = 50;
        let seq = macross_vm::run_scheduled(&g, &sched, &m, iters).unwrap();
        let thr = run_threaded(&g, &sched, &m, &[0, 1, 1], iters).unwrap();
        assert_eq!(thr.output, seq.output);
        let gob_firings = thr.report.stages[1].firings;
        let ring = thr
            .report
            .rings
            .iter()
            .find(|r| (r.src, r.dst) == (0, 1))
            .unwrap();
        assert!(
            ring.empty_stalls <= gob_firings,
            "{} stall episodes for {} consumer firings",
            ring.empty_stalls,
            gob_firings
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn traced_run_records_firing_spans_per_core() {
        use macross_telemetry::EventKind;
        let g = chain();
        let sched = Schedule::compute(&g).unwrap();
        let session = TraceSession::new(2, 1 << 14);
        let thr =
            run_threaded_traced(&g, &sched, &Machine::core_i7(), &[0, 1, 1], 8, &session).unwrap();
        let events = session.drain();
        // Core 0 fired src 8 times: exactly 8 start/end pairs on worker 0.
        let starts0 = events
            .iter()
            .filter(|(w, e)| *w == 0 && e.kind == EventKind::FiringStart)
            .count();
        assert_eq!(starts0, 8);
        // Both cores contributed events, and no event subject is out of
        // range of the graph's nodes or edges.
        assert!(events.iter().any(|(w, _)| *w == 1));
        // The run itself is unaffected by recording.
        assert_eq!(thr.report.stages[0].firings, 8);
    }
}
