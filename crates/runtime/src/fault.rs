//! Deterministic fault injection: a seeded, schedule-addressable plan of
//! failures to provoke, plus the [`ReplayBundle`] that makes any failure
//! reproducible with one command.
//!
//! A fault is addressed by *(stage, firing index)* where the firing index
//! counts that stage's firings from zero across the init **and** steady
//! phases on whichever worker hosts it. Because each stage fires on
//! exactly one worker and every worker preserves its local schedule
//! order, the address is deterministic across runs regardless of thread
//! interleaving — the property that lets a `ReplayBundle` reproduce the
//! identical `StageFailure`.
//!
//! The lookup hook ([`FaultPlan::fault_for`]) is compiled to a constant
//! `None` unless the `fault-inject` cargo feature is on, so production
//! builds carry no branch in the firing loop.

use macross_telemetry::json::{self, Json};

/// What to do to the addressed firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic mid-firing (exercises the `catch_unwind` supervision path).
    Panic,
    /// Stall the firing for this many nanoseconds before running it
    /// (cooperative: the stall polls the supervisor so an escalated
    /// worker can still be collected). Stalls shorter than the watchdog
    /// timeout are pure latency; longer ones become watchdog failures.
    StallFiring {
        /// Stall length in nanoseconds.
        nanos: u64,
    },
    /// Delay the post-firing ring flush by this many nanoseconds —
    /// backpressure robustness, not a failure: the run must still
    /// complete bit-identically.
    DelayPush {
        /// Delay length in nanoseconds.
        nanos: u64,
    },
    /// Swallow the next `count` unparks on the stage's cut out-edges.
    /// The park timeout bounds the lost-wakeup latency, so the run must
    /// still complete bit-identically.
    DropUnpark {
        /// How many wakeups to swallow per out-edge ring.
        count: u32,
    },
    /// Poison the stage's input tape before the firing; the firing is
    /// then refused with `VmError::Poisoned`.
    PoisonTape,
}

impl FaultKind {
    /// Stable label used in replay bundles and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::StallFiring { .. } => "stall_firing",
            FaultKind::DelayPush { .. } => "delay_push",
            FaultKind::DropUnpark { .. } => "drop_unpark",
            FaultKind::PoisonTape => "poison_tape",
        }
    }

    /// True when the fault must end in a clean [`crate::StageFailure`]
    /// (as opposed to the robustness faults the run must absorb).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FaultKind::Panic | FaultKind::PoisonTape | FaultKind::StallFiring { .. }
        )
    }

    fn to_json(self) -> Json {
        let mut fields = vec![("kind", Json::Str(self.label().into()))];
        match self {
            FaultKind::StallFiring { nanos } | FaultKind::DelayPush { nanos } => {
                fields.push(("nanos", Json::Num(nanos as f64)));
            }
            FaultKind::DropUnpark { count } => {
                fields.push(("count", Json::Num(count as f64)));
            }
            FaultKind::Panic | FaultKind::PoisonTape => {}
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<FaultKind, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("fault needs a \"kind\" string")?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_num)
                .filter(|n| *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("fault kind {kind} needs a non-negative \"{key}\""))
        };
        match kind {
            "panic" => Ok(FaultKind::Panic),
            "stall_firing" => Ok(FaultKind::StallFiring {
                nanos: num("nanos")?,
            }),
            "delay_push" => Ok(FaultKind::DelayPush {
                nanos: num("nanos")?,
            }),
            "drop_unpark" => Ok(FaultKind::DropUnpark {
                count: num("count")? as u32,
            }),
            "poison_tape" => Ok(FaultKind::PoisonTape),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// One planned fault: do `kind` at firing `firing` (0-based, init +
/// steady) of stage `stage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Node id of the stage to hit.
    pub stage: usize,
    /// 0-based firing index (counting init-phase firings first).
    pub firing: u64,
    /// What to do there.
    pub kind: FaultKind,
}

/// A deterministic set of faults for one run. Empty by default; built by
/// hand ([`FaultPlan::with`]) or pseudo-randomly from a seed
/// ([`FaultPlan::random`]). The seed is carried along (and serialized in
/// replay bundles) purely as provenance — the specs themselves are what
/// replays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The planned faults.
    pub faults: Vec<FaultSpec>,
}

/// True when the crate was compiled with the `fault-inject` feature, i.e.
/// when [`FaultPlan::fault_for`] can actually trigger anything.
pub const FAULTS_COMPILED: bool = cfg!(feature = "fault-inject");

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(stage: usize, firing: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::none().with(FaultSpec {
            stage,
            firing,
            kind,
        })
    }

    /// Append a fault (builder style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A pseudo-random plan: `count` faults drawn from `kinds` (xorshift*
    /// over `seed`), aimed at stages `< stages` and firing indices
    /// `< max_firing`. Deterministic in all arguments.
    pub fn random(
        seed: u64,
        stages: usize,
        max_firing: u64,
        kinds: &[FaultKind],
        count: usize,
    ) -> FaultPlan {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut plan = FaultPlan {
            seed,
            faults: Vec::with_capacity(count),
        };
        if stages == 0 || kinds.is_empty() {
            return plan;
        }
        for _ in 0..count {
            plan.faults.push(FaultSpec {
                stage: (next() % stages as u64) as usize,
                firing: if max_firing == 0 {
                    0
                } else {
                    next() % max_firing
                },
                kind: kinds[(next() % kinds.len() as u64) as usize],
            });
        }
        plan
    }

    /// The fault planned for `(stage, firing)`, if any. With the
    /// `fault-inject` feature off this is a constant `None` the optimizer
    /// removes from the firing loop.
    #[inline]
    pub fn fault_for(&self, stage: usize, firing: u64) -> Option<FaultKind> {
        if !FAULTS_COMPILED {
            return None;
        }
        self.faults
            .iter()
            .find(|f| f.stage == stage && f.firing == firing)
            .map(|f| f.kind)
    }

    /// The plan as a JSON value (for [`ReplayBundle`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Num(self.seed as f64)),
            (
                "faults",
                Json::Arr(
                    self.faults
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("stage", Json::Num(f.stage as f64)),
                                ("firing", Json::Num(f.firing as f64)),
                                ("fault", f.kind.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a plan from its JSON form.
    ///
    /// # Errors
    /// Describes the first malformed field.
    pub fn from_json(v: &Json) -> Result<FaultPlan, String> {
        let seed = v
            .get("seed")
            .and_then(Json::as_num)
            .ok_or("plan needs a numeric \"seed\"")? as u64;
        let mut faults = Vec::new();
        for (i, f) in v
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("plan needs a \"faults\" array")?
            .iter()
            .enumerate()
        {
            let num = |key: &str| {
                f.get(key)
                    .and_then(Json::as_num)
                    .filter(|n| *n >= 0.0)
                    .ok_or_else(|| format!("faults[{i}] needs a non-negative \"{key}\""))
            };
            faults.push(FaultSpec {
                stage: num("stage")? as usize,
                firing: num("firing")? as u64,
                kind: FaultKind::from_json(
                    f.get("fault")
                        .ok_or(format!("faults[{i}] needs a \"fault\""))?,
                )?,
            });
        }
        Ok(FaultPlan { seed, faults })
    }
}

/// Everything needed to reproduce a failing run locally with one command
/// (`cargo run -p macross-bench --features fault-inject --bin replay_fault
/// -- <bundle.json>`): the benchmark + machine + mode that rebuild the
/// graph and schedule, the exact worker assignment, and the fault plan.
/// `expect` pins the failures the original run observed so the replay can
/// verify it reproduced them identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayBundle {
    /// Benchmark name (resolved via `macross_benchsuite::by_name`).
    pub benchmark: String,
    /// Whether the graph was macro-SIMDized before scheduling.
    pub simdized: bool,
    /// Machine description name (e.g. `core_i7_sse4`).
    pub machine: String,
    /// Work-function engine: `bytecode` or `treewalk`.
    pub exec_mode: String,
    /// Node id -> core, exactly as the failing run was placed.
    pub assignment: Vec<u32>,
    /// Steady iterations requested.
    pub iters: u64,
    /// Watchdog timeout in milliseconds (0 = no watchdog).
    pub watchdog_ms: u64,
    /// The faults that were injected.
    pub plan: FaultPlan,
    /// `(stage, firing, cause label)` of every failure the original run
    /// reported, in report order.
    pub expect: Vec<(usize, u64, String)>,
}

impl ReplayBundle {
    /// Canonical file name: `REPLAY_<benchmark>_<seed>.json`.
    pub fn file_name(&self) -> String {
        format!("REPLAY_{}_{}.json", self.benchmark, self.plan.seed)
    }

    /// The bundle as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str("macross-replay-v1".into())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("simdized", Json::Bool(self.simdized)),
            ("machine", Json::Str(self.machine.clone())),
            ("exec_mode", Json::Str(self.exec_mode.clone())),
            (
                "assignment",
                Json::Arr(
                    self.assignment
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            ("iters", Json::Num(self.iters as f64)),
            ("watchdog_ms", Json::Num(self.watchdog_ms as f64)),
            ("plan", self.plan.to_json()),
            (
                "expect",
                Json::Arr(
                    self.expect
                        .iter()
                        .map(|(stage, firing, cause)| {
                            Json::obj([
                                ("stage", Json::Num(*stage as f64)),
                                ("firing", Json::Num(*firing as f64)),
                                ("cause", Json::Str(cause.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write `REPLAY_<benchmark>_<seed>.json` into `dir`, returning the
    /// path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.json_string())?;
        Ok(path)
    }
}

impl std::str::FromStr for ReplayBundle {
    type Err = String;

    /// Parse a bundle from its JSON text, naming the first malformed
    /// field on error.
    fn from_str(input: &str) -> Result<ReplayBundle, String> {
        let v = json::parse(input)?;
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bundle needs a string \"{key}\""))
        };
        let n = |key: &str| {
            v.get(key)
                .and_then(Json::as_num)
                .filter(|x| *x >= 0.0)
                .ok_or_else(|| format!("bundle needs a non-negative \"{key}\""))
        };
        if v.get("schema").and_then(Json::as_str) != Some("macross-replay-v1") {
            return Err("bundle schema must be \"macross-replay-v1\"".into());
        }
        let assignment = v
            .get("assignment")
            .and_then(Json::as_arr)
            .ok_or("bundle needs an \"assignment\" array")?
            .iter()
            .map(|c| {
                c.as_num()
                    .filter(|x| *x >= 0.0)
                    .map(|x| x as u32)
                    .ok_or("assignment entries must be non-negative numbers".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let mut expect = Vec::new();
        for (i, e) in v
            .get("expect")
            .and_then(Json::as_arr)
            .ok_or("bundle needs an \"expect\" array")?
            .iter()
            .enumerate()
        {
            let num = |key: &str| {
                e.get(key)
                    .and_then(Json::as_num)
                    .filter(|x| *x >= 0.0)
                    .ok_or_else(|| format!("expect[{i}] needs a non-negative \"{key}\""))
            };
            expect.push((
                num("stage")? as usize,
                num("firing")? as u64,
                e.get("cause")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("expect[{i}] needs a \"cause\" string"))?
                    .to_string(),
            ));
        }
        Ok(ReplayBundle {
            benchmark: s("benchmark")?,
            simdized: matches!(v.get("simdized"), Some(Json::Bool(true))),
            machine: s("machine")?,
            exec_mode: s("exec_mode")?,
            assignment,
            iters: n("iters")? as u64,
            watchdog_ms: n("watchdog_ms")? as u64,
            plan: FaultPlan::from_json(v.get("plan").ok_or("bundle needs a \"plan\"")?)?,
            expect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn random_plans_are_deterministic() {
        let kinds = [FaultKind::Panic, FaultKind::PoisonTape];
        let a = FaultPlan::random(42, 7, 100, &kinds, 5);
        let b = FaultPlan::random(42, 7, 100, &kinds, 5);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
        assert!(a.faults.iter().all(|f| f.stage < 7 && f.firing < 100));
        let c = FaultPlan::random(43, 7, 100, &kinds, 5);
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn fault_lookup_respects_feature_gate() {
        let plan = FaultPlan::single(2, 5, FaultKind::Panic);
        let hit = plan.fault_for(2, 5);
        if FAULTS_COMPILED {
            assert_eq!(hit, Some(FaultKind::Panic));
            assert_eq!(plan.fault_for(2, 6), None);
            assert_eq!(plan.fault_for(1, 5), None);
        } else {
            assert_eq!(hit, None, "faults must be inert without the feature");
        }
    }

    #[test]
    fn plan_json_roundtrip() {
        let plan = FaultPlan {
            seed: 99,
            faults: vec![
                FaultSpec {
                    stage: 1,
                    firing: 3,
                    kind: FaultKind::StallFiring { nanos: 5_000_000 },
                },
                FaultSpec {
                    stage: 4,
                    firing: 0,
                    kind: FaultKind::DropUnpark { count: 3 },
                },
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn bundle_roundtrip_and_file_name() {
        let bundle = ReplayBundle {
            benchmark: "FMRadio".into(),
            simdized: true,
            machine: "core_i7_sse4".into(),
            exec_mode: "bytecode".into(),
            assignment: vec![0, 0, 1, 1],
            iters: 50,
            watchdog_ms: 200,
            plan: FaultPlan::single(2, 7, FaultKind::Panic),
            expect: vec![(2, 7, "panic".into())],
        };
        assert_eq!(bundle.file_name(), "REPLAY_FMRadio_0.json");
        let back = ReplayBundle::from_str(&bundle.json_string()).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn malformed_bundles_are_rejected_with_context() {
        let err = ReplayBundle::from_str("{}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let err =
            FaultKind::from_json(&Json::obj([("kind", Json::Str("meteor".into()))])).unwrap_err();
        assert!(err.contains("meteor"), "{err}");
    }
}
