//! Reusable compiled artifacts: the unit the service layer caches.
//!
//! [`compile_graph`] runs everything expensive about admitting a stream
//! program exactly once — the Algorithm-1 SIMDization driver, the
//! Equation-1 schedule adjustment, the firing compiler and superblock
//! kernel fuser, and the static cost model — and packages the results
//! behind `Arc`s so any number of concurrent sessions of the same graph
//! shape execute from one compilation. This is the driver refactor that
//! separates *compile* from *run*: the original `run_threaded` /
//! `run_scheduled` entry points compile implicitly per call, which is
//! correct for a bench harness and wasteful for a server.

use crate::driver::{macro_simdize, modelled_steady_cost, SimdizeOptions, SimdizeReport};
use crate::error::SimdizeError;
use macross_sdf::Schedule;
use macross_streamir::graph::Graph;
use macross_streamir::shash::{structural_hash, GraphHash};
use macross_vm::{CompiledPrograms, ExecMode, Machine};
use std::sync::Arc;

/// Everything compiled once per unique graph shape, shareable across
/// sessions. Cloning clones `Arc`s and the (small) report, never the
/// graph, schedule or bytecode.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// Structural fingerprint of the *source* (pre-SIMDization) graph —
    /// the cache key it was compiled under.
    pub source_hash: GraphHash,
    /// What the SIMDization driver did.
    pub report: SimdizeReport,
    /// The SIMDized graph.
    pub graph: Arc<Graph>,
    /// Its Equation-1-adjusted steady schedule (do not recompute).
    pub schedule: Arc<Schedule>,
    /// Per-filter compiled bytecode with fused superblock kernels.
    pub programs: CompiledPrograms,
    /// Engine mode the programs were compiled for.
    pub mode: ExecMode,
    /// Modelled cycles per steady iteration
    /// ([`crate::driver::modelled_steady_cost`]) — the weight session
    /// sharding balances across the worker pool.
    pub steady_cost: u64,
}

/// SIMDize and compile `graph` into a shareable artifact.
///
/// # Errors
/// Fails if the SIMDization driver rejects the graph.
pub fn compile_graph(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
    mode: ExecMode,
) -> Result<CompiledGraph, SimdizeError> {
    let source_hash = structural_hash(graph);
    let simd = macro_simdize(graph, machine, opts)?;
    let steady_cost = modelled_steady_cost(&simd, machine);
    let programs = CompiledPrograms::compile(&simd.graph, machine, mode);
    Ok(CompiledGraph {
        source_hash,
        report: simd.report,
        graph: Arc::new(simd.graph),
        schedule: Arc::new(simd.schedule),
        programs,
        mode,
        steady_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::{run_scheduled_mode, Executor};

    fn pipeline() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        f.work(|b| {
            b.push(pop() * 3i32 + 7i32);
        });
        StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    #[test]
    fn artifact_run_matches_cold_run() {
        let g = pipeline();
        let machine = Machine::core_i7();
        let art = compile_graph(&g, &machine, &SimdizeOptions::all(), ExecMode::default()).unwrap();
        let cold = run_scheduled_mode(&art.graph, &art.schedule, &machine, 5, art.mode).unwrap();
        // Two independent executors from the same shared programs.
        for _ in 0..2 {
            let mut ex =
                Executor::with_programs(&art.graph, &art.schedule, &machine, &art.programs);
            ex.run(5).unwrap();
            assert_eq!(ex.output_flat(), cold.output);
        }
        assert!(art.steady_cost > 0);
        assert_eq!(art.source_hash, structural_hash(&g));
    }
}
