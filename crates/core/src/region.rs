//! Region-based stateful SIMDization (Timcheck & Buhler, extended to the
//! MacroSS pipeline): a stateful actor whose state partitions into `R`
//! identical, independent regions — firing `i` touching only region
//! `i mod R` — is rewritten so `W` consecutive firings run as one vector
//! firing with one region per lane.
//!
//! The classic MacroSS passes refuse every stateful actor; this transform
//! recovers the common stateful shapes (per-channel IIR banks, rotating
//! accumulators, delay lines with channel-striped state) whose loop-carried
//! dependence is *per region* and therefore never crosses lanes.
//!
//! ## Panel layout
//!
//! Scalar state `y: [elem; R]` becomes a region-major panel array
//! `y: [vec<elem, W>; R/W]` where panel `j` holds regions
//! `j*W .. j*W + W - 1`, one per lane. Vector firing `k` covers scalar
//! firings `k*W .. k*W + W - 1`, which (because `W` divides `R`) all land
//! in panel `k mod (R/W)` — so the scalar cursor survives as the panel
//! cursor, advanced by `cursor = (cursor + 1) % (R/W)` instead of
//! `% R`. Tape access stays the existing strip-mined chunk-major strided
//! form: lane `l` reads/writes the tape slots of scalar firing `k*W + l`.
//!
//! `init` still runs scalar code: the original body is redirected into a
//! scratch scalar array and a packing epilogue transposes it into the
//! panels (`y[j].{l} = scratch[j*W + l]`).

use crate::error::SimdizeError;
use crate::single::{vectorize_filter_seeded, SingleActorConfig, TapeMode};
use macross_streamir::analysis::{
    analyze_vectorizability, check_rates, check_region_spec, region_cursor_update,
};
use macross_streamir::expr::{Expr, LValue, VarId};
use macross_streamir::filter::{Filter, RegionSpec, VarKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{Ty, Value};
use std::collections::{HashMap, HashSet};

/// Pick the lane width for an `R`-region actor on a `sw`-wide machine:
/// `sw` itself when it divides `R`, otherwise the largest power-of-two
/// divisor of `R` that fits (`>= 2`). `None` when no usable width exists
/// (odd `R`, or `R < 2`).
pub fn region_width(regions: usize, sw: usize) -> Option<usize> {
    if sw >= 2 && regions.is_multiple_of(sw) {
        return Some(sw);
    }
    let mut w = sw.next_power_of_two().min(64);
    while w >= 2 {
        if w <= sw && regions.is_multiple_of(w) {
            return Some(w);
        }
        w /= 2;
    }
    None
}

fn subst_expr(e: &mut Expr, map: &HashMap<VarId, VarId>) {
    match e {
        Expr::Var(v) | Expr::Index(v, _) | Expr::VIndex(v, _, _) => {
            if let Some(n) = map.get(v) {
                *v = *n;
            }
        }
        _ => {}
    }
    match e {
        Expr::Index(_, a)
        | Expr::VIndex(_, a, _)
        | Expr::Unary(_, a)
        | Expr::Cast(_, a)
        | Expr::Peek(a)
        | Expr::Lane(a, _)
        | Expr::Splat(a, _) => subst_expr(a, map),
        Expr::VPeek { offset, .. } => subst_expr(offset, map),
        Expr::Binary(_, a, b) | Expr::PermuteEven(a, b) | Expr::PermuteOdd(a, b) => {
            subst_expr(a, map);
            subst_expr(b, map);
        }
        Expr::Call(_, args) => {
            for a in args {
                subst_expr(a, map);
            }
        }
        _ => {}
    }
}

fn subst_stmt(s: &mut Stmt, map: &HashMap<VarId, VarId>) {
    match s {
        Stmt::Assign(lv, e) => {
            match lv {
                LValue::Var(v) | LValue::LaneVar(v, _) => {
                    if let Some(n) = map.get(v) {
                        *v = *n;
                    }
                }
                LValue::Index(v, i) | LValue::LaneIndex(v, i, _) | LValue::VIndex(v, i, _) => {
                    if let Some(n) = map.get(v) {
                        *v = *n;
                    }
                    subst_expr(i, map);
                }
            }
            subst_expr(e, map);
        }
        Stmt::Push(e) | Stmt::LPush(_, e) | Stmt::LVPush(_, e, _) => subst_expr(e, map),
        Stmt::RPush { value, offset } => {
            subst_expr(value, map);
            subst_expr(offset, map);
        }
        Stmt::VPush { value, .. } => subst_expr(value, map),
        Stmt::For { count, body, .. } => {
            subst_expr(count, map);
            for s in body {
                subst_stmt(s, map);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            subst_expr(cond, map);
            for s in then_branch {
                subst_stmt(s, map);
            }
            for s in else_branch {
                subst_stmt(s, map);
            }
        }
        Stmt::AdvanceRead(_) | Stmt::AdvanceWrite(_) => {}
    }
}

/// Vectorize one region-annotated stateful actor for `cfg.sw` lanes.
///
/// `cfg.sw` must divide the region count (use [`region_width`] to pick
/// it) and both tape modes must be [`TapeMode::Strided`] — the region
/// transform reuses the strip-mined chunk-major tape form unchanged.
///
/// # Errors
/// Fails when the annotation does not hold
/// ([`check_region_spec`]), the body has tape-dependent control flow or
/// subscripts, is already vectorized, or the width does not divide `R`.
/// The result is self-checked against its declared rates.
pub fn simdize_region_actor(
    orig: &Filter,
    cfg: &SingleActorConfig,
) -> Result<Filter, SimdizeError> {
    let not_vec = |reason: String| SimdizeError::NotVectorizable {
        actor: orig.name.clone(),
        reason,
    };
    check_region_spec(orig).map_err(&not_vec)?;
    let va = analyze_vectorizability(orig);
    if va.tape_dependent_control || va.tape_dependent_subscript || va.vectorized {
        return Err(not_vec(format!(
            "tape_dependent_control={} tape_dependent_subscript={} vectorized={}",
            va.tape_dependent_control, va.tape_dependent_subscript, va.vectorized
        )));
    }
    let spec = orig.region.clone().expect("checked above");
    let w = cfg.sw;
    if w < 2 || !spec.regions.is_multiple_of(w) {
        return Err(not_vec(format!(
            "lane width {w} does not divide region count {}",
            spec.regions
        )));
    }
    if cfg.input != TapeMode::Strided || cfg.output != TapeMode::Strided {
        return Err(not_vec(
            "region SIMDization supports only strided tape modes".into(),
        ));
    }
    let panels = spec.regions / w;

    let mut f = orig.clone();
    f.name = format!("{}_r{}", f.name, w);

    // Strip the canonical cursor advance — check_region_spec proved it is
    // the last top-level statement and the only cursor write.
    debug_assert_eq!(
        f.work.last(),
        Some(&region_cursor_update(spec.cursor, spec.regions))
    );
    f.work.pop();

    // Redirect init's region-array accesses into scalar scratch locals so
    // the (unrewritten, scalar) init body stays well-typed after the
    // panels change type.
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    let mut scratch: Vec<(VarId, VarId, macross_streamir::types::ScalarTy)> = Vec::new();
    for &y in &spec.vars {
        let elem = match f.var(y).ty {
            Ty::Array(e, _) => e,
            _ => unreachable!("check_region_spec enforces array region vars"),
        };
        let name = format!("__rs_{}", f.var(y).name);
        let sid = f.add_var(name, Ty::Array(elem, spec.regions), VarKind::Local);
        map.insert(y, sid);
        scratch.push((y, sid, elem));
    }
    for s in &mut f.init {
        subst_stmt(s, &map);
    }

    // Vectorize the cursor-free body. The region arrays are seeded as
    // vector variables: their lanes hold different regions' values even
    // when no tape data flows into them.
    let seeds: HashSet<VarId> = spec.vars.iter().copied().collect();
    vectorize_filter_seeded(&mut f, cfg, false, &seeds)?;

    // Retype the panels region-major: W lanes per panel, R/W panels (the
    // blanket retype in vectorize_filter produced R panels).
    for &(y, _, elem) in &scratch {
        f.vars[y.0 as usize].ty = Ty::VectorArray(elem, w, panels);
    }

    // Packing epilogue: transpose scratch into the panels, lane l of
    // panel j taking region j*W + l. Fully unrolled — R is a small
    // compile-time constant and constant subscripts fold downstream.
    for &(y, sid, _) in &scratch {
        for j in 0..panels {
            for l in 0..w {
                f.init.push(Stmt::Assign(
                    LValue::LaneIndex(y, Expr::Const(Value::I32(j as i32)), l),
                    Expr::Index(sid, Box::new(Expr::Const(Value::I32((j * w + l) as i32)))),
                ));
            }
        }
    }

    // The scalar cursor survives as the panel cursor.
    f.work.push(region_cursor_update(spec.cursor, panels));
    f.region = Some(RegionSpec {
        regions: panels,
        vars: spec.vars.clone(),
        cursor: spec.cursor,
    });

    check_rates(&f).map_err(|e| SimdizeError::RateCheck(e.to_string()))?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::edsl::*;
    use macross_streamir::types::ScalarTy;

    fn iir_bank(regions: usize) -> Filter {
        let mut fb = FilterBuilder::new("iir_bank", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", regions);
        let y = fb.region_var("y", ScalarTy::F32);
        let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
        fb.init(|b| {
            b.for_(j, regions as i32, |b| {
                b.set_idx(y, v(j), cast(ScalarTy::F32, v(j)) * 0.125f32);
            });
        });
        fb.work(|b| {
            b.set_idx(y, v(cur), idx(y, v(cur)) * 0.5f32 + pop() * 0.5f32);
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(regions as i32));
        });
        fb.build()
    }

    #[test]
    fn width_selection() {
        assert_eq!(region_width(8, 4), Some(4));
        assert_eq!(region_width(4, 4), Some(4));
        assert_eq!(region_width(12, 8), Some(4));
        assert_eq!(region_width(6, 4), Some(2));
        assert_eq!(region_width(7, 4), None);
        assert_eq!(region_width(2, 8), Some(2));
    }

    #[test]
    fn transform_produces_panel_layout() {
        let f = iir_bank(8);
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        let vf = simdize_region_actor(&f, &cfg).unwrap();
        assert_eq!(vf.name, "iir_bank_r4");
        assert_eq!(vf.pop, 4);
        assert_eq!(vf.push, 4);
        let spec = vf.region.as_ref().unwrap();
        assert_eq!(spec.regions, 2); // 8 regions / 4 lanes = 2 panels
        let y = spec.vars[0];
        assert_eq!(vf.var(y).ty, Ty::VectorArray(ScalarTy::F32, 4, 2));
        // Panel cursor update got re-appended with the panel modulus.
        assert_eq!(
            vf.work.last().unwrap(),
            &macross_streamir::analysis::region_cursor_update(spec.cursor, 2)
        );
        // Init ends with the 8 packing lane stores.
        let lane_stores = vf
            .init
            .iter()
            .filter(|s| matches!(s, Stmt::Assign(LValue::LaneIndex(_, _, _), _)))
            .count();
        assert_eq!(lane_stores, 8);
    }

    #[test]
    fn non_divisor_width_rejected() {
        let f = iir_bank(6);
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        assert!(simdize_region_actor(&f, &cfg).is_err());
        let cfg2 = SingleActorConfig::strided(2, ScalarTy::F32, ScalarTy::F32);
        assert!(simdize_region_actor(&f, &cfg2).is_ok());
    }

    #[test]
    fn cross_region_write_falls_back() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, (v(cur) + 1i32) % c(4i32), pop());
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        assert!(matches!(
            simdize_region_actor(
                &fb.build(),
                &SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32)
            ),
            Err(SimdizeError::NotVectorizable { .. })
        ));
    }
}
