//! The macro-SIMDization driver — Algorithm 1 of the paper.
//!
//! Phase order matches the paper: prepass scheduling, identification of
//! vectorizable segments, vertical fusion, repetition-number adjustment
//! (Equation 1), horizontal SIMDization, single-actor SIMDization with
//! cost-model-selected tape optimizations, and final validation.

use crate::cost::{static_firing_cost, AddrCosts};
use crate::error::SimdizeError;
use crate::horizontal::{find_split_joins, horizontalize};
use crate::permnet::{gather_applicable, scatter_applicable};
use crate::region::{region_width, simdize_region_actor};
use crate::single::{simdize_single_actor, uses_peek, SingleActorConfig, TapeMode};
use crate::vertical::{fuse_chain, link_fusable, splice_fused};
use macross_sdf::{compute_init_reps, lcm, Schedule};
use macross_streamir::analysis::{analyze_vectorizability, check_rates};
use macross_streamir::graph::{AddrGen, Graph, Node, NodeId, Reorder, ReorderSide};
use macross_streamir::types::ScalarTy;
use macross_telemetry::compile::{Pass, PassEvent};
use macross_vm::Machine;
use std::collections::HashSet;

/// Which transforms and optimizations the driver may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdizeOptions {
    /// Single-actor SIMDization of isolated stateless actors.
    pub single: bool,
    /// Vertical fusion of SIMDizable pipelines.
    pub vertical: bool,
    /// Horizontal SIMDization of isomorphic split-joins.
    pub horizontal: bool,
    /// Permutation-based tape accesses (Figure 7).
    pub permute_opt: bool,
    /// SAGU / software-reordered vector tape accesses (Figures 8/9).
    pub reorder_opt: bool,
    /// Skip actors the cost model deems unprofitable to vectorize.
    pub profitability: bool,
    /// Run the classic prepass optimizations (constant folding, identity
    /// simplification, dead-store elimination) before SIMDizing
    /// (Algorithm 1's "Prepass-Optimizations"). Bit-exactness preserving.
    pub prepass: bool,
    /// Region-based stateful SIMDization: vectorize actors whose state is
    /// declared as independent regions (lane-per-region panels).
    pub region: bool,
}

impl Default for SimdizeOptions {
    fn default() -> Self {
        SimdizeOptions {
            single: true,
            vertical: true,
            horizontal: true,
            permute_opt: true,
            reorder_opt: true,
            profitability: true,
            prepass: true,
            region: true,
        }
    }
}

impl SimdizeOptions {
    /// All transforms enabled (the paper's full MacroSS configuration).
    pub fn all() -> SimdizeOptions {
        SimdizeOptions::default()
    }

    /// Only single-actor SIMDization with strided tapes — the baseline the
    /// paper's Figure 11 compares vertical SIMDization against.
    pub fn single_only() -> SimdizeOptions {
        SimdizeOptions {
            single: true,
            vertical: false,
            horizontal: false,
            permute_opt: false,
            reorder_opt: false,
            profitability: true,
            prepass: true,
            region: false,
        }
    }

    /// Everything except the SAGU/reorder tape optimization (the Figure 12
    /// baseline).
    pub fn no_reorder() -> SimdizeOptions {
        SimdizeOptions {
            reorder_opt: false,
            ..SimdizeOptions::default()
        }
    }
}

/// The input/output tape-mode decision for one vectorized actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeDecision {
    /// Actor name (post-transform).
    pub actor: String,
    /// Chosen input mode.
    pub input: TapeMode,
    /// Chosen output mode.
    pub output: TapeMode,
}

/// What the driver did, for tests, reports and EXPERIMENTS.md.
#[derive(Debug, Clone, Default)]
pub struct SimdizeReport {
    /// Equation-1 repetition scale factor applied to the whole graph.
    pub scale_factor: u64,
    /// Actors vectorized by single-actor SIMDization (incl. fused actors).
    pub single_actors: Vec<String>,
    /// Vertically fused chains (original actor names per chain).
    pub vertical_chains: Vec<Vec<String>>,
    /// Horizontally merged vector actors, one vec per split-join.
    pub horizontal_groups: Vec<Vec<String>>,
    /// Eligible actors skipped as unprofitable.
    pub skipped_unprofitable: Vec<String>,
    /// Stateful actors vectorized by region-based SIMDization
    /// (post-transform names).
    pub region_actors: Vec<String>,
    /// Tape-access modes chosen per vectorized actor.
    pub tape_decisions: Vec<TapeDecision>,
    /// Compile-side trace: every transform decision in the order the
    /// driver made it, with the cost-model estimates behind it.
    pub passes: Vec<PassEvent>,
}

/// Result of macro-SIMDization: the vectorized graph plus its adjusted
/// steady-state schedule (do **not** recompute the schedule from the graph
/// — the Equation-1 scaling is deliberate).
#[derive(Debug, Clone)]
pub struct Simdized {
    /// The transformed graph.
    pub graph: Graph,
    /// The adjusted schedule.
    pub schedule: Schedule,
    /// What was done.
    pub report: SimdizeReport,
}

/// Is this filter eligible for single/vertical SIMDization on `machine`?
fn eligible(graph: &Graph, id: NodeId, machine: &Machine) -> bool {
    let Some(f) = graph.node(id).as_filter() else {
        return false;
    };
    let va = analyze_vectorizability(f);
    va.simdizable() && machine.supports_all(&va.intrinsics)
}

/// Run macro-SIMDization (Algorithm 1) on a stream graph.
///
/// # Errors
/// Fails if the graph is invalid, any filter's declared rates disagree
/// with its body, or an internal transform self-check fails.
pub fn macro_simdize(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
) -> Result<Simdized, SimdizeError> {
    let colors = vec![0u32; graph.node_count()];
    macro_simdize_colocated(graph, machine, opts, &colors).map(|(s, _)| s)
}

/// Macro-SIMDization under a co-location constraint: nodes carry a color
/// (e.g. the core a multicore partitioner assigned them to), and vertical
/// fusion / horizontal merging may only combine same-colored actors.
///
/// Returns the result together with the colors of the transformed graph's
/// nodes (new fused/merged nodes inherit their sources' color).
///
/// This models the paper's Figure-13 study: "The scheduler we use in this
/// experiment first performs multi-core partitioning and then performs
/// macro-SIMDization. This approach reduces the opportunities for
/// performing vertical fusion and also horizontal SIMDization."
///
/// # Errors
/// Same as [`macro_simdize`].
pub fn macro_simdize_colocated(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
    colors: &[u32],
) -> Result<(Simdized, Vec<u32>), SimdizeError> {
    assert_eq!(colors.len(), graph.node_count(), "one color per node");
    let mut colors: Vec<u32> = colors.to_vec();
    graph
        .validate()
        .map_err(|e| SimdizeError::Graph(e.to_string()))?;
    for (_, node) in graph.nodes() {
        if let Node::Filter(f) = node {
            check_rates(f).map_err(|e| SimdizeError::RateCheck(e.to_string()))?;
        }
    }
    let sw = machine.simd_width;
    let mut report = SimdizeReport {
        scale_factor: 1,
        ..Default::default()
    };
    let mut g = graph.clone();

    // --- Horizontal SIMDization of eligible split-joins. Done before
    // vertical so isomorphic branches are not partially fused away; the
    // paper resolves the overlap with its cost model, we use the same
    // priority it picks for its running example.
    if opts.horizontal {
        loop {
            let cands = find_split_joins(&g);
            let mut advanced = false;
            for cand in cands {
                if cand.branches.len() % sw != 0 {
                    continue;
                }
                // Every actor must be supported by the SIMD engine.
                let intrinsics_ok = cand.branches.iter().flatten().all(|&id| {
                    g.node(id)
                        .as_filter()
                        .map(|f| machine.supports_all(&analyze_vectorizability(f).intrinsics))
                        .unwrap_or(false)
                });
                if !intrinsics_ok {
                    continue;
                }
                // Co-location: all branch actors must share a color.
                let group_color = colors[cand.splitter.0 as usize];
                if cand
                    .branches
                    .iter()
                    .flatten()
                    .any(|id| colors[id.0 as usize] != group_color)
                {
                    continue;
                }
                match horizontalize(&g, &cand, sw) {
                    Ok(h) => {
                        let added = 2 + h.merged_names.iter().map(|r| r.len()).sum::<usize>();
                        let group: Vec<String> = h.merged_names.into_iter().flatten().collect();
                        report.passes.push(
                            PassEvent::new(Pass::Horizontal, group.join("+"), sw as u64)
                                .note(format!("{}-branch split-join merged", cand.branches.len())),
                        );
                        report.horizontal_groups.push(group);
                        let mut new_colors = vec![0u32; h.graph.node_count()];
                        for (old, new) in h.node_map.iter().enumerate() {
                            if let Some(n) = new {
                                new_colors[n.0 as usize] = colors[old];
                            }
                        }
                        for k in 0..added {
                            new_colors[h.graph.node_count() - added + k] = group_color;
                        }
                        colors = new_colors;
                        g = h.graph;
                        advanced = true;
                        break; // node ids changed; re-find candidates
                    }
                    Err(_) => continue, // not isomorphic etc.: leave scalar
                }
            }
            if !advanced {
                break;
            }
        }
    }

    // --- Prepass classic optimizations (value-preserving). Run *after*
    // horizontal SIMDization: identity rewrites like `x * 1.0 -> x` can
    // otherwise make isomorphic actors structurally different (the merge
    // compares shapes modulo constants, and folding is shape-changing).
    if opts.prepass {
        let stats = crate::opt::prepass_optimize(&mut g);
        report.passes.push(
            PassEvent::new(Pass::Prepass, "<graph>", sw as u64).note(format!(
                "{} rewrites: {} folded, {} identities, {} branches, {} loops, {} dead stores",
                stats.total(),
                stats.folded,
                stats.identities,
                stats.branches_resolved,
                stats.loops_simplified,
                stats.dead_stores
            )),
        );
    }

    // --- Vertical fusion of maximal SIMDizable pipeline chains.
    let mut fused_names: HashSet<String> = HashSet::new();
    if opts.vertical {
        loop {
            let sched = Schedule::compute(&g)?;
            let order = g
                .topo_order()
                .map_err(|e| SimdizeError::Graph(e.to_string()))?;
            let mut taken: HashSet<NodeId> = HashSet::new();
            let mut chain: Option<Vec<NodeId>> = None;
            'outer: for &id in &order {
                if taken.contains(&id) || !eligible(&g, id, machine) {
                    continue;
                }
                let mut c = vec![id];
                let mut cur = id;
                while let Some(e) = g.single_out_edge(cur) {
                    let next = g.edge(e).dst;
                    if taken.contains(&next)
                        || !eligible(&g, next, machine)
                        || colors[next.0 as usize] != colors[id.0 as usize]
                        || link_fusable(&g, cur, next).is_err()
                    {
                        break;
                    }
                    c.push(next);
                    cur = next;
                }
                taken.extend(c.iter().copied());
                if c.len() >= 2 {
                    chain = Some(c);
                    break 'outer;
                }
            }
            let Some(chain) = chain else { break };
            let reps: Vec<u64> = chain.iter().map(|&id| sched.rep(id)).collect();
            let names: Vec<String> = chain.iter().map(|&id| g.node(id).name()).collect();
            let chain_color = colors[chain[0].0 as usize];
            let fused = fuse_chain(&g, &chain, &reps)?;
            fused_names.insert(fused.name.clone());
            let (ng, fused_id) = splice_fused(&g, &chain, fused);
            // Remap colors: kept nodes keep theirs, the fused node takes
            // the chain's color. splice_fused removes the chain and
            // appends exactly one node.
            let mut new_colors = vec![0u32; ng.node_count()];
            {
                use crate::graph_edit::rebuild_without;
                let remove: HashSet<NodeId> = chain.iter().copied().collect();
                let r = rebuild_without(&g, &remove);
                for (old, new) in r.node_map.iter().enumerate() {
                    if let Some(n) = new {
                        new_colors[n.0 as usize] = colors[old];
                    }
                }
            }
            new_colors[fused_id.0 as usize] = chain_color;
            colors = new_colors;
            g = ng;
            report.passes.push(
                PassEvent::new(Pass::Vertical, names.join("->"), sw as u64)
                    .note(format!("{}-actor chain fused", names.len())),
            );
            report.vertical_chains.push(names);
        }
    }

    // --- Select the single-actor SIMDization set (fused actors are plain
    // filters at this point and are selected by the same rule).
    let mut schedule = Schedule::compute(&g)?;
    let mut selected: Vec<NodeId> = Vec::new();
    if opts.single || opts.vertical {
        for id in g.node_ids() {
            if !eligible(&g, id, machine) {
                continue;
            }
            let is_fused = fused_names.contains(&g.node(id).name());
            if !opts.single && !is_fused {
                continue;
            }
            selected.push(id);
        }
    }

    // --- Tape-mode selection and profitability per actor.
    let mut plans: Vec<(NodeId, SingleActorConfig)> = Vec::new();
    for &id in &selected {
        let f = g
            .node(id)
            .as_filter()
            .expect("selected actors are filters")
            .clone();
        let in_elem = g
            .single_in_edge(id)
            .map(|e| g.edge(e).elem)
            .unwrap_or(ScalarTy::F32);
        let out_elem = g
            .single_out_edge(id)
            .map(|e| g.edge(e).elem)
            .unwrap_or(ScalarTy::F32);
        let peeking = f.peek > f.pop || uses_peek(&f);

        let mut input_modes = vec![TapeMode::Strided];
        let mut output_modes = vec![TapeMode::Strided];
        if !peeking && f.pop > 0 {
            if opts.permute_opt && machine.has_permute && gather_applicable(f.pop) {
                input_modes.push(TapeMode::Permute);
            }
            if opts.reorder_opt && scalar_neighbor(&g, id, true, &selected) {
                input_modes.push(TapeMode::VectorReorder);
            }
        }
        if f.push > 0 {
            if opts.permute_opt && machine.has_permute && scatter_applicable(f.push) {
                output_modes.push(TapeMode::Permute);
            }
            if opts.reorder_opt && scalar_neighbor(&g, id, false, &selected) {
                output_modes.push(TapeMode::VectorReorder);
            }
        }

        let addr_unit = if machine.has_sagu {
            machine.cost.sagu_access
        } else {
            machine.cost.addr_software_reorder
        };
        let mut best: Option<(u64, SingleActorConfig)> = None;
        for &im in &input_modes {
            for &om in &output_modes {
                let cfg = SingleActorConfig {
                    sw,
                    input: im,
                    output: om,
                    in_elem,
                    out_elem,
                };
                let Ok(vf) = simdize_single_actor(&f, &cfg) else {
                    continue;
                };
                let mut cost = static_firing_cost(&vf, machine, AddrCosts::default());
                // Charge the neighbour's extra address generation.
                if im == TapeMode::VectorReorder {
                    cost += (sw * f.pop) as u64 * addr_unit;
                }
                if om == TapeMode::VectorReorder {
                    cost += (sw * f.push) as u64 * addr_unit;
                }
                if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                    best = Some((cost, cfg));
                }
            }
        }
        let (vcost, cfg) = best.expect("strided mode always available");
        let scost = static_firing_cost(&f, machine, AddrCosts::default());
        if opts.profitability && vcost >= (sw as u64) * scost {
            report.passes.push(
                PassEvent::new(Pass::Unprofitable, f.name.clone(), sw as u64)
                    .costs(scost, vcost)
                    .note("vector firing not cheaper than SW scalar firings"),
            );
            report.skipped_unprofitable.push(f.name.clone());
            continue;
        }
        report.passes.push(
            PassEvent::new(Pass::SingleActor, f.name.clone(), sw as u64)
                .costs(scost, vcost)
                .note(format!("tapes in={:?} out={:?}", cfg.input, cfg.output)),
        );
        plans.push((id, cfg));
    }

    // --- Region-based stateful SIMDization: actors the passes above
    // refuse (stateful), but whose state is declared as independent
    // regions. The lane width is the machine width or the largest
    // power-of-two divisor of the region count that fits.
    let mut region_plans: Vec<(NodeId, SingleActorConfig)> = Vec::new();
    if opts.region {
        for id in g.node_ids() {
            let Some(f) = g.node(id).as_filter() else {
                continue;
            };
            let Some(spec) = &f.region else { continue };
            let va = analyze_vectorizability(f);
            if va.vectorized || !machine.supports_all(&va.intrinsics) {
                continue;
            }
            if macross_streamir::analysis::check_region_spec(f).is_err() {
                continue; // malformed annotation: stay scalar, bit-exactly
            }
            let Some(w) = region_width(spec.regions, sw) else {
                continue;
            };
            let regions = spec.regions;
            let f = f.clone();
            let in_elem = g
                .single_in_edge(id)
                .map(|e| g.edge(e).elem)
                .unwrap_or(ScalarTy::F32);
            let out_elem = g
                .single_out_edge(id)
                .map(|e| g.edge(e).elem)
                .unwrap_or(ScalarTy::F32);
            let cfg = SingleActorConfig::strided(w, in_elem, out_elem);
            let Ok(vf) = simdize_region_actor(&f, &cfg) else {
                continue;
            };
            // Equation-1-style profitability with a region-permute term:
            // when the cursor must rotate across several panels, the
            // panel state cannot stay register-resident between firings,
            // so each extra panel is charged one cross-panel permute.
            let panels = regions / w;
            let permute_term = (panels as u64 - 1) * machine.cost.permute;
            let scost = static_firing_cost(&f, machine, AddrCosts::default());
            let vcost = static_firing_cost(&vf, machine, AddrCosts::default()) + permute_term;
            if opts.profitability && vcost >= (w as u64) * scost {
                report.passes.push(
                    PassEvent::new(Pass::Unprofitable, f.name.clone(), w as u64)
                        .costs(scost, vcost)
                        .note(format!(
                            "region vector firing not cheaper than {w} scalar firings \
                             (R={regions}, permute term {permute_term})"
                        )),
                );
                report.skipped_unprofitable.push(f.name.clone());
                continue;
            }
            report.passes.push(
                PassEvent::new(Pass::Region, f.name.clone(), w as u64)
                    .costs(scost, vcost)
                    .note(format!(
                        "R={regions} regions as {panels} panel(s), permute term {permute_term}"
                    )),
            );
            region_plans.push((id, cfg));
        }
    }

    // --- Equation 1: scale the repetition vector so every selected actor's
    // repetition number is a multiple of its lane width (SW for the
    // classic passes, the chosen divisor width for region actors — all
    // powers of two <= SW, so one scale factor covers the mix).
    if !plans.is_empty() || !region_plans.is_empty() {
        let m = plans
            .iter()
            .map(|(id, cfg)| (*id, cfg.sw))
            .chain(region_plans.iter().map(|(id, cfg)| (*id, cfg.sw)))
            .map(|(id, w)| {
                let r = schedule.rep(id);
                lcm(w as u64, r) / r
            })
            .max()
            .unwrap_or(1);
        schedule.scale(m);
        report.scale_factor = m;
        report.passes.push(
            PassEvent::new(Pass::Equation1, "<schedule>", sw as u64)
                .note(format!("repetition vector scaled by {m}")),
        );
    }

    // --- Transform the selected actors, divide their repetition numbers,
    // and mark reordered edges.
    for (id, cfg) in &plans {
        let f = g.node(*id).as_filter().expect("filter").clone();
        let vf = simdize_single_actor(&f, cfg)?;
        report.tape_decisions.push(TapeDecision {
            actor: vf.name.clone(),
            input: cfg.input,
            output: cfg.output,
        });
        report.single_actors.push(vf.name.clone());
        g.replace_node(*id, Node::Filter(vf));
        let r = &mut schedule.reps[id.0 as usize];
        debug_assert_eq!(
            *r % sw as u64,
            0,
            "Equation 1 must make reps divisible by SW"
        );
        *r /= sw as u64;

        let addr_gen = if machine.has_sagu {
            AddrGen::Sagu
        } else {
            AddrGen::Software
        };
        if cfg.input == TapeMode::VectorReorder {
            let e = g.single_in_edge(*id).expect("input edge");
            g.edge_mut(e).reorder = Some(Reorder {
                rate: f.pop,
                sw,
                side: ReorderSide::Producer,
                addr_gen,
            });
        }
        if cfg.output == TapeMode::VectorReorder {
            let e = g.single_out_edge(*id).expect("output edge");
            g.edge_mut(e).reorder = Some(Reorder {
                rate: f.push,
                sw,
                side: ReorderSide::Consumer,
                addr_gen,
            });
        }
    }

    // --- Transform the region actors and divide their repetition numbers
    // by their lane widths. Strided tapes only: no reorder edges.
    for (id, cfg) in &region_plans {
        let f = g.node(*id).as_filter().expect("filter").clone();
        let vf = simdize_region_actor(&f, cfg)?;
        report.tape_decisions.push(TapeDecision {
            actor: vf.name.clone(),
            input: cfg.input,
            output: cfg.output,
        });
        report.region_actors.push(vf.name.clone());
        g.replace_node(*id, Node::Filter(vf));
        let r = &mut schedule.reps[id.0 as usize];
        debug_assert_eq!(
            *r % cfg.sw as u64,
            0,
            "Equation 1 must make reps divisible by the region lane width"
        );
        *r /= cfg.sw as u64;
    }

    // --- Final validation and init-schedule refresh.
    g.validate()
        .map_err(|e| SimdizeError::Graph(e.to_string()))?;
    schedule.init_reps = compute_init_reps(&g, &schedule.order);
    debug_assert!(
        g.edges().all(|(_, e)| {
            let push = g.node(e.src).push_rate(e.src_port) as u64;
            let pop = g.node(e.dst).pop_rate(e.dst_port) as u64;
            schedule.reps[e.src.0 as usize] * push == schedule.reps[e.dst.0 as usize] * pop
        }),
        "adjusted schedule must still balance every tape"
    );
    Ok((
        Simdized {
            graph: g,
            schedule,
            report,
        },
        colors,
    ))
}

/// Error from [`run_threaded`]: SIMDization or threaded execution failed.
#[derive(Debug)]
pub enum ThreadedError {
    /// Macro-SIMDization rejected the graph.
    Simdize(SimdizeError),
    /// The threaded runtime failed.
    Runtime(macross_runtime::RuntimeError),
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::Simdize(e) => write!(f, "simdize: {e}"),
            ThreadedError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<SimdizeError> for ThreadedError {
    fn from(e: SimdizeError) -> Self {
        ThreadedError::Simdize(e)
    }
}

impl From<macross_runtime::RuntimeError> for ThreadedError {
    fn from(e: macross_runtime::RuntimeError) -> Self {
        ThreadedError::Runtime(e)
    }
}

/// Statically modelled steady-state work per node: `reps * firing_cost`,
/// where a filter's firing cost comes from the static cost model and a
/// switch node's from the elements it moves. The common currency of both
/// [`lpt_placement`] (nodes onto cores) and the service layer's session
/// sharding (whole sessions onto shards).
pub fn steady_node_weights(graph: &Graph, schedule: &Schedule, machine: &Machine) -> Vec<u64> {
    graph
        .node_ids()
        .map(|id| {
            let per_firing = match graph.node(id) {
                Node::Filter(f) => static_firing_cost(f, machine, AddrCosts::default()),
                node => {
                    let moved: u64 = graph
                        .edges()
                        .map(|(_, e)| {
                            let mut m = 0u64;
                            if e.src == id {
                                m += node.push_rate(e.src_port) as u64;
                            }
                            if e.dst == id {
                                m += node.pop_rate(e.dst_port) as u64;
                            }
                            m
                        })
                        .sum();
                    machine.cost.firing + moved
                }
            };
            schedule.reps[id.0 as usize] * per_firing
        })
        .collect()
}

/// Modelled cost of one steady-state iteration of a SIMDized graph — the
/// sum of [`steady_node_weights`].
pub fn modelled_steady_cost(simd: &Simdized, machine: &Machine) -> u64 {
    steady_node_weights(&simd.graph, &simd.schedule, machine)
        .iter()
        .sum()
}

/// Greedy LPT placement over [`steady_node_weights`].
fn lpt_placement(graph: &Graph, schedule: &Schedule, machine: &Machine, cores: usize) -> Vec<u32> {
    let weights = steady_node_weights(graph, schedule, machine);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut load = vec![0u64; cores.max(1)];
    let mut assign = vec![0u32; weights.len()];
    for i in order {
        let core = (0..load.len()).min_by_key(|&c| load[c]).unwrap();
        load[core] += weights[i];
        assign[i] = core as u32;
    }
    assign
}

/// One-call convenience: macro-SIMDize `graph`, place the transformed
/// actors on `cores` worker threads with a greedy LPT over the static
/// cost model, and execute `iters` steady iterations on the threaded
/// runtime ([`macross_runtime::run_threaded`]).
///
/// The sink output is bit-identical to `run_scheduled` on the SIMDized
/// graph (and therefore, by the differential guarantee, to the scalar
/// graph at aligned throughput).
///
/// # Errors
/// Fails if SIMDization rejects the graph or the threaded run fails.
pub fn run_threaded(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
    cores: usize,
    iters: u64,
) -> Result<(macross_runtime::ThreadedRun, Simdized), ThreadedError> {
    let simd = macro_simdize(graph, machine, opts)?;
    let assignment = lpt_placement(&simd.graph, &simd.schedule, machine, cores);
    let run =
        macross_runtime::run_threaded(&simd.graph, &simd.schedule, machine, &assignment, iters)?;
    Ok((run, simd))
}

/// [`run_threaded`] with an explicit work-function engine
/// ([`macross_vm::ExecMode`]): bytecode or the tree-walking oracle. The
/// differential suite uses this to compare both engines across worker
/// counts without rebuilding.
///
/// # Errors
/// Same as [`run_threaded`].
pub fn run_threaded_mode(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
    cores: usize,
    iters: u64,
    mode: macross_vm::ExecMode,
) -> Result<(macross_runtime::ThreadedRun, Simdized), ThreadedError> {
    let simd = macro_simdize(graph, machine, opts)?;
    let assignment = lpt_placement(&simd.graph, &simd.schedule, machine, cores);
    let run = macross_runtime::run_threaded_mode(
        &simd.graph,
        &simd.schedule,
        machine,
        &assignment,
        iters,
        mode,
    )?;
    Ok((run, simd))
}

/// [`run_threaded`] under full supervision: stage failures come back as
/// typed [`macross_runtime::StageFailure`]s inside the report together
/// with the partial output, instead of as an error. The entry point for
/// fault-injection campaigns and any caller that wants graceful
/// degradation (the run drains instead of aborting).
///
/// # Errors
/// Fails only if SIMDization rejects the graph or the placement is
/// malformed — never for stage failures.
pub fn run_threaded_supervised(
    graph: &Graph,
    machine: &Machine,
    opts: &SimdizeOptions,
    cores: usize,
    iters: u64,
    sup_opts: &macross_runtime::SupervisorOptions,
) -> Result<(macross_runtime::SupervisedRun, Simdized), ThreadedError> {
    let simd = macro_simdize(graph, machine, opts)?;
    let assignment = lpt_placement(&simd.graph, &simd.schedule, machine, cores);
    let run = macross_runtime::run_supervised(
        &simd.graph,
        &simd.schedule,
        machine,
        &assignment,
        iters,
        sup_opts,
        &macross_telemetry::TraceSession::disabled(),
    )?;
    Ok((run, simd))
}

/// The LPT placement [`run_threaded`] and [`run_threaded_supervised`] use,
/// exposed so replay bundles can record and reproduce the exact
/// node-to-core assignment of a failing run.
pub fn placement(simd: &Simdized, machine: &Machine, cores: usize) -> Vec<u32> {
    lpt_placement(&simd.graph, &simd.schedule, machine, cores)
}

/// True if the neighbour on the given side is a scalar consumer/producer
/// that can absorb reordered accesses: a sink, splitter, joiner, or a
/// filter that will *not* itself be vectorized.
fn scalar_neighbor(g: &Graph, id: NodeId, input_side: bool, selected: &[NodeId]) -> bool {
    let edge = if input_side {
        g.single_in_edge(id)
    } else {
        g.single_out_edge(id)
    };
    let Some(e) = edge else { return false };
    let other = if input_side {
        g.edge(e).src
    } else {
        g.edge(e).dst
    };
    if g.edge(e).reorder.is_some() || g.edge(e).width != 1 {
        return false;
    }
    match g.node(other) {
        Node::Filter(f) => {
            if selected.contains(&other) {
                return false;
            }
            // A region-annotated neighbour may later be region-vectorized
            // into a strided (rpush-style) producer or consumer, so it
            // cannot absorb reordered accesses.
            if f.region.is_some() {
                return false;
            }
            // The scalar side must access the tape with plain pops/pushes:
            // a peeking consumer's window is supported by the remapping,
            // but rpush-style producers are not.
            if !input_side {
                // `other` is the consumer; any filter consumer works (pop
                // and peek both remap).
                let _ = f;
                true
            } else {
                // `other` is the producer; it must not use rpush (none of
                // our scalar actors do — rpush is compiler-generated).
                let mut has_rpush = false;
                for s in &f.work {
                    s.walk(&mut |s| {
                        if matches!(
                            s,
                            macross_streamir::stmt::Stmt::RPush { .. }
                                | macross_streamir::stmt::Stmt::VPush { .. }
                        ) {
                            has_rpush = true;
                        }
                    });
                }
                !has_rpush
            }
        }
        Node::Splitter(_) | Node::Joiner(_) => true,
        Node::Sink => !input_side,
        Node::HSplitter { .. } | Node::HJoiner { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{Ty, Value};
    use macross_vm::{run_scheduled, Machine, RunResult};

    fn f32_source(name: &str) -> StreamSpec {
        let mut src = FilterBuilder::new(name, 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n) * 0.5f32);
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 777i32),
            );
        });
        src.build_spec()
    }

    fn scale_filter(name: &str, k: f32) -> StreamSpec {
        let mut fb = FilterBuilder::new(name, 2, 2, 2, ScalarTy::F32);
        let a = fb.local("a", Ty::Scalar(ScalarTy::F32));
        let b2 = fb.local("b", Ty::Scalar(ScalarTy::F32));
        fb.work(move |b| {
            b.set(a, pop());
            b.set(b2, pop());
            b.push(v(a) * k + v(b2));
            b.push(v(b2) * k - v(a));
        });
        fb.build_spec()
    }

    /// Run scalar and SIMDized versions over aligned schedules; check
    /// bit-exact outputs and return (scalar, simd) results.
    pub(crate) fn differential(
        graph: &Graph,
        machine: &Machine,
        opts: &SimdizeOptions,
        iters: u64,
    ) -> (RunResult, RunResult, SimdizeReport) {
        let simd = macro_simdize(graph, machine, opts).unwrap();
        let mut ssched = Schedule::compute(graph).unwrap();
        // Align throughput on the first source (node with no inputs).
        let src = graph
            .node_ids()
            .find(|&id| graph.in_edges(id).is_empty())
            .expect("graph has a source");
        let a_rep = ssched.rep(src);
        let b_rep = simd.schedule.reps[src.0 as usize];
        let l = macross_sdf::lcm(a_rep, b_rep);
        ssched.scale(l / a_rep);
        let mut vsched = simd.schedule.clone();
        vsched.scale(l / b_rep);
        let a = run_scheduled(graph, &ssched, machine, iters).unwrap();
        let b = run_scheduled(&simd.graph, &vsched, machine, iters).unwrap();
        assert_eq!(a.output.len(), b.output.len(), "throughput mismatch");
        assert!(!a.output.is_empty());
        for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
            assert!(x.bits_eq(*y), "output {i}: scalar {x:?} vs simd {y:?}");
        }
        (a, b, simd.report)
    }

    #[test]
    fn pipeline_gets_vertically_fused_and_beats_scalar() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f1", 2.0),
            scale_filter("f2", 3.0),
            scale_filter("f3", 4.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (a, b, report) = differential(&g, &machine, &SimdizeOptions::all(), 8);
        assert_eq!(report.vertical_chains.len(), 1);
        assert_eq!(report.vertical_chains[0], vec!["f1", "f2", "f3"]);
        assert!(
            b.total_cycles() < a.total_cycles(),
            "simd {} vs scalar {}",
            b.total_cycles(),
            a.total_cycles()
        );
    }

    #[test]
    fn figure2_style_graph_end_to_end() {
        // Source -> splitjoin of 4 isomorphic stateless+stateful pipelines
        // -> D -> E chain -> sink: exercises horizontal + vertical +
        // single-actor together.
        let mk_b = |k: f32| {
            let mut fb = FilterBuilder::new("B", 4, 4, 1, ScalarTy::F32);
            let a0 = fb.local("a0", Ty::Scalar(ScalarTy::F32));
            let a1 = fb.local("a1", Ty::Scalar(ScalarTy::F32));
            fb.work(move |b| {
                b.set(a0, pop() + pop());
                b.set(a1, pop() * pop());
                b.push((v(a0) + v(a1)) / k);
            });
            fb.build()
        };
        let mk_c = || {
            let mut fb = FilterBuilder::new("C", 1, 1, 1, ScalarTy::F32);
            let s = fb.state("delay", Ty::Scalar(ScalarTy::F32));
            fb.work(|b| {
                b.push(v(s));
                b.set(s, pop());
            });
            fb.build()
        };
        let branches = (0..4)
            .map(|k| {
                StreamSpec::pipeline(vec![
                    StreamSpec::filter(mk_b(5.0 + k as f32), ScalarTy::F32),
                    StreamSpec::filter(mk_c(), ScalarTy::F32),
                ])
            })
            .collect();
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            StreamSpec::SplitJoin {
                split: macross_streamir::SplitKind::RoundRobin(vec![4, 4, 4, 4]),
                branches,
                join: vec![1, 1, 1, 1],
            },
            scale_filter("D", 2.0),
            scale_filter("E", 3.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (a, b, report) = differential(&g, &machine, &SimdizeOptions::all(), 6);
        assert_eq!(report.horizontal_groups.len(), 1);
        assert!(!report.vertical_chains.is_empty());
        assert!(b.total_cycles() < a.total_cycles());
    }

    #[test]
    fn unprofitable_actor_skipped() {
        // A peek-heavy FIR whose strided SIMDization is slower than scalar.
        let mut fir = FilterBuilder::new("fir", 8, 1, 1, ScalarTy::F32);
        let i = fir.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fir.local("acc", Ty::Scalar(ScalarTy::F32));
        let junk = fir.local("junk", Ty::Scalar(ScalarTy::F32));
        fir.work(|b| {
            b.set(acc, 0.0f32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + peek(v(i)));
            });
            b.set(junk, pop());
            b.push(v(acc));
        });
        let g = StreamSpec::pipeline(vec![f32_source("src"), fir.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let machine = Machine::core_i7();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        assert_eq!(simd.report.skipped_unprofitable, vec!["fir"]);
        assert!(simd.report.single_actors.is_empty());
    }

    #[test]
    fn sagu_machine_prefers_vector_reorder() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f", 2.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let sagu = Machine::core_i7_with_sagu();
        let (_, _, report) = differential(&g, &sagu, &SimdizeOptions::all(), 6);
        let d = &report.tape_decisions[0];
        assert_eq!(d.input, TapeMode::VectorReorder);
        assert_eq!(d.output, TapeMode::VectorReorder);

        // Without the SAGU the software reorder cost pushes the model to
        // permute (p = 2 is a power of two) or strided.
        let base = Machine::core_i7();
        let (_, _, report2) = differential(&g, &base, &SimdizeOptions::all(), 6);
        assert_ne!(report2.tape_decisions[0].input, TapeMode::VectorReorder);
    }

    #[test]
    fn sagu_improves_cycles() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f", 2.0),
            scale_filter("g", 3.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let base = Machine::core_i7();
        let sagu = Machine::core_i7_with_sagu();
        let (_, b_base, _) = differential(&g, &base, &SimdizeOptions::all(), 8);
        let (_, b_sagu, _) = differential(&g, &sagu, &SimdizeOptions::all(), 8);
        assert!(
            b_sagu.total_cycles() <= b_base.total_cycles(),
            "sagu {} vs base {}",
            b_sagu.total_cycles(),
            b_base.total_cycles()
        );
    }

    #[test]
    fn equation1_scaling_recorded() {
        // Actor with repetition number 3 against SW=4 forces M=4; with rep
        // 2 forces M=2.
        let mut up = FilterBuilder::new("up", 2, 2, 3, ScalarTy::F32);
        up.work(|b| {
            b.push(pop());
            b.push(pop() * 2.0f32);
            b.push(0.25f32);
        });
        let mut down = FilterBuilder::new("down", 3, 3, 1, ScalarTy::F32);
        down.work(|b| {
            b.push(pop() + pop() + pop());
        });
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            up.build_spec(),
            down.build_spec(),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        // up and down fuse into 1up_1down? reps: src 2, up 1, down 1. After
        // fusion rep 1 -> M = 4.
        assert_eq!(simd.report.scale_factor, 4);
        let _ = Value::I32(0);
    }

    #[test]
    fn pass_events_trace_the_pipeline() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f1", 2.0),
            scale_filter("f2", 3.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        let passes = &simd.report.passes;
        let kinds: Vec<Pass> = passes.iter().map(|e| e.pass).collect();
        assert!(kinds.contains(&Pass::Prepass));
        assert!(kinds.contains(&Pass::Vertical));
        assert!(kinds.contains(&Pass::SingleActor));
        assert!(kinds.contains(&Pass::Equation1));
        // Every vectorization decision carries its cost-model estimates.
        let sa = passes.iter().find(|e| e.pass == Pass::SingleActor).unwrap();
        assert!(sa.est_scalar_cycles > 0 && sa.est_vector_cycles > 0);
        assert!(sa.est_speedup() > 1.0, "selected actors must model faster");
        assert_eq!(sa.simd_width, machine.simd_width as u64);
        // And the unprofitable path records its evidence too.
        let mut fir = FilterBuilder::new("fir", 8, 1, 1, ScalarTy::F32);
        let i = fir.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fir.local("acc", Ty::Scalar(ScalarTy::F32));
        let junk = fir.local("junk", Ty::Scalar(ScalarTy::F32));
        fir.work(|b| {
            b.set(acc, 0.0f32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + peek(v(i)));
            });
            b.set(junk, pop());
            b.push(v(acc));
        });
        let g2 = StreamSpec::pipeline(vec![f32_source("src"), fir.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let simd2 = macro_simdize(&g2, &machine, &SimdizeOptions::all()).unwrap();
        let up = simd2
            .report
            .passes
            .iter()
            .find(|e| e.pass == Pass::Unprofitable)
            .expect("fir must be recorded as unprofitable");
        assert_eq!(up.actor, "fir");
        assert!(up.est_vector_cycles >= 4 * up.est_scalar_cycles);
    }

    #[test]
    fn run_threaded_matches_interpreter() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f1", 2.0),
            scale_filter("f2", 3.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (thr, simd) = run_threaded(&g, &machine, &SimdizeOptions::all(), 2, 5).unwrap();
        let seq = run_scheduled(&simd.graph, &simd.schedule, &machine, 5).unwrap();
        assert_eq!(thr.output.len(), seq.output.len());
        for (a, b) in seq.output.iter().zip(&thr.output) {
            assert!(a.bits_eq(*b), "threaded output diverged: {a:?} vs {b:?}");
        }
        assert_eq!(thr.report.cores, 2);
    }

    fn iir_bank_filter(name: &str, regions: usize) -> StreamSpec {
        let mut fb = FilterBuilder::new(name, 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", regions);
        let y = fb.region_var("y", ScalarTy::F32);
        let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
        fb.init(|b| {
            b.for_(j, regions as i32, |b| {
                b.set_idx(y, v(j), cast(ScalarTy::F32, v(j)) * 0.125f32);
            });
        });
        fb.work(|b| {
            b.set_idx(y, v(cur), idx(y, v(cur)) * 0.5f32 + pop() * 0.5f32);
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(regions as i32));
        });
        fb.build_spec()
    }

    #[test]
    fn region_actor_vectorized_and_bit_exact() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            iir_bank_filter("bank", 8),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (a, b, report) = differential(&g, &machine, &SimdizeOptions::all(), 8);
        assert_eq!(report.region_actors, vec!["bank_r4"]);
        assert!(report
            .passes
            .iter()
            .any(|e| e.pass == Pass::Region && e.actor == "bank"));
        assert!(
            b.total_cycles() < a.total_cycles(),
            "region simd {} should beat scalar {}",
            b.total_cycles(),
            a.total_cycles()
        );
    }

    #[test]
    fn region_disabled_leaves_actor_scalar() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            iir_bank_filter("bank", 8),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let opts = SimdizeOptions {
            region: false,
            ..SimdizeOptions::all()
        };
        let simd = macro_simdize(&g, &machine, &opts).unwrap();
        assert!(simd.report.region_actors.is_empty());
        assert!(
            simd.graph.nodes().any(|(_, n)| n.name() == "bank"),
            "bank must stay scalar"
        );
        // And the differential still holds (scalar == scalar).
        differential(&g, &machine, &opts, 4);
    }

    #[test]
    fn malformed_region_annotation_falls_back_scalar() {
        // Cross-region write: annotation is a lie; driver must keep the
        // actor scalar and stay bit-exact rather than vectorize it.
        let mut fb = FilterBuilder::new("liar", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, (v(cur) + 1i32) % c(4i32), pop());
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            StreamSpec::filter(fb.build(), ScalarTy::F32),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (_, _, report) = differential(&g, &machine, &SimdizeOptions::all(), 6);
        assert!(report.region_actors.is_empty());
        assert!(!report.passes.iter().any(|e| e.pass == Pass::Region));
    }

    #[test]
    fn region_width_divisor_schedules_mixed_widths() {
        // R=2 on a 4-wide machine: lane width drops to 2; a stateless
        // actor in the same pipeline still vectorizes at 4. Equation 1
        // must cover both.
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f", 2.0),
            iir_bank_filter("bank2", 2),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let (_, _, report) = differential(&g, &machine, &SimdizeOptions::all(), 8);
        assert_eq!(report.region_actors, vec!["bank2_r2"]);
        let ev = report
            .passes
            .iter()
            .find(|e| e.pass == Pass::Region)
            .unwrap();
        assert_eq!(ev.simd_width, 2);
        assert!(!report.single_actors.is_empty());
    }

    #[test]
    fn options_disable_transforms() {
        let g = StreamSpec::pipeline(vec![
            f32_source("src"),
            scale_filter("f1", 2.0),
            scale_filter("f2", 3.0),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let machine = Machine::core_i7();
        let single_only = macro_simdize(&g, &machine, &SimdizeOptions::single_only()).unwrap();
        assert!(single_only.report.vertical_chains.is_empty());
        assert_eq!(single_only.report.single_actors.len(), 2);
        let (a, b, _) = differential(&g, &machine, &SimdizeOptions::single_only(), 6);
        assert!(b.total_cycles() < a.total_cycles());
    }
}
