//! Permutation-network construction for the permutation-based tape accesses
//! of Section 3.4 (Figure 7): replacing `SW * X` strided scalar tape
//! accesses with `X` vector accesses plus `extract_even`/`extract_odd`
//! permutations.
//!
//! The building block is one *round* over `k` vectors of width `SW`:
//!
//! ```text
//! new[i]       = extract_even(old[2i], old[2i+1])   for i in 0..k/2
//! new[k/2 + i] = extract_odd (old[2i], old[2i+1])   for i in 0..k/2
//! ```
//!
//! One round moves the element at concatenation position `x` to position
//! `(x >> 1) + (x & 1) * N/2`; composing `m` rounds yields
//! `(x >> m) + (x mod 2^m) * N/2^m` (each round promotes the next-lowest
//! bit to the top while previously promoted bits shift down in lockstep,
//! so their order is preserved). Choosing `m` realizes both layouts the
//! SIMDizer needs, with no residual reordering:
//!
//! - **gather** (input side): `p` vector pops of contiguous tape data
//!   (`m = log2 p` rounds) become `p` vectors where vector `j` holds lane
//!   `l`'s `j`-th pop. Cost: `p * log2(p)` permutes — the paper's
//!   `X_r * lg2(X_r)` formula. Requires `p` to be a power of two.
//! - **scatter** (output side): `q` result vectors (vector `j` = the lanes'
//!   `j`-th pushes; `m = log2 SW` rounds) become the contiguous memory
//!   image. Cost `q * log2(SW)`; requires only that `q` is even (the paper
//!   states power-of-two push counts, which this generalizes).

/// A permutation plan: `rounds` full even/odd rounds over `k` vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermPlan {
    /// Number of vectors flowing through the network.
    pub k: usize,
    /// Number of even/odd rounds.
    pub rounds: usize,
}

impl PermPlan {
    /// Total `extract_even`/`extract_odd` operations the plan costs.
    pub fn op_count(&self) -> usize {
        self.k * self.rounds
    }

    /// Apply the plan to concrete vectors (used by tests and the Figure-7
    /// bench; the SIMDizer instead emits the equivalent IR).
    ///
    /// # Panics
    /// Panics if the number of vectors does not match the plan.
    pub fn apply<T: Copy>(&self, vecs: &[Vec<T>]) -> Vec<Vec<T>> {
        assert_eq!(vecs.len(), self.k, "plan expects {} vectors", self.k);
        let mut cur: Vec<Vec<T>> = vecs.to_vec();
        for _ in 0..self.rounds {
            let mut next: Vec<Vec<T>> = Vec::with_capacity(self.k);
            for i in 0..self.k / 2 {
                next.push(extract(&cur[2 * i], &cur[2 * i + 1], 0));
            }
            for i in 0..self.k / 2 {
                next.push(extract(&cur[2 * i], &cur[2 * i + 1], 1));
            }
            cur = next;
        }
        cur
    }
}

fn extract<T: Copy>(a: &[T], b: &[T], parity: usize) -> Vec<T> {
    a.iter()
        .chain(b.iter())
        .copied()
        .skip(parity)
        .step_by(2)
        .collect()
}

/// True if the input-side permutation optimization applies: pop count a
/// power of two (1 is the trivial no-permute case).
pub fn gather_applicable(pop_rate: usize) -> bool {
    pop_rate >= 1 && pop_rate.is_power_of_two()
}

/// True if the output-side permutation optimization applies: any even push
/// count (or the trivial 1).
pub fn scatter_applicable(push_rate: usize) -> bool {
    push_rate == 1 || (push_rate >= 2 && push_rate.is_multiple_of(2))
}

/// Plan for the input side: given `p` vector loads of contiguous tape data
/// (`p * sw` elements), produce `p` vectors where vector `j`'s lane `l` is
/// element `l * p + j` — the data each of the `sw` parallel executions'
/// `j`-th pop needs.
///
/// # Panics
/// Panics unless `p` is a power of two.
pub fn gather_plan(p: usize, sw: usize) -> PermPlan {
    assert!(
        gather_applicable(p),
        "gather plan requires a power-of-two pop count"
    );
    let _ = sw;
    PermPlan {
        k: p,
        rounds: p.trailing_zeros() as usize,
    }
}

/// Plan for the output side: given `q` result vectors where vector `j`'s
/// lane `l` is execution `l`'s `j`-th push, produce the `q` vectors of the
/// contiguous memory image (vector `c` covers elements
/// `c * sw .. (c+1) * sw`).
///
/// # Panics
/// Panics unless `q` is even or 1.
pub fn scatter_plan(q: usize, sw: usize) -> PermPlan {
    assert!(
        scatter_applicable(q),
        "scatter plan requires an even push count"
    );
    if q == 1 {
        return PermPlan { k: 1, rounds: 0 };
    }
    PermPlan {
        k: q,
        rounds: sw.trailing_zeros() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directly gather stride-`p`: logical vector j lane l = elem l*p+j.
    fn reference_gather(elems: &[i32], p: usize, sw: usize) -> Vec<Vec<i32>> {
        (0..p)
            .map(|j| (0..sw).map(|l| elems[l * p + j]).collect())
            .collect()
    }

    #[test]
    fn figure7_example() {
        // 16 contiguous elements, p = 4, SW = 4: "4 vector pops and then
        // use 8 permutation operations (4 extract_even and 4 extract_odd)".
        let p = 4;
        let sw = 4;
        let elems: Vec<i32> = (0..16).collect();
        let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
        let plan = gather_plan(p, sw);
        assert_eq!(plan.op_count(), 8, "X * lg2(X) = 4 * 2");
        let got = plan.apply(&loads);
        assert_eq!(got, reference_gather(&elems, p, sw));
        // The strided vectors of Figure 7.
        assert_eq!(got[0], vec![0, 4, 8, 12]);
        assert_eq!(got[1], vec![1, 5, 9, 13]);
        assert_eq!(got[3], vec![3, 7, 11, 15]);
    }

    #[test]
    fn gather_matches_reference_for_all_powers() {
        for sw in [2usize, 4, 8, 16] {
            for p in [1usize, 2, 4, 8, 16, 32] {
                let elems: Vec<i32> = (0..(p * sw) as i32).collect();
                let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
                let plan = gather_plan(p, sw);
                assert_eq!(plan.op_count(), p * (p.trailing_zeros() as usize));
                assert_eq!(
                    plan.apply(&loads),
                    reference_gather(&elems, p, sw),
                    "p={p} sw={sw}"
                );
            }
        }
    }

    /// Memory image reference: element at position l*q+j is vector j lane l.
    fn reference_scatter(result_vecs: &[Vec<i32>], q: usize, sw: usize) -> Vec<Vec<i32>> {
        let n = q * sw;
        let mut mem = vec![0; n];
        for (j, vec) in result_vecs.iter().enumerate() {
            for (l, &v) in vec.iter().enumerate() {
                mem[l * q + j] = v;
            }
        }
        mem.chunks(sw).map(|c| c.to_vec()).collect()
    }

    #[test]
    fn scatter_matches_reference() {
        for sw in [2usize, 4, 8] {
            for q in [1usize, 2, 4, 6, 8, 12, 16] {
                let result_vecs: Vec<Vec<i32>> = (0..q)
                    .map(|j| (0..sw).map(|l| (100 * l + j) as i32).collect())
                    .collect();
                let plan = scatter_plan(q, sw);
                assert_eq!(
                    plan.apply(&result_vecs),
                    reference_scatter(&result_vecs, q, sw),
                    "q={q} sw={sw}"
                );
            }
        }
    }

    #[test]
    fn applicability_conditions() {
        assert!(gather_applicable(1));
        assert!(gather_applicable(8));
        assert!(!gather_applicable(6));
        assert!(!gather_applicable(0));
        assert!(scatter_applicable(1));
        assert!(scatter_applicable(2));
        assert!(scatter_applicable(6));
        assert!(!scatter_applicable(3));
        assert!(!scatter_applicable(0));
    }

    #[test]
    fn trivial_plans_are_identity() {
        let plan = gather_plan(1, 4);
        assert_eq!(plan.op_count(), 0);
        let v = vec![vec![1, 2, 3, 4]];
        assert_eq!(plan.apply(&v), v);
        let splan = scatter_plan(1, 4);
        assert_eq!(splan.op_count(), 0);
        assert_eq!(splan.apply(&v), v);
    }
}
