//! Prepass classic optimizations (Algorithm 1, "Prepass-Optimizations"):
//! constant folding (including intrinsic calls), algebraic identities,
//! constant-branch and trivial-loop simplification, and dead-local-store
//! elimination.
//!
//! The other prepass the paper names — *static parameter propagation* — is
//! performed by the `macross-streamlang` elaborator (parameters become
//! constants at instantiation) and by the benchmark builders, which bake
//! parameters into constants directly.
//!
//! Every rewrite here is bit-exactness-preserving: compile-time folds use
//! the same `eval_*` kernels the VM executes, so folding `sin(0.5)` now or
//! at run time produces the identical f32.

use macross_streamir::expr::{eval_binop, eval_intrinsic, eval_unop, BinOp, Expr, LValue, VarId};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::graph::{Graph, Node};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::Value;
use std::collections::HashSet;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expressions folded to constants.
    pub folded: usize,
    /// Algebraic identities applied.
    pub identities: usize,
    /// Constant branches resolved.
    pub branches_resolved: usize,
    /// Loops removed or unrolled (count 0/1).
    pub loops_simplified: usize,
    /// Dead local stores removed.
    pub dead_stores: usize,
}

impl OptStats {
    /// Total rewrites.
    pub fn total(&self) -> usize {
        self.folded
            + self.identities
            + self.branches_resolved
            + self.loops_simplified
            + self.dead_stores
    }

    fn absorb(&mut self, o: OptStats) {
        self.folded += o.folded;
        self.identities += o.identities;
        self.branches_resolved += o.branches_resolved;
        self.loops_simplified += o.loops_simplified;
        self.dead_stores += o.dead_stores;
    }
}

/// Optimize one filter's `init` and `work` bodies in place.
pub fn optimize_filter(f: &mut Filter) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let mut round = OptStats::default();
        let init = std::mem::take(&mut f.init);
        f.init = opt_block(init, &mut round);
        let work = std::mem::take(&mut f.work);
        f.work = opt_block(work, &mut round);
        round.dead_stores += eliminate_dead_stores(f);
        let progress = round.total() > 0;
        stats.absorb(round);
        if !progress {
            break;
        }
    }
    stats
}

/// Optimize every filter of a graph in place.
pub fn prepass_optimize(graph: &mut Graph) -> OptStats {
    let mut stats = OptStats::default();
    for id in graph.node_ids().collect::<Vec<_>>() {
        if let Node::Filter(f) = graph.node_mut(id) {
            stats.absorb(optimize_filter(f));
        }
    }
    stats
}

fn opt_block(stmts: Vec<Stmt>, stats: &mut OptStats) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                let lv = match lv {
                    LValue::Index(v, i) => LValue::Index(v, opt_expr(i, stats)),
                    LValue::LaneIndex(v, i, l) => LValue::LaneIndex(v, opt_expr(i, stats), l),
                    LValue::VIndex(v, i, w) => LValue::VIndex(v, opt_expr(i, stats), w),
                    other => other,
                };
                out.push(Stmt::Assign(lv, opt_expr(e, stats)));
            }
            Stmt::Push(e) => out.push(Stmt::Push(opt_expr(e, stats))),
            Stmt::RPush { value, offset } => out.push(Stmt::RPush {
                value: opt_expr(value, stats),
                offset: opt_expr(offset, stats),
            }),
            Stmt::VPush { value, width } => out.push(Stmt::VPush {
                value: opt_expr(value, stats),
                width,
            }),
            Stmt::LPush(c, e) => out.push(Stmt::LPush(c, opt_expr(e, stats))),
            Stmt::LVPush(c, e, w) => out.push(Stmt::LVPush(c, opt_expr(e, stats), w)),
            Stmt::For { var, count, body } => {
                let count = opt_expr(count, stats);
                let body = opt_block(body, stats);
                match count.as_const_usize() {
                    Some(0) if block_tape_free(&body) => {
                        stats.loops_simplified += 1;
                        // Dropped entirely: zero iterations.
                    }
                    Some(1) => {
                        stats.loops_simplified += 1;
                        out.push(Stmt::Assign(LValue::Var(var), Expr::Const(Value::I32(0))));
                        out.extend(body);
                    }
                    _ => out.push(Stmt::For { var, count, body }),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = opt_expr(cond, stats);
                let then_branch = opt_block(then_branch, stats);
                let else_branch = opt_block(else_branch, stats);
                if let Expr::Const(v) = &cond {
                    stats.branches_resolved += 1;
                    if v.is_truthy() {
                        out.extend(then_branch);
                    } else {
                        out.extend(else_branch);
                    }
                } else if then_branch.is_empty() && else_branch.is_empty() && !cond.reads_tape() {
                    stats.branches_resolved += 1;
                } else {
                    out.push(Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    });
                }
            }
            other => out.push(other),
        }
    }
    out
}

fn block_tape_free(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| {
        let mut clean = true;
        s.walk_exprs(&mut |e| {
            if e.reads_tape() {
                clean = false;
            }
        });
        s.walk(&mut |s| {
            if matches!(
                s,
                Stmt::Push(_)
                    | Stmt::RPush { .. }
                    | Stmt::VPush { .. }
                    | Stmt::LPush(_, _)
                    | Stmt::LVPush(_, _, _)
                    | Stmt::AdvanceRead(_)
                    | Stmt::AdvanceWrite(_)
            ) {
                clean = false;
            }
        });
        clean
    })
}

fn opt_expr(e: Expr, stats: &mut OptStats) -> Expr {
    match e {
        Expr::Unary(op, a) => {
            let a = opt_expr(*a, stats);
            if let Expr::Const(v) = a {
                stats.folded += 1;
                Expr::Const(eval_unop(op, v))
            } else {
                Expr::Unary(op, Box::new(a))
            }
        }
        Expr::Binary(op, a, b) => {
            let a = opt_expr(*a, stats);
            let b = opt_expr(*b, stats);
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) if x.ty() == y.ty() => {
                    stats.folded += 1;
                    return Expr::Const(eval_binop(op, *x, *y));
                }
                _ => {}
            }
            // Algebraic identities (safe ones only).
            if let Some(simplified) = identity(op, &a, &b) {
                stats.identities += 1;
                return simplified;
            }
            Expr::bin(op, a, b)
        }
        Expr::Cast(t, a) => {
            let a = opt_expr(*a, stats);
            match a {
                Expr::Const(v) => {
                    stats.folded += 1;
                    Expr::Const(v.cast(t))
                }
                a => Expr::Cast(t, Box::new(a)),
            }
        }
        Expr::Call(i, args) => {
            let args: Vec<Expr> = args.into_iter().map(|a| opt_expr(a, stats)).collect();
            if args.iter().all(|a| matches!(a, Expr::Const(_))) {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Const(v) => *v,
                        _ => unreachable!(),
                    })
                    .collect();
                stats.folded += 1;
                Expr::Const(eval_intrinsic(i, &vals))
            } else {
                Expr::Call(i, args)
            }
        }
        Expr::Index(v, i) => Expr::Index(v, Box::new(opt_expr(*i, stats))),
        Expr::VIndex(v, i, w) => Expr::VIndex(v, Box::new(opt_expr(*i, stats)), w),
        Expr::Peek(o) => Expr::Peek(Box::new(opt_expr(*o, stats))),
        Expr::VPeek { offset, width } => Expr::VPeek {
            offset: Box::new(opt_expr(*offset, stats)),
            width,
        },
        Expr::Lane(a, l) => Expr::Lane(Box::new(opt_expr(*a, stats)), l),
        Expr::Splat(a, w) => Expr::Splat(Box::new(opt_expr(*a, stats)), w),
        Expr::PermuteEven(a, b) => {
            Expr::PermuteEven(Box::new(opt_expr(*a, stats)), Box::new(opt_expr(*b, stats)))
        }
        Expr::PermuteOdd(a, b) => {
            Expr::PermuteOdd(Box::new(opt_expr(*a, stats)), Box::new(opt_expr(*b, stats)))
        }
        other => other,
    }
}

fn is_const(e: &Expr, v: f64) -> bool {
    matches!(e, Expr::Const(c) if c.as_f64() == v && !matches!(c, Value::F32(f) if f.is_sign_negative() && *f == 0.0))
}

fn is_int_const(e: &Expr, v: i64) -> bool {
    matches!(e, Expr::Const(Value::I32(c)) if *c as i64 == v)
        || matches!(e, Expr::Const(Value::I64(c)) if *c == v)
}

/// Safe algebraic identities. Floating-point identities are restricted to
/// `x * 1.0` and `x / 1.0` (exact in IEEE); `x + 0.0` is *not* rewritten
/// (it is not an identity for `-0.0`). `x * 0` is only rewritten for
/// integers and only when `x` is effect-free.
fn identity(op: BinOp, a: &Expr, b: &Expr) -> Option<Expr> {
    match op {
        BinOp::Mul => {
            if is_const(b, 1.0) {
                return Some(a.clone());
            }
            if is_const(a, 1.0) {
                return Some(b.clone());
            }
            if is_int_const(b, 0) && !a.reads_tape() {
                return Some(b.clone());
            }
            if is_int_const(a, 0) && !b.reads_tape() {
                return Some(a.clone());
            }
            None
        }
        BinOp::Div => {
            if is_const(b, 1.0) {
                return Some(a.clone());
            }
            None
        }
        BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
            if is_int_const(b, 0) {
                return Some(a.clone());
            }
            if op == BinOp::Add && is_int_const(a, 0) {
                return Some(b.clone());
            }
            None
        }
        _ => None,
    }
}

/// Remove assignments to `Local` scalar variables that are never read.
/// Arrays and state are left alone; RHSes with tape reads are kept.
fn eliminate_dead_stores(f: &mut Filter) -> usize {
    // Collect read variables across init+work.
    let mut read: HashSet<VarId> = HashSet::new();
    let mut loop_vars: HashSet<VarId> = HashSet::new();
    let mut collect = |stmts: &[Stmt]| {
        for s in stmts {
            s.walk_exprs(&mut |e| {
                if let Expr::Var(v) | Expr::Index(v, _) | Expr::VIndex(v, _, _) = e {
                    read.insert(*v);
                }
            });
            s.walk(&mut |s| match s {
                Stmt::For { var, .. } => {
                    loop_vars.insert(*var);
                }
                Stmt::Assign(lv, _)
                    // Partial writes keep the variable alive as a read.
                    if !matches!(lv, LValue::Var(_)) => {
                        read.insert(lv.var());
                    }
                _ => {}
            });
        }
    };
    collect(&f.init);
    collect(&f.work);

    let mut removed = 0;
    let dead = |lv: &LValue, e: &Expr, f: &Filter, read: &HashSet<VarId>| -> bool {
        if let LValue::Var(v) = lv {
            f.var(*v).kind == VarKind::Local && !read.contains(v) && !e.reads_tape()
        } else {
            false
        }
    };
    type DeadCheck<'a> = &'a dyn Fn(&LValue, &Expr, &Filter, &HashSet<VarId>) -> bool;
    fn sweep(
        stmts: Vec<Stmt>,
        f: &Filter,
        read: &HashSet<VarId>,
        dead: DeadCheck<'_>,
        removed: &mut usize,
    ) -> Vec<Stmt> {
        stmts
            .into_iter()
            .filter_map(|s| match s {
                Stmt::Assign(lv, e) if dead(&lv, &e, f, read) => {
                    *removed += 1;
                    None
                }
                Stmt::For { var, count, body } => Some(Stmt::For {
                    var,
                    count,
                    body: sweep(body, f, read, dead, removed),
                }),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => Some(Stmt::If {
                    cond,
                    then_branch: sweep(then_branch, f, read, dead, removed),
                    else_branch: sweep(else_branch, f, read, dead, removed),
                }),
                other => Some(other),
            })
            .collect()
    }
    let init = std::mem::take(&mut f.init);
    f.init = sweep(init, f, &read, &dead, &mut removed);
    let work = std::mem::take(&mut f.work);
    f.work = sweep(work, f, &read, &dead, &mut removed);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::analysis::check_rates;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};

    #[test]
    fn folds_constants_and_intrinsics() {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop() * (c(2.0f32) + 1.0f32) + sqrt(c(16.0f32)));
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert!(stats.folded >= 2, "{stats:?}");
        let text = f.work[0].to_string();
        assert!(text.contains("3.0f"), "{text}");
        assert!(text.contains("4.0f"), "{text}");
        check_rates(&f).unwrap();
    }

    #[test]
    fn mul_by_one_removed_div_kept_exact() {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop() * 1.0f32);
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert_eq!(stats.identities, 1);
        assert_eq!(f.work[0].to_string().trim(), "push(pop());");
    }

    #[test]
    fn add_zero_float_not_rewritten() {
        // x + 0.0 maps -0.0 to +0.0; must stay.
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop() + 0.0f32);
        });
        let mut f = fb.build();
        let _ = optimize_filter(&mut f);
        assert!(f.work[0].to_string().contains("+ 0.0f"));
    }

    #[test]
    fn int_identities_applied() {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        fb.work(|b| {
            b.push(((pop() + 0i32) ^ 0i32) << 0i32);
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert!(stats.identities >= 3);
        assert_eq!(f.work[0].to_string().trim(), "push(pop());");
    }

    #[test]
    fn const_branch_resolved() {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        fb.work(|b| {
            b.if_else(
                c(1i32),
                |b| {
                    b.push(pop() + 1i32);
                },
                |b| {
                    b.push(pop() + 2i32);
                },
            );
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert_eq!(stats.branches_resolved, 1);
        assert_eq!(f.work.len(), 1);
        assert!(f.work[0].to_string().contains("+ 1)"));
        check_rates(&f).unwrap();
    }

    #[test]
    fn single_iteration_loop_unrolled() {
        let mut fb = FilterBuilder::new("f", 1, 1, 1, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 1i32, |b| {
                b.push(pop() + v(i));
            });
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert_eq!(stats.loops_simplified, 1);
        assert!(f.work.iter().all(|s| !matches!(s, Stmt::For { .. })));
        check_rates(&f).unwrap();
    }

    #[test]
    fn dead_store_removed_but_tape_reads_kept() {
        let mut fb = FilterBuilder::new("f", 2, 2, 1, ScalarTy::I32);
        let unused = fb.local("unused", Ty::Scalar(ScalarTy::I32));
        let junk = fb.local("junk", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(unused, 42i32); // dead: removable
            b.set(junk, pop()); // dead value but pops: must stay
            b.push(pop());
        });
        let mut f = fb.build();
        let stats = optimize_filter(&mut f);
        assert_eq!(stats.dead_stores, 1);
        assert_eq!(f.work.len(), 2);
        check_rates(&f).unwrap();
    }

    #[test]
    fn whole_suite_unchanged_behaviour() {
        use macross_sdf::Schedule;
        use macross_vm::{run_scheduled, Machine};
        // Prepass on a realistic filter graph: output must be identical and
        // cycles must not increase.
        let mut fb = FilterBuilder::new("poly", 1, 1, 1, ScalarTy::F32);
        let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(x, pop());
            b.push(v(x) * (c(0.5f32) * 2.0f32) + sqrt(c(4.0f32)) * v(x) + 0.0f32 * 0.0f32);
        });
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n));
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 100i32),
            );
        });
        let g = macross_streamir::builder::StreamSpec::pipeline(vec![
            src.build_spec(),
            fb.build_spec(),
            macross_streamir::builder::StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let mut og = g.clone();
        let stats = prepass_optimize(&mut og);
        assert!(stats.total() > 0);
        let sched = Schedule::compute(&g).unwrap();
        let machine = Machine::core_i7();
        let a = run_scheduled(&g, &sched, &machine, 5).unwrap();
        let b = run_scheduled(&og, &sched, &machine, 5).unwrap();
        assert_eq!(a.output, b.output);
        assert!(b.total_cycles() <= a.total_cycles());
    }
}
