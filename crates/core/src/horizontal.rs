//! Horizontal SIMDization (Section 3.3): replace `SW` isomorphic
//! task-parallel actors inside a split-join with one vector actor on
//! vector tapes, converting task-level parallelism into data-level
//! parallelism. Stateful actors are allowed — each lane keeps its own
//! state. The splitter and joiner become [`Node::HSplitter`] /
//! [`Node::HJoiner`], which perform the scalar-to-vector transposition.

use crate::error::SimdizeError;
use crate::graph_edit::rebuild_without;
use crate::single::{expr_vecish, mark_vector_vars, vectorize_filter, SingleActorConfig, TapeMode};
use macross_streamir::expr::{Expr, LValue};
use macross_streamir::filter::Filter;
use macross_streamir::graph::{Graph, Node, NodeId, SplitKind};
use macross_streamir::stmt::Stmt;
use std::collections::HashSet;

/// A structurally eligible split-join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitJoinCandidate {
    /// The splitter node.
    pub splitter: NodeId,
    /// The joiner node.
    pub joiner: NodeId,
    /// `branches[b]` is the linear chain of filter nodes on branch `b`,
    /// in splitter-port order.
    pub branches: Vec<Vec<NodeId>>,
}

impl SplitJoinCandidate {
    /// Number of pipeline levels.
    pub fn levels(&self) -> usize {
        self.branches[0].len()
    }
}

/// Find all structural split-join candidates: a splitter whose every
/// branch is a nonempty linear chain of filters of equal length ending at
/// one common joiner with matching port order.
pub fn find_split_joins(graph: &Graph) -> Vec<SplitJoinCandidate> {
    let mut out = Vec::new();
    for (id, node) in graph.nodes() {
        let Node::Splitter(_) = node else { continue };
        let mut branches = Vec::new();
        let mut joiner: Option<NodeId> = None;
        let mut ok = true;
        for eid in graph.out_edges(id) {
            let mut chain = Vec::new();
            let mut cur = graph.edge(eid).dst;
            let mut cur_port = graph.edge(eid).dst_port;
            loop {
                match graph.node(cur) {
                    Node::Filter(_) => {
                        if cur_port != 0 || graph.single_in_edge(cur).is_none() {
                            ok = false;
                            break;
                        }
                        chain.push(cur);
                        let Some(out_e) = graph.single_out_edge(cur) else {
                            ok = false;
                            break;
                        };
                        cur_port = graph.edge(out_e).dst_port;
                        cur = graph.edge(out_e).dst;
                    }
                    Node::Joiner(_) => {
                        if cur_port != branches.len() {
                            ok = false;
                        }
                        match joiner {
                            None => joiner = Some(cur),
                            Some(j) if j == cur => {}
                            _ => ok = false,
                        }
                        break;
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || chain.is_empty() {
                ok = false;
                break;
            }
            branches.push(chain);
        }
        if ok && branches.len() >= 2 && branches.iter().all(|b| b.len() == branches[0].len()) {
            out.push(SplitJoinCandidate {
                splitter: id,
                joiner: joiner.expect("joiner found"),
                branches,
            });
        }
    }
    out
}

/// Merge `sw` isomorphic filters into one template whose differing
/// constants become vector constants (Figure 6b's `const_v = {5,6,7,8}`).
///
/// # Errors
/// Fails when the filters are not isomorphic: differing rates, variable
/// declarations, or body structure beyond constant literals.
pub fn merge_isomorphic(actors: &[&Filter], sw: usize) -> Result<Filter, SimdizeError> {
    assert_eq!(actors.len(), sw, "merge needs exactly SW actors");
    let first = actors[0];
    let err = |reason: String| SimdizeError::NotVectorizable {
        actor: first.name.clone(),
        reason,
    };
    for a in actors {
        if (a.pop, a.push, a.peek) != (first.pop, first.push, first.peek) {
            return Err(err(format!(
                "rates differ between {} and {}",
                first.name, a.name
            )));
        }
        if a.vars.len() != first.vars.len()
            || a.vars
                .iter()
                .zip(&first.vars)
                .any(|(x, y)| x.ty != y.ty || x.kind != y.kind)
        {
            return Err(err(format!(
                "variable declarations differ between {} and {}",
                first.name, a.name
            )));
        }
        if !a.chans.is_empty() {
            return Err(err(format!("{} has internal channels", a.name)));
        }
    }
    let mut merged = first.clone();
    merged.name = format!("{}_h{sw}", first.name);
    merged.init = merge_blocks(&actors.iter().map(|a| a.init.as_slice()).collect::<Vec<_>>())
        .map_err(&err)?;
    merged.work = merge_blocks(&actors.iter().map(|a| a.work.as_slice()).collect::<Vec<_>>())
        .map_err(&err)?;
    Ok(merged)
}

fn merge_blocks(blocks: &[&[Stmt]]) -> Result<Vec<Stmt>, String> {
    let n = blocks[0].len();
    if blocks.iter().any(|b| b.len() != n) {
        return Err("statement counts differ".into());
    }
    (0..n)
        .map(|i| merge_stmts(&blocks.iter().map(|b| &b[i]).collect::<Vec<_>>()))
        .collect()
}

fn merge_stmts(ss: &[&Stmt]) -> Result<Stmt, String> {
    use Stmt::*;
    let first = ss[0];
    match first {
        Assign(lv, e) => {
            let lvs: Vec<&LValue> = ss
                .iter()
                .map(|s| match s {
                    Assign(l, _) => Ok(l),
                    _ => Err("statement kinds differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            let es: Vec<&Expr> = ss
                .iter()
                .map(|s| match s {
                    Assign(_, e) => Ok(e),
                    _ => Err("statement kinds differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            let _ = (lv, e);
            Ok(Assign(merge_lvalues(&lvs)?, merge_exprs(&es)?))
        }
        Push(_) => {
            let es = collect(ss, |s| match s {
                Push(e) => Some(e),
                _ => None,
            })?;
            Ok(Push(merge_exprs(&es)?))
        }
        LPush(_, _) | LVPush(_, _, _) | VPush { .. } | RPush { .. } => {
            Err("vector/channel ops in horizontal input".into())
        }
        For { var, count, body } => {
            let counts = collect(ss, |s| match s {
                For { var: v2, count, .. } if v2 == var => Some(count),
                _ => None,
            })?;
            let count2 = merge_exprs(&counts)?;
            let bodies: Vec<&[Stmt]> = collect(ss, |s| match s {
                For { body, .. } => Some(body.as_slice()),
                _ => None,
            })?;
            let _ = (count, body);
            Ok(For {
                var: *var,
                count: count2,
                body: merge_blocks(&bodies)?,
            })
        }
        If { .. } => {
            let conds = collect(ss, |s| match s {
                If { cond, .. } => Some(cond),
                _ => None,
            })?;
            let thens: Vec<&[Stmt]> = collect(ss, |s| match s {
                If { then_branch, .. } => Some(then_branch.as_slice()),
                _ => None,
            })?;
            let elses: Vec<&[Stmt]> = collect(ss, |s| match s {
                If { else_branch, .. } => Some(else_branch.as_slice()),
                _ => None,
            })?;
            Ok(If {
                cond: merge_exprs(&conds)?,
                then_branch: merge_blocks(&thens)?,
                else_branch: merge_blocks(&elses)?,
            })
        }
        AdvanceRead(n) => {
            if ss.iter().all(|s| matches!(s, AdvanceRead(m) if m == n)) {
                Ok(AdvanceRead(*n))
            } else {
                Err("advance_read amounts differ".into())
            }
        }
        AdvanceWrite(n) => {
            if ss.iter().all(|s| matches!(s, AdvanceWrite(m) if m == n)) {
                Ok(AdvanceWrite(*n))
            } else {
                Err("advance_write amounts differ".into())
            }
        }
    }
}

fn collect<'a, T: ?Sized>(
    ss: &[&'a Stmt],
    f: impl Fn(&'a Stmt) -> Option<&'a T>,
) -> Result<Vec<&'a T>, String> {
    ss.iter()
        .map(|s| f(s).ok_or_else(|| "statement kinds differ".to_string()))
        .collect()
}

fn merge_lvalues(lvs: &[&LValue]) -> Result<LValue, String> {
    let first = lvs[0];
    match first {
        LValue::Var(v) => {
            if lvs.iter().all(|l| matches!(l, LValue::Var(w) if w == v)) {
                Ok(LValue::Var(*v))
            } else {
                Err("assignment targets differ".into())
            }
        }
        LValue::Index(v, _) => {
            let idxs: Vec<&Expr> = lvs
                .iter()
                .map(|l| match l {
                    LValue::Index(w, i) if w == v => Ok(i),
                    _ => Err("assignment targets differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(LValue::Index(*v, merge_exprs(&idxs)?))
        }
        _ => Err("lane lvalue in horizontal input".into()),
    }
}

fn merge_exprs(es: &[&Expr]) -> Result<Expr, String> {
    use Expr::*;
    let first = es[0];
    match first {
        Const(v) => {
            let vals: Vec<macross_streamir::types::Value> = es
                .iter()
                .map(|e| match e {
                    Const(x) => Ok(*x),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            if vals.iter().any(|x| x.ty() != v.ty()) {
                return Err("constant types differ".into());
            }
            if vals.iter().all(|x| x.bits_eq(*v)) {
                Ok(Const(*v))
            } else {
                Ok(ConstVec(vals))
            }
        }
        Var(v) => {
            if es.iter().all(|e| matches!(e, Var(w) if w == v)) {
                Ok(Var(*v))
            } else {
                Err("variable references differ".into())
            }
        }
        Index(v, _) => {
            let idxs: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Index(w, i) if w == v => Ok(i.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(Index(*v, Box::new(merge_exprs(&idxs)?)))
        }
        Unary(op, _) => {
            let args: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Unary(o, a) if o == op => Ok(a.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(Unary(*op, Box::new(merge_exprs(&args)?)))
        }
        Cast(t, _) => {
            let args: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Cast(u, a) if u == t => Ok(a.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(Cast(*t, Box::new(merge_exprs(&args)?)))
        }
        Binary(op, _, _) => {
            let lhs: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Binary(o, a, _) if o == op => Ok(a.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            let rhs: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Binary(o, _, b) if o == op => Ok(b.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(Expr::bin(*op, merge_exprs(&lhs)?, merge_exprs(&rhs)?))
        }
        Call(i, args0) => {
            let mut merged_args = Vec::with_capacity(args0.len());
            for k in 0..args0.len() {
                let arg_k: Vec<&Expr> = es
                    .iter()
                    .map(|e| match e {
                        Call(j, args) if j == i && args.len() == args0.len() => Ok(&args[k]),
                        _ => Err("expression shapes differ".to_string()),
                    })
                    .collect::<Result<_, _>>()?;
                merged_args.push(merge_exprs(&arg_k)?);
            }
            Ok(Call(*i, merged_args))
        }
        Pop => {
            if es.iter().all(|e| matches!(e, Pop)) {
                Ok(Pop)
            } else {
                Err("expression shapes differ".into())
            }
        }
        Peek(_) => {
            let offs: Vec<&Expr> = es
                .iter()
                .map(|e| match e {
                    Peek(o) => Ok(o.as_ref()),
                    _ => Err("expression shapes differ".to_string()),
                })
                .collect::<Result<_, _>>()?;
            Ok(Peek(Box::new(merge_exprs(&offs)?)))
        }
        _ => Err("vector construct in horizontal input".into()),
    }
}

/// Check that the merged template has no divergent (vector) control flow,
/// subscripts or peek offsets — these cannot be SIMDized lanewise.
fn check_uniform_control(f: &Filter) -> Result<(), SimdizeError> {
    let vec = mark_vector_vars(f);
    let mut bad: Option<String> = None;
    let mut visit = |stmts: &[Stmt]| {
        for s in stmts {
            s.walk(&mut |s| match s {
                Stmt::For { count, .. } if expr_vecish(count, &vec) => {
                    bad = Some(format!("divergent loop bound: {count}"));
                }
                Stmt::If { cond, .. } if expr_vecish(cond, &vec) => {
                    bad = Some(format!("divergent branch condition: {cond}"));
                }
                Stmt::Assign(LValue::Index(_, i), _) if expr_vecish(i, &vec) => {
                    bad = Some(format!("divergent subscript: {i}"));
                }
                _ => {}
            });
            s.walk_exprs(&mut |e| match e {
                Expr::Index(_, i) if expr_vecish(i, &vec) => {
                    bad = Some(format!("divergent subscript: {i}"));
                }
                Expr::Peek(o) if expr_vecish(o, &vec) => {
                    bad = Some(format!("divergent peek offset: {o}"));
                }
                _ => {}
            });
        }
    };
    visit(&f.init);
    visit(&f.work);
    match bad {
        Some(reason) => Err(SimdizeError::NotVectorizable {
            actor: f.name.clone(),
            reason,
        }),
        None => Ok(()),
    }
}

/// Outcome of horizontalizing one split-join.
#[derive(Debug)]
pub struct Horizontalized {
    /// The rewritten graph.
    pub graph: Graph,
    /// Old-to-new node id mapping for untouched nodes.
    pub node_map: Vec<Option<NodeId>>,
    /// Names of the merged vector actors, per level and group.
    pub merged_names: Vec<Vec<String>>,
}

/// Apply horizontal SIMDization to one candidate split-join.
///
/// # Errors
/// Fails when the branch count is not a multiple of `sw`, splitter/joiner
/// weights are non-uniform, any level's actors are not isomorphic, or the
/// merged template has divergent control flow.
pub fn horizontalize(
    graph: &Graph,
    cand: &SplitJoinCandidate,
    sw: usize,
) -> Result<Horizontalized, SimdizeError> {
    let n = cand.branches.len();
    if !n.is_multiple_of(sw) {
        return Err(SimdizeError::Graph(format!(
            "split-join has {n} branches, not a multiple of SIMD width {sw}"
        )));
    }
    let groups = n / sw;
    let split_kind = match graph.node(cand.splitter) {
        Node::Splitter(k) => k.clone(),
        _ => {
            return Err(SimdizeError::Graph(
                "candidate splitter is not a splitter".into(),
            ))
        }
    };
    if let SplitKind::RoundRobin(w) = &split_kind {
        if w.iter().any(|&x| x != w[0]) {
            return Err(SimdizeError::Graph(
                "splitter weights are not uniform".into(),
            ));
        }
    }
    let join_weights = match graph.node(cand.joiner) {
        Node::Joiner(w) => w.clone(),
        _ => {
            return Err(SimdizeError::Graph(
                "candidate joiner is not a joiner".into(),
            ))
        }
    };
    if join_weights.iter().any(|&x| x != join_weights[0]) {
        return Err(SimdizeError::Graph("joiner weights are not uniform".into()));
    }

    let levels = cand.levels();
    // Element types along one branch (before each level, and after the last).
    let elem_in: Vec<_> = (0..levels)
        .map(|l| {
            let node = cand.branches[0][l];
            let e = graph.single_in_edge(node).expect("branch node has input");
            graph.edge(e).elem
        })
        .collect();
    let elem_out_last = {
        let node = cand.branches[0][levels - 1];
        let e = graph.single_out_edge(node).expect("branch node has output");
        graph.edge(e).elem
    };

    // Merge and vectorize each (level, group).
    let mut merged: Vec<Vec<Filter>> = Vec::with_capacity(levels);
    let mut merged_names = Vec::with_capacity(levels);
    for l in 0..levels {
        let mut row = Vec::with_capacity(groups);
        let mut names = Vec::with_capacity(groups);
        for g in 0..groups {
            let actors: Vec<&Filter> = (0..sw)
                .map(|j| {
                    graph
                        .node(cand.branches[g * sw + j][l])
                        .as_filter()
                        .expect("filter")
                })
                .collect();
            let mut m = merge_isomorphic(&actors, sw)?;
            check_uniform_control(&m)?;
            let out_elem = if l + 1 < levels {
                elem_in[l + 1]
            } else {
                elem_out_last
            };
            let cfg = SingleActorConfig {
                sw,
                input: TapeMode::Vector,
                output: TapeMode::Vector,
                in_elem: elem_in[l],
                out_elem,
            };
            vectorize_filter(&mut m, &cfg, true)?;
            macross_streamir::analysis::check_rates(&m)
                .map_err(|e| SimdizeError::RateCheck(e.to_string()))?;
            names.push(m.name.clone());
            row.push(m);
        }
        merged.push(row);
        merged_names.push(names);
    }

    // Graph surgery.
    let mut remove: HashSet<NodeId> = [cand.splitter, cand.joiner].into_iter().collect();
    for b in &cand.branches {
        remove.extend(b.iter().copied());
    }
    let mut r = rebuild_without(graph, &remove);
    let hsplit = r.graph.add_node(Node::HSplitter {
        kind: split_kind,
        width: sw,
    });
    let hjoin = r.graph.add_node(Node::HJoiner {
        weights: join_weights,
        width: sw,
    });
    let mut level_ids: Vec<Vec<NodeId>> = Vec::with_capacity(levels);
    for row in merged {
        level_ids.push(
            row.into_iter()
                .map(|f| r.graph.add_node(Node::Filter(f)))
                .collect(),
        );
    }
    // `g` is simultaneously the splitter/joiner port number and the
    // branch index, so a plain range reads better than enumerate().
    #[allow(clippy::needless_range_loop)]
    for g in 0..groups {
        let e0 = r.graph.connect(hsplit, g, level_ids[0][g], 0, elem_in[0]);
        r.graph.edge_mut(e0).width = sw;
        for l in 0..levels - 1 {
            let e = r
                .graph
                .connect(level_ids[l][g], 0, level_ids[l + 1][g], 0, elem_in[l + 1]);
            r.graph.edge_mut(e).width = sw;
        }
        let el = r
            .graph
            .connect(level_ids[levels - 1][g], 0, hjoin, g, elem_out_last);
        r.graph.edge_mut(el).width = sw;
    }
    // Reconnect external edges.
    for e in &r.dropped_edges {
        if e.dst == cand.splitter {
            if let Some(src) = r.node_map[e.src.0 as usize] {
                r.graph.connect(src, e.src_port, hsplit, 0, e.elem);
            }
        } else if e.src == cand.joiner {
            if let Some(dst) = r.node_map[e.dst.0 as usize] {
                r.graph.connect(hjoin, 0, dst, e.dst_port, e.elem);
            }
        }
    }
    Ok(Horizontalized {
        graph: r.graph,
        node_map: r.node_map,
        merged_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_sdf::Schedule;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::{run_scheduled, Machine};

    /// Figure 6a's B actor: 3 iterations of (pop 4, push 1) with a
    /// branch-specific divisor constant.
    fn actor_b(divisor: f32) -> Filter {
        let mut fb = FilterBuilder::new("B", 12, 12, 3, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let a0 = fb.local("a0", Ty::Scalar(ScalarTy::F32));
        let a1 = fb.local("a1", Ty::Scalar(ScalarTy::F32));
        let a2 = fb.local("a2", Ty::Scalar(ScalarTy::F32));
        let a3 = fb.local("a3", Ty::Scalar(ScalarTy::F32));
        fb.work(move |b| {
            b.for_(i, 3i32, |b| {
                b.set(a0, pop());
                b.set(a1, pop());
                b.set(a2, pop());
                b.set(a3, pop());
                b.push((v(a0) * v(a1) + v(a2) * v(a3)) / divisor);
            });
        });
        fb.build()
    }

    /// Figure 6a's stateful C actor: a 31-deep delay line.
    fn actor_c() -> Filter {
        let mut fb = FilterBuilder::new("C", 1, 1, 1, ScalarTy::F32);
        let state = fb.state("state", Ty::Array(ScalarTy::F32, 31));
        let ph = fb.state("place_holder", Ty::Scalar(ScalarTy::I32));
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.init(|b| {
            b.for_(i, 31i32, |b| {
                b.set_idx(state, v(i), 0.0f32);
            });
        });
        fb.work(|b| {
            b.push(idx(state, v(ph)));
            b.set_idx(state, v(ph), pop());
            b.set(ph, (v(ph) + 1i32) % 31i32);
        });
        fb.build()
    }

    fn figure6_graph() -> Graph {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n) * 0.25f32);
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 256i32),
            );
        });
        let branches = (0..4)
            .map(|k| {
                StreamSpec::pipeline(vec![
                    StreamSpec::filter(actor_b(5.0 + k as f32), ScalarTy::F32),
                    StreamSpec::filter(actor_c(), ScalarTy::F32),
                ])
            })
            .collect();
        StreamSpec::pipeline(vec![
            src.build_spec(),
            StreamSpec::SplitJoin {
                split: SplitKind::RoundRobin(vec![4, 4, 4, 4]),
                branches,
                join: vec![1, 1, 1, 1],
            },
            StreamSpec::Sink,
        ])
        .build()
        .unwrap()
    }

    #[test]
    fn finds_figure6_candidate() {
        let g = figure6_graph();
        let cands = find_split_joins(&g);
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.branches.len(), 4);
        assert_eq!(c.levels(), 2);
    }

    #[test]
    fn merge_builds_vector_constants() {
        let b0 = actor_b(5.0);
        let b1 = actor_b(6.0);
        let b2 = actor_b(7.0);
        let b3 = actor_b(8.0);
        let m = merge_isomorphic(&[&b0, &b1, &b2, &b3], 4).unwrap();
        let text = m.work.iter().map(|s| s.to_string()).collect::<String>();
        assert!(
            text.contains("{5.0f, 6.0f, 7.0f, 8.0f}"),
            "merged constants:\n{text}"
        );
    }

    #[test]
    fn merge_rejects_non_isomorphic() {
        let b0 = actor_b(5.0);
        let c = actor_c();
        let b2 = actor_b(7.0);
        let b3 = actor_b(8.0);
        assert!(merge_isomorphic(&[&b0, &c, &b2, &b3], 4).is_err());
    }

    #[test]
    fn horizontal_is_output_equivalent_and_reduces_tape_traffic() {
        let g = figure6_graph();
        let sched = Schedule::compute(&g).unwrap();
        let cand = find_split_joins(&g).remove(0);
        let h = horizontalize(&g, &cand, 4).unwrap();
        h.graph.validate().unwrap();
        // "The repetition number of the actors involved ... is not changed":
        // the horizontal graph schedules independently.
        let hsched = Schedule::compute(&h.graph).unwrap();

        // Align throughput via the source.
        let mut s1 = sched.clone();
        let mut s2 = hsched.clone();
        let l = macross_sdf::lcm(s1.reps[0], s2.reps[0]);
        s1.scale(l / s1.reps[0]);
        s2.scale(l / s2.reps[0]);

        let machine = Machine::core_i7();
        let a = run_scheduled(&g, &s1, &machine, 6).unwrap();
        let b = run_scheduled(&h.graph, &s2, &machine, 6).unwrap();
        assert_eq!(a.output.len(), b.output.len());
        assert!(!a.output.is_empty());
        for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
            assert!(x.bits_eq(*y), "output {i}: {x:?} != {y:?}");
        }
        // Stateful C actors were vectorized; the horizontal version must be
        // faster and shift scalar memory traffic to vector accesses.
        assert!(
            b.total_cycles() < a.total_cycles(),
            "horizontal {} vs scalar {}",
            b.total_cycles(),
            a.total_cycles()
        );
        assert!(b.counters.mem_vector > 0);
        assert!(b.counters.mem_scalar < a.counters.mem_scalar);
    }

    #[test]
    fn branch_count_must_be_multiple_of_width() {
        let g = figure6_graph();
        let cand = find_split_joins(&g).remove(0);
        assert!(matches!(
            horizontalize(&g, &cand, 8),
            Err(SimdizeError::Graph(_))
        ));
    }

    #[test]
    fn duplicate_splitter_split_join() {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n));
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 64i32),
            );
        });
        let mk = |gain: f32| {
            let mut fb = FilterBuilder::new("amp", 1, 1, 1, ScalarTy::F32);
            fb.work(move |b| {
                b.push(pop() * gain);
            });
            StreamSpec::filter(fb.build(), ScalarTy::F32)
        };
        let g = StreamSpec::pipeline(vec![
            src.build_spec(),
            StreamSpec::split_join_duplicate(1, vec![mk(1.0), mk(2.0), mk(3.0), mk(4.0)]),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let cand = find_split_joins(&g).remove(0);
        let h = horizontalize(&g, &cand, 4).unwrap();
        let sched = Schedule::compute(&g).unwrap();
        let hsched = Schedule::compute(&h.graph).unwrap();
        let machine = Machine::core_i7();
        let a = run_scheduled(&g, &sched, &machine, 8).unwrap();
        let b = run_scheduled(&h.graph, &hsched, &machine, 8).unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn eight_branches_two_groups() {
        let mut src = FilterBuilder::new("src", 0, 0, 8, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            for _ in 0..8 {
                b.push(v(n));
                b.set(
                    n,
                    cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 128i32),
                );
            }
        });
        let mk = |ofs: f32| {
            let mut fb = FilterBuilder::new("add", 1, 1, 1, ScalarTy::F32);
            fb.work(move |b| {
                b.push(pop() + ofs);
            });
            StreamSpec::filter(fb.build(), ScalarTy::F32)
        };
        let g = StreamSpec::pipeline(vec![
            src.build_spec(),
            StreamSpec::split_join_uniform(1, 1, (0..8).map(|k| mk(k as f32)).collect()),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let cand = find_split_joins(&g).remove(0);
        assert_eq!(cand.branches.len(), 8);
        let h = horizontalize(&g, &cand, 4).unwrap();
        assert_eq!(h.merged_names[0].len(), 2, "two groups of four");
        let sched = Schedule::compute(&g).unwrap();
        let hsched = Schedule::compute(&h.graph).unwrap();
        let machine = Machine::core_i7();
        let a = run_scheduled(&g, &sched, &machine, 5).unwrap();
        let b = run_scheduled(&h.graph, &hsched, &machine, 5).unwrap();
        assert_eq!(a.output, b.output);
    }
}
