//! Graph surgery utilities shared by the vertical and horizontal
//! SIMDization transforms.

use macross_streamir::graph::{Edge, Graph, NodeId};
use std::collections::HashSet;

/// Result of rebuilding a graph without a set of nodes.
#[derive(Debug)]
pub struct Rebuilt {
    /// The new graph containing every kept node and every edge whose both
    /// endpoints were kept.
    pub graph: Graph,
    /// Old node id -> new node id (`None` for removed nodes).
    pub node_map: Vec<Option<NodeId>>,
    /// Edges of the old graph that were dropped because they touched a
    /// removed node (in old-graph coordinates). The caller reconnects these
    /// to replacement nodes.
    pub dropped_edges: Vec<Edge>,
}

/// Copy `old` into a new graph, dropping the nodes in `remove` (and every
/// edge touching them). Kept edges keep their element type, width, and
/// reorder marking.
pub fn rebuild_without(old: &Graph, remove: &HashSet<NodeId>) -> Rebuilt {
    let mut graph = Graph::new();
    let mut node_map: Vec<Option<NodeId>> = Vec::with_capacity(old.node_count());
    for (id, node) in old.nodes() {
        if remove.contains(&id) {
            node_map.push(None);
        } else {
            node_map.push(Some(graph.add_node(node.clone())));
        }
    }
    let mut dropped_edges = Vec::new();
    for (_, e) in old.edges() {
        match (node_map[e.src.0 as usize], node_map[e.dst.0 as usize]) {
            (Some(src), Some(dst)) => {
                let id = graph.connect(src, e.src_port, dst, e.dst_port, e.elem);
                let new_edge = graph.edge_mut(id);
                new_edge.width = e.width;
                new_edge.reorder = e.reorder;
            }
            _ => dropped_edges.push(e.clone()),
        }
    }
    Rebuilt {
        graph,
        node_map,
        dropped_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::filter::Filter;
    use macross_streamir::graph::Node;
    use macross_streamir::types::ScalarTy;

    #[test]
    fn rebuild_drops_nodes_and_reports_edges() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 0, 0, 1)));
        let b = g.add_node(Node::Filter(Filter::new("b", 1, 1, 1)));
        let c = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::F32);
        g.connect(b, 0, c, 0, ScalarTy::F32);

        let remove: HashSet<NodeId> = [b].into_iter().collect();
        let r = rebuild_without(&g, &remove);
        assert_eq!(r.graph.node_count(), 2);
        assert_eq!(r.graph.edge_count(), 0);
        assert_eq!(r.dropped_edges.len(), 2);
        assert!(r.node_map[b.0 as usize].is_none());
        assert!(r.node_map[a.0 as usize].is_some());
    }

    #[test]
    fn rebuild_preserves_kept_edges() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 0, 0, 1)));
        let b = g.add_node(Node::Filter(Filter::new("b", 1, 1, 1)));
        let c = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::I64);
        g.connect(b, 0, c, 0, ScalarTy::I64);
        let r = rebuild_without(&g, &HashSet::new());
        assert_eq!(r.graph.edge_count(), 2);
        assert_eq!(r.graph.edges().next().unwrap().1.elem, ScalarTy::I64);
        assert!(r.dropped_edges.is_empty());
    }
}
