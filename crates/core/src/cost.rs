//! The target-specific static cost model (Section 3.5): estimates the
//! per-firing cycle cost of a work function by abstract interpretation,
//! mirroring the VM's cost accounting without executing data.
//!
//! The SIMDization driver uses it to (a) decide whether vectorizing an
//! actor is profitable at all and (b) pick the cheapest tape-access mode
//! (strided scalar vs. permutation-based vs. SAGU/vector-reordered).

use macross_streamir::expr::{BinOp, Expr, LValue, VarId};
use macross_streamir::filter::Filter;
use macross_streamir::stmt::Stmt;
use macross_streamir::types::Value;
use macross_vm::Machine;
use std::collections::HashMap;

/// Extra per-access address costs for reordered tapes, passed in by the
/// tape-mode cost comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddrCosts {
    /// Added to every scalar input-tape access.
    pub input: u64,
    /// Added to every scalar output-tape access.
    pub output: u64,
}

struct CostWalker<'a> {
    filter: &'a Filter,
    machine: &'a Machine,
    env: HashMap<VarId, Value>,
    addr: AddrCosts,
    cycles: u64,
}

/// Estimate the cycle cost of one firing of `filter` on `machine`.
///
/// Loops with constant (or loop-var-computable) trip counts are unrolled
/// abstractly; unknown-trip-count loops make the estimate panic — the
/// vectorizability analysis guarantees the SIMDizer never sees one.
pub fn static_firing_cost(filter: &Filter, machine: &Machine, addr: AddrCosts) -> u64 {
    let mut w = CostWalker {
        filter,
        machine,
        env: HashMap::new(),
        addr,
        cycles: machine.cost.firing,
    };
    w.block(&filter.work);
    w.cycles
}

impl<'a> CostWalker<'a> {
    fn is_vec_var(&self, v: VarId) -> bool {
        self.filter.var(v).ty.is_vector()
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let c = &self.machine.cost;
        match s {
            Stmt::Assign(lv, e) => {
                let vec = self.expr(e);
                match lv {
                    LValue::Var(v) => {
                        if let Some(val) = self.const_eval(e) {
                            self.env.insert(*v, val);
                        } else {
                            self.env.remove(v);
                        }
                    }
                    LValue::Index(v, i) => {
                        self.expr(i);
                        self.env.remove(v);
                        self.cycles += if self.is_vec_var(*v) {
                            c.vstore
                        } else {
                            c.store
                        };
                    }
                    LValue::VIndex(v, i, _) => {
                        self.expr(i);
                        self.env.remove(v);
                        self.cycles += c.vstore;
                    }
                    LValue::LaneVar(_, _) => self.cycles += c.lane_insert,
                    LValue::LaneIndex(v, i, _) => {
                        self.expr(i);
                        self.env.remove(v);
                        self.cycles += c.lane_insert;
                    }
                }
                let _ = vec;
            }
            Stmt::Push(e) => {
                self.expr(e);
                self.cycles += c.store + self.addr.output;
            }
            Stmt::RPush { value, offset } => {
                self.expr(value);
                self.expr(offset);
                self.cycles += c.store + c.alu;
            }
            Stmt::VPush { value, .. } => {
                self.expr(value);
                self.cycles += c.vstore;
            }
            Stmt::LPush(_, e) => {
                self.expr(e);
                self.cycles += c.store;
            }
            Stmt::LVPush(_, e, _) => {
                self.expr(e);
                self.cycles += c.vstore;
            }
            Stmt::For { var, count, body } => {
                self.expr(count);
                self.cycles += c.alu;
                let n = self
                    .const_eval(count)
                    .map(|v| v.as_i64())
                    .expect("static cost model requires constant trip counts");
                for i in 0..n.max(0) {
                    self.env.insert(*var, Value::I32(i as i32));
                    self.cycles += c.loop_iter;
                    self.block(body);
                }
                self.env.remove(var);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                self.cycles += c.alu;
                match self.const_eval(cond) {
                    Some(v) if v.is_truthy() => self.block(then_branch),
                    Some(_) => self.block(else_branch),
                    None => {
                        // Unknown branch: cost the more expensive side.
                        let snapshot = self.cycles;
                        let env = self.env.clone();
                        self.block(then_branch);
                        let then_cost = self.cycles;
                        self.cycles = snapshot;
                        self.env = env.clone();
                        self.block(else_branch);
                        let else_cost = self.cycles;
                        self.cycles = then_cost.max(else_cost);
                        self.env = env;
                    }
                }
            }
            Stmt::AdvanceRead(_) | Stmt::AdvanceWrite(_) => self.cycles += c.alu,
        }
    }

    /// Cost an expression; returns whether it is vector-valued.
    fn expr(&mut self, e: &Expr) -> bool {
        let c = &self.machine.cost;
        match e {
            Expr::Const(_) => false,
            Expr::ConstVec(_) => {
                self.cycles += c.vload;
                true
            }
            Expr::Var(v) => self.is_vec_var(*v),
            Expr::Index(v, i) => {
                self.expr(i);
                let vec = self.is_vec_var(*v);
                self.cycles += if vec { c.vload } else { c.load };
                vec
            }
            Expr::VIndex(_, i, _) => {
                self.expr(i);
                self.cycles += c.vload;
                true
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) => {
                let vec = self.expr(a);
                self.cycles += if vec { c.valu } else { c.alu };
                vec
            }
            Expr::Binary(op, a, b) => {
                let va = self.expr(a);
                let vb = self.expr(b);
                let vec = va || vb;
                self.cycles += match (op, vec) {
                    (BinOp::Mul, false) => c.mul,
                    (BinOp::Mul, true) => c.vmul,
                    (BinOp::Div | BinOp::Rem, false) => c.div,
                    (BinOp::Div | BinOp::Rem, true) => c.vdiv,
                    (_, false) => c.alu,
                    (_, true) => c.valu,
                };
                vec
            }
            Expr::Call(i, args) => {
                // Not `any()`: every argument must be walked so its
                // cycles are charged, even after a vector one is seen.
                let mut vec = false;
                for a in args {
                    vec |= self.expr(a);
                }
                self.cycles += if vec {
                    self.machine.vector_intrinsic_cost(*i)
                } else {
                    self.machine.scalar_intrinsic_cost(*i)
                };
                vec
            }
            Expr::Pop => {
                self.cycles += c.load + self.addr.input;
                false
            }
            Expr::Peek(off) => {
                self.expr(off);
                self.cycles += c.load + self.addr.input;
                false
            }
            Expr::VPop { .. } => {
                self.cycles += c.vload;
                true
            }
            Expr::VPeek { offset, .. } => {
                self.expr(offset);
                self.cycles += c.vload;
                true
            }
            Expr::LPop(_) => {
                self.cycles += c.load;
                false
            }
            Expr::LVPop(_, _) => {
                self.cycles += c.vload;
                true
            }
            Expr::Lane(a, _) => {
                self.expr(a);
                self.cycles += c.lane_extract;
                false
            }
            Expr::Splat(a, _) => {
                self.expr(a);
                self.cycles += c.splat;
                true
            }
            Expr::PermuteEven(a, b) | Expr::PermuteOdd(a, b) => {
                self.expr(a);
                self.expr(b);
                self.cycles += c.permute;
                true
            }
        }
    }

    fn const_eval(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Const(v) => Some(*v),
            Expr::Var(v) => self.env.get(v).copied(),
            Expr::Unary(op, a) => Some(macross_streamir::expr::eval_unop(*op, self.const_eval(a)?)),
            Expr::Binary(op, a, b) => Some(macross_streamir::expr::eval_binop(
                *op,
                self.const_eval(a)?,
                self.const_eval(b)?,
            )),
            Expr::Cast(t, a) => Some(self.const_eval(a)?.cast(*t)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::edsl::*;
    use macross_streamir::types::{ScalarTy, Ty};
    use macross_vm::{run_program, Machine};

    /// The static estimate must exactly match the VM's measured per-firing
    /// cost for a straight-line actor.
    #[test]
    fn matches_vm_for_straightline() {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1.0f32);
        });
        let mut f = FilterBuilder::new("f", 1, 1, 1, ScalarTy::F32);
        let t = f.local("t", Ty::Scalar(ScalarTy::F32));
        f.work(|b| {
            b.set(t, pop() * 2.0f32);
            b.push(sqrt(v(t)));
        });
        let filter = f.build();
        let machine = Machine::core_i7();
        let est = static_firing_cost(&filter, &machine, AddrCosts::default());

        let g = macross_streamir::builder::StreamSpec::pipeline(vec![
            src.build_spec(),
            macross_streamir::builder::StreamSpec::filter(filter, ScalarTy::F32),
            macross_streamir::builder::StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        let res = run_program(&g, &machine, 1).unwrap();
        // node 1 is the filter (after src).
        assert_eq!(res.node_cycles[1], est);
    }

    #[test]
    fn loops_unrolled() {
        let mut f = FilterBuilder::new("l", 4, 4, 1, ScalarTy::F32);
        let i = f.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = f.local("acc", Ty::Scalar(ScalarTy::F32));
        f.work(|b| {
            b.for_(i, 4i32, |b| {
                b.set(acc, v(acc) + pop());
            });
            b.push(v(acc));
        });
        let filter = f.build();
        let machine = Machine::core_i7();
        let cost = static_firing_cost(&filter, &machine, AddrCosts::default());
        // firing(3) + loop setup alu(1)+count? count is const: no cost.
        // per iter: loop_iter(1) + load(2) + add(1) = 4 -> 16; push: store 2.
        assert_eq!(cost, 3 + 1 + 16 + 2);
    }

    #[test]
    fn addr_costs_inflate_scalar_accesses() {
        let mut f = FilterBuilder::new("p", 1, 1, 1, ScalarTy::F32);
        f.work(|b| {
            b.push(pop());
        });
        let filter = f.build();
        let machine = Machine::core_i7();
        let base = static_firing_cost(&filter, &machine, AddrCosts::default());
        let reordered = static_firing_cost(
            &filter,
            &machine,
            AddrCosts {
                input: 6,
                output: 6,
            },
        );
        assert_eq!(reordered, base + 12);
    }

    #[test]
    fn unknown_branch_costs_worst_case() {
        let mut f = FilterBuilder::new("br", 1, 1, 1, ScalarTy::I32);
        let x = f.local("x", Ty::Scalar(ScalarTy::I32));
        f.work(|b| {
            b.set(x, pop());
            b.if_else(
                v(x),
                |b| {
                    b.push(v(x) * v(x)); // mul: expensive
                },
                |b| {
                    b.push(v(x) + 1i32); // alu: cheap
                },
            );
        });
        let filter = f.build();
        let machine = Machine::core_i7();
        let cost = static_firing_cost(&filter, &machine, AddrCosts::default());
        // Must include the mul-side cost: firing 3 + load 2 + branch 1 + mul 3 + store 2.
        assert_eq!(cost, 3 + 2 + 1 + 3 + 2);
    }
}
