//! Single-actor SIMDization (Section 3.1): transform `SW` consecutive
//! firings of a stateless actor into one data-parallel firing.
//!
//! The input and output tapes can be accessed in one of three modes,
//! chosen per side by the cost model (Section 3.4):
//!
//! - [`TapeMode::Strided`]: the paper's baseline — scalar strided
//!   `peek`/`pop` reads pack lanes one by one, scalar `rpush`/`push`
//!   writes unpack them (Figure 3b), followed by explicit pointer
//!   adjustments.
//! - [`TapeMode::Permute`]: vector loads/stores plus the
//!   `extract_even`/`extract_odd` networks of [`crate::permnet`]
//!   (Figure 7).
//! - [`TapeMode::VectorReorder`]: plain vector pops/pushes; the *scalar*
//!   actor on the other end of the tape performs column-major accesses
//!   resolved by the SAGU or the Figure-8 software sequence (the driver
//!   marks the edge accordingly).

use crate::error::SimdizeError;
use crate::normalize::normalize_work;
use crate::permnet::{gather_applicable, gather_plan, scatter_applicable, scatter_plan};
use macross_streamir::analysis::{analyze_vectorizability, check_rates};
use macross_streamir::expr::{BinOp, Expr, LValue, VarId};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{ScalarTy, Ty, Value};
use std::collections::HashSet;

/// How a vectorized actor accesses one of its tapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeMode {
    /// Strided scalar accesses with lane packing/unpacking.
    Strided,
    /// Vector accesses plus permutation networks.
    Permute,
    /// Vector accesses; the scalar neighbour reorders (SAGU tape opt).
    VectorReorder,
    /// The tape itself carries vectors (horizontal SIMDization): plain
    /// vector pops/pushes, vector peeks at scaled offsets, no reordering
    /// anywhere.
    Vector,
}

/// Configuration for single-actor SIMDization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleActorConfig {
    /// SIMD width.
    pub sw: usize,
    /// Input-tape access mode.
    pub input: TapeMode,
    /// Output-tape access mode.
    pub output: TapeMode,
    /// Element type of the input tape.
    pub in_elem: ScalarTy,
    /// Element type of the output tape.
    pub out_elem: ScalarTy,
}

impl SingleActorConfig {
    /// The paper's baseline configuration: strided tapes on both sides.
    pub fn strided(sw: usize, in_elem: ScalarTy, out_elem: ScalarTy) -> SingleActorConfig {
        SingleActorConfig {
            sw,
            input: TapeMode::Strided,
            output: TapeMode::Strided,
            in_elem,
            out_elem,
        }
    }
}

/// Does the (normalized or unnormalized) body use `peek` or explicit read
/// advances anywhere? Such actors only support the strided input mode.
pub fn uses_peek(filter: &Filter) -> bool {
    let mut found = false;
    for s in &filter.work {
        s.walk_exprs(&mut |e| {
            if matches!(e, Expr::Peek(_)) {
                found = true;
            }
        });
        s.walk(&mut |s| {
            if matches!(s, Stmt::AdvanceRead(_)) {
                found = true;
            }
        });
    }
    found
}

/// Vectorize one stateless actor for `cfg.sw`-wide execution.
///
/// # Errors
/// Fails when the actor is stateful, has tape-dependent control flow or
/// subscripts, is already vectorized, requests a non-strided input mode
/// while peeking, or requests a permute mode its rates don't admit. The
/// result is self-checked: its measured rates must match its declared
/// rates.
pub fn simdize_single_actor(
    orig: &Filter,
    cfg: &SingleActorConfig,
) -> Result<Filter, SimdizeError> {
    let va = analyze_vectorizability(orig);
    if !va.simdizable() {
        return Err(SimdizeError::NotVectorizable {
            actor: orig.name.clone(),
            reason: format!(
                "stateful={} tape_dependent_control={} tape_dependent_subscript={} vectorized={}",
                va.stateful, va.tape_dependent_control, va.tape_dependent_subscript, va.vectorized
            ),
        });
    }
    let mut f = orig.clone();
    f.name = format!("{}_v{}", f.name, cfg.sw);
    vectorize_filter(&mut f, cfg, false)?;
    check_rates(&f).map_err(|e| SimdizeError::RateCheck(e.to_string()))?;
    Ok(f)
}

/// The shared vectorization core used by single-actor (and, through the
/// fused coarse actor, vertical) SIMDization as well as horizontal
/// SIMDization (with [`TapeMode::Vector`] and `rewrite_init = true`).
///
/// Rewrites `f` in place: normalizes the body, marks and retypes vector
/// variables, rewrites tape/channel accesses per the configured modes,
/// emits permutation preambles/postambles and pointer adjustments, and
/// updates the declared rates.
pub(crate) fn vectorize_filter(
    f: &mut Filter,
    cfg: &SingleActorConfig,
    rewrite_init: bool,
) -> Result<(), SimdizeError> {
    vectorize_filter_seeded(f, cfg, rewrite_init, &HashSet::new())
}

/// [`vectorize_filter`] with pre-seeded vector variables: `seeds` enter the
/// def-use marking fixpoint as already-vector, forcing variables whose
/// lanes must diverge even without tape data flowing into them (region
/// state panels hold per-region values from `init`).
pub(crate) fn vectorize_filter_seeded(
    f: &mut Filter,
    cfg: &SingleActorConfig,
    rewrite_init: bool,
    seeds: &HashSet<VarId>,
) -> Result<(), SimdizeError> {
    let sw = cfg.sw;
    assert!(
        sw.is_power_of_two() && sw >= 2,
        "SIMD width must be a power of two >= 2"
    );
    let orig_pop = f.pop;
    let orig_push = f.push;
    let orig_peek = f.peek;
    normalize_work(f, Ty::Scalar(cfg.in_elem), Ty::Scalar(cfg.out_elem));

    let peeking = uses_peek(f);
    if peeking && !matches!(cfg.input, TapeMode::Strided | TapeMode::Vector) {
        return Err(SimdizeError::NotVectorizable {
            actor: f.name.clone(),
            reason: "peeking actors require the strided or vector-tape input mode".into(),
        });
    }
    if cfg.input == TapeMode::Permute && !gather_applicable(orig_pop) {
        return Err(SimdizeError::NotVectorizable {
            actor: f.name.clone(),
            reason: format!("pop rate {orig_pop} does not admit the permute input mode"),
        });
    }
    if cfg.output == TapeMode::Permute && !scatter_applicable(orig_push) {
        return Err(SimdizeError::NotVectorizable {
            actor: f.name.clone(),
            reason: format!("push rate {orig_push} does not admit the permute output mode"),
        });
    }

    // Mark vector variables by def-use propagation from tape reads and
    // merged vector constants (Section 3.1 "identifying variables and
    // constants to be vectorized").
    let vec_vars = mark_vector_vars_seeded(f, seeds);
    for v in &vec_vars {
        let decl = &mut f.vars[v.0 as usize];
        decl.ty = decl.ty.vectorized(sw);
    }
    // Internal channels carry one lane per fused execution: vectorize all.
    for ch in &mut f.chans {
        ch.ty = ch.ty.vectorized(sw);
    }

    let (p, q) = (orig_pop, orig_push);
    let mut rw = Rewriter {
        filter_vars: f.vars.iter().map(|v| v.ty).collect(),
        vec_vars,
        sw,
        p,
        q,
        input: cfg.input,
        output: cfg.output,
        in_perm: None,
        out_perm: None,
        fresh: 0,
        new_vars: Vec::new(),
    };

    let mut body = Vec::new();
    // Input permute preamble: p vector pops + gather network into an array
    // indexed by a running pop counter.
    if cfg.input == TapeMode::Permute && p > 0 {
        let arr = rw.alloc("__in_perm".to_string(), Ty::VectorArray(cfg.in_elem, sw, p));
        let cnt = rw.alloc("__in_cnt".to_string(), Ty::Scalar(ScalarTy::I32));
        rw.in_perm = Some((arr, cnt));
        let loads: Vec<VarId> = (0..p)
            .map(|i| rw.alloc(format!("__ld{i}"), Ty::Vector(cfg.in_elem, sw)))
            .collect();
        for &t in &loads {
            body.push(Stmt::Assign(LValue::Var(t), Expr::VPop { width: sw }));
        }
        let finals = emit_rounds(
            &loads,
            gather_plan(p, sw).rounds,
            cfg.in_elem,
            sw,
            &mut rw,
            &mut body,
        );
        for (i, &t) in finals.iter().enumerate() {
            body.push(Stmt::Assign(
                LValue::Index(arr, Expr::Const(Value::I32(i as i32))),
                Expr::Var(t),
            ));
        }
    }
    if cfg.output == TapeMode::Permute && q > 0 {
        let arr = rw.alloc(
            "__out_perm".to_string(),
            Ty::VectorArray(cfg.out_elem, sw, q),
        );
        let cnt = rw.alloc("__out_cnt".to_string(), Ty::Scalar(ScalarTy::I32));
        rw.out_perm = Some((arr, cnt));
    }

    let work = std::mem::take(&mut f.work);
    let mut rewritten = rw.block(&work)?;
    body.append(&mut rewritten);

    // Output permute postamble: scatter network + q vector pushes.
    if cfg.output == TapeMode::Permute && q > 0 {
        let (arr, _) = rw.out_perm.unwrap();
        let loads: Vec<VarId> = (0..q)
            .map(|i| rw.alloc(format!("__st{i}"), Ty::Vector(cfg.out_elem, sw)))
            .collect();
        for (i, &t) in loads.iter().enumerate() {
            body.push(Stmt::Assign(
                LValue::Var(t),
                Expr::Index(arr, Box::new(Expr::Const(Value::I32(i as i32)))),
            ));
        }
        let finals = emit_rounds(
            &loads,
            scatter_plan(q, sw).rounds,
            cfg.out_elem,
            sw,
            &mut rw,
            &mut body,
        );
        for &t in &finals {
            body.push(Stmt::VPush {
                value: Expr::Var(t),
                width: sw,
            });
        }
    }

    // Pointer adjustments for the strided modes (the step the paper leaves
    // implicit in Figure 3b).
    if cfg.input == TapeMode::Strided && p > 0 {
        body.push(Stmt::AdvanceRead((sw - 1) * p));
    }
    if cfg.output == TapeMode::Strided && q > 0 {
        body.push(Stmt::AdvanceWrite((sw - 1) * q));
    }

    // Horizontal SIMDization also rewrites the init function (per-lane
    // state initialization, Figure 6b).
    if rewrite_init {
        let init = std::mem::take(&mut f.init);
        f.init = rw.block(&init)?;
    }

    for (name, ty) in rw.new_vars {
        f.add_var(name, ty, VarKind::Local);
    }
    f.work = body;
    f.pop = sw * p;
    f.push = sw * q;
    f.peek = match cfg.input {
        TapeMode::Strided => (sw - 1) * p + orig_peek,
        TapeMode::Vector => sw * orig_peek,
        _ => sw * p,
    };
    Ok(())
}

/// Emit `rounds` even/odd permutation rounds over the given vector temps,
/// returning the final temps in order.
fn emit_rounds(
    inputs: &[VarId],
    rounds: usize,
    elem: ScalarTy,
    sw: usize,
    rw: &mut Rewriter,
    body: &mut Vec<Stmt>,
) -> Vec<VarId> {
    let mut cur: Vec<VarId> = inputs.to_vec();
    let k = cur.len();
    for r in 0..rounds {
        let mut next = Vec::with_capacity(k);
        for i in 0..k {
            next.push(rw.alloc(format!("__perm_r{r}_{i}"), Ty::Vector(elem, sw)));
        }
        for i in 0..k / 2 {
            body.push(Stmt::Assign(
                LValue::Var(next[i]),
                Expr::PermuteEven(
                    Box::new(Expr::Var(cur[2 * i])),
                    Box::new(Expr::Var(cur[2 * i + 1])),
                ),
            ));
            body.push(Stmt::Assign(
                LValue::Var(next[k / 2 + i]),
                Expr::PermuteOdd(
                    Box::new(Expr::Var(cur[2 * i])),
                    Box::new(Expr::Var(cur[2 * i + 1])),
                ),
            ));
        }
        cur = next;
    }
    cur
}

/// Multiply a (possibly constant) offset expression by the SIMD width,
/// constant-folding when possible.
fn scale_offset(off: Expr, sw: usize) -> Expr {
    match off {
        Expr::Const(Value::I32(c)) => Expr::Const(Value::I32(c * sw as i32)),
        other => Expr::bin(BinOp::Mul, other, Expr::Const(Value::I32(sw as i32))),
    }
}

/// Def-use marking: variables whose values originate (transitively) from
/// tape or channel reads become vectors.
pub(crate) fn mark_vector_vars(f: &Filter) -> HashSet<VarId> {
    mark_vector_vars_seeded(f, &HashSet::new())
}

pub(crate) fn mark_vector_vars_seeded(f: &Filter, seeds: &HashSet<VarId>) -> HashSet<VarId> {
    let mut vec: HashSet<VarId> = seeds.clone();
    loop {
        let before = vec.len();
        mark_block(&f.init, &mut vec);
        mark_block(&f.work, &mut vec);
        if vec.len() == before {
            break;
        }
    }
    vec
}

pub(crate) fn expr_vecish(e: &Expr, vec: &HashSet<VarId>) -> bool {
    let mut hit = false;
    e.walk(&mut |e| match e {
        Expr::Pop | Expr::Peek(_) | Expr::LPop(_) | Expr::ConstVec(_) => hit = true,
        Expr::Var(v) | Expr::Index(v, _) if vec.contains(v) => {
            hit = true;
        }
        _ => {}
    });
    hit
}

fn mark_block(stmts: &[Stmt], vec: &mut HashSet<VarId>) {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) if expr_vecish(e, vec) => {
                vec.insert(lv.var());
            }
            Stmt::For { body, .. } => mark_block(body, vec),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                mark_block(then_branch, vec);
                mark_block(else_branch, vec);
            }
            _ => {}
        }
    }
}

struct Rewriter {
    filter_vars: Vec<Ty>,
    vec_vars: HashSet<VarId>,
    sw: usize,
    p: usize,
    q: usize,
    input: TapeMode,
    output: TapeMode,
    in_perm: Option<(VarId, VarId)>,
    out_perm: Option<(VarId, VarId)>,
    fresh: usize,
    new_vars: Vec<(String, Ty)>,
}

impl Rewriter {
    fn alloc(&mut self, name: String, ty: Ty) -> VarId {
        let id = VarId((self.filter_vars.len()) as u32);
        self.filter_vars.push(ty);
        self.new_vars.push((format!("{name}_{}", self.fresh), ty));
        self.fresh += 1;
        id
    }

    fn splat(&self, e: Expr) -> Expr {
        Expr::Splat(Box::new(e), self.sw)
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, SimdizeError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), SimdizeError> {
        match s {
            Stmt::Assign(LValue::Var(v), Expr::Pop) => {
                debug_assert!(
                    self.vec_vars.contains(v),
                    "pop target must be marked vector"
                );
                match self.input {
                    TapeMode::Strided => {
                        for l in (1..self.sw).rev() {
                            out.push(Stmt::Assign(
                                LValue::LaneVar(*v, l),
                                Expr::Peek(Box::new(Expr::Const(Value::I32((l * self.p) as i32)))),
                            ));
                        }
                        out.push(Stmt::Assign(LValue::LaneVar(*v, 0), Expr::Pop));
                    }
                    TapeMode::Permute => {
                        let (arr, cnt) = self.in_perm.expect("permute input state");
                        out.push(Stmt::Assign(
                            LValue::Var(*v),
                            Expr::Index(arr, Box::new(Expr::Var(cnt))),
                        ));
                        out.push(Stmt::Assign(
                            LValue::Var(cnt),
                            Expr::bin(BinOp::Add, Expr::Var(cnt), Expr::Const(Value::I32(1))),
                        ));
                    }
                    TapeMode::VectorReorder | TapeMode::Vector => {
                        out.push(Stmt::Assign(LValue::Var(*v), Expr::VPop { width: self.sw }));
                    }
                }
            }
            Stmt::Assign(LValue::Var(v), Expr::Peek(off)) => {
                debug_assert!(
                    self.vec_vars.contains(v),
                    "peek target must be marked vector"
                );
                let (off_rw, off_vec) = self.expr(off)?;
                assert!(!off_vec, "peek offset must be uniform");
                match self.input {
                    TapeMode::Strided => {
                        for l in (1..self.sw).rev() {
                            out.push(Stmt::Assign(
                                LValue::LaneVar(*v, l),
                                Expr::Peek(Box::new(Expr::bin(
                                    BinOp::Add,
                                    off_rw.clone(),
                                    Expr::Const(Value::I32((l * self.p) as i32)),
                                ))),
                            ));
                        }
                        out.push(Stmt::Assign(
                            LValue::LaneVar(*v, 0),
                            Expr::Peek(Box::new(off_rw)),
                        ));
                    }
                    TapeMode::Vector => {
                        // Vector tape: logical vector index `off` lives at
                        // scalar offset `off * SW`.
                        let scaled = scale_offset(off_rw, self.sw);
                        out.push(Stmt::Assign(
                            LValue::Var(*v),
                            Expr::VPeek {
                                offset: Box::new(scaled),
                                width: self.sw,
                            },
                        ));
                    }
                    other => panic!("peek unsupported in {other:?} mode"),
                }
            }
            Stmt::Assign(LValue::Var(v), Expr::LPop(c)) => {
                debug_assert!(self.vec_vars.contains(v));
                out.push(Stmt::Assign(LValue::Var(*v), Expr::LVPop(*c, self.sw)));
            }
            Stmt::Assign(lv, e) => {
                let (mut e2, ev) = self.expr(e)?;
                let target_vec = self.vec_vars.contains(&lv.var());
                if target_vec && !ev {
                    e2 = self.splat(e2);
                } else if !target_vec && ev {
                    panic!("marking bug: vector value assigned to scalar variable {lv}");
                }
                let lv2 = match lv {
                    LValue::Var(v) => LValue::Var(*v),
                    LValue::Index(v, i) => {
                        let (i2, ivec) = self.expr(i)?;
                        assert!(!ivec, "array subscript must be uniform");
                        LValue::Index(*v, i2)
                    }
                    LValue::LaneVar(_, _)
                    | LValue::LaneIndex(_, _, _)
                    | LValue::VIndex(_, _, _) => {
                        panic!("vector lvalue in scalar input code")
                    }
                };
                out.push(Stmt::Assign(lv2, e2));
            }
            Stmt::Push(e) => {
                let var = match e {
                    Expr::Var(v) => *v,
                    other => panic!("push operand not normalized: {other}"),
                };
                let is_vec = self.vec_vars.contains(&var);
                match self.output {
                    TapeMode::Strided => {
                        for l in (1..self.sw).rev() {
                            let value = if is_vec {
                                Expr::Lane(Box::new(Expr::Var(var)), l)
                            } else {
                                Expr::Var(var)
                            };
                            out.push(Stmt::RPush {
                                value,
                                offset: Expr::Const(Value::I32((l * self.q) as i32)),
                            });
                        }
                        let value = if is_vec {
                            Expr::Lane(Box::new(Expr::Var(var)), 0)
                        } else {
                            Expr::Var(var)
                        };
                        out.push(Stmt::Push(value));
                    }
                    TapeMode::Permute => {
                        let (arr, cnt) = self.out_perm.expect("permute output state");
                        let value = if is_vec {
                            Expr::Var(var)
                        } else {
                            self.splat(Expr::Var(var))
                        };
                        out.push(Stmt::Assign(LValue::Index(arr, Expr::Var(cnt)), value));
                        out.push(Stmt::Assign(
                            LValue::Var(cnt),
                            Expr::bin(BinOp::Add, Expr::Var(cnt), Expr::Const(Value::I32(1))),
                        ));
                    }
                    TapeMode::VectorReorder | TapeMode::Vector => {
                        let value = if is_vec {
                            Expr::Var(var)
                        } else {
                            self.splat(Expr::Var(var))
                        };
                        out.push(Stmt::VPush {
                            value,
                            width: self.sw,
                        });
                    }
                }
            }
            Stmt::LPush(c, e) => {
                let (e2, ev) = self.expr(e)?;
                let value = if ev { e2 } else { self.splat(e2) };
                out.push(Stmt::LVPush(*c, value, self.sw));
            }
            Stmt::For { var, count, body } => {
                let (count2, cvec) = self.expr(count)?;
                assert!(!cvec, "loop trip count must be uniform");
                let body2 = self.block(body)?;
                out.push(Stmt::For {
                    var: *var,
                    count: count2,
                    body: body2,
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (cond2, cvec) = self.expr(cond)?;
                assert!(!cvec, "branch condition must be uniform");
                let then2 = self.block(then_branch)?;
                let else2 = self.block(else_branch)?;
                out.push(Stmt::If {
                    cond: cond2,
                    then_branch: then2,
                    else_branch: else2,
                });
            }
            Stmt::AdvanceRead(n) => match self.input {
                TapeMode::Strided => out.push(Stmt::AdvanceRead(*n)),
                TapeMode::Vector => out.push(Stmt::AdvanceRead(*n * self.sw)),
                other => panic!("advance_read unsupported in {other:?} mode"),
            },
            Stmt::AdvanceWrite(_)
            | Stmt::RPush { .. }
            | Stmt::VPush { .. }
            | Stmt::LVPush(_, _, _) => {
                panic!("vector/random-access tape ops in scalar input code")
            }
        }
        Ok(())
    }

    /// Rewrite an expression; returns (expr, is_vector).
    fn expr(&mut self, e: &Expr) -> Result<(Expr, bool), SimdizeError> {
        Ok(match e {
            Expr::Const(v) => (Expr::Const(*v), false),
            Expr::Var(v) => (Expr::Var(*v), self.vec_vars.contains(v)),
            Expr::Index(v, i) => {
                let (i2, ivec) = self.expr(i)?;
                assert!(!ivec, "array subscript must be uniform");
                (Expr::Index(*v, Box::new(i2)), self.vec_vars.contains(v))
            }
            Expr::Unary(op, a) => {
                let (a2, av) = self.expr(a)?;
                (Expr::Unary(*op, Box::new(a2)), av)
            }
            Expr::Cast(t, a) => {
                let (a2, av) = self.expr(a)?;
                (Expr::Cast(*t, Box::new(a2)), av)
            }
            Expr::Binary(op, a, b) => {
                let (a2, av) = self.expr(a)?;
                let (b2, bv) = self.expr(b)?;
                let vec = av || bv;
                let a3 = if vec && !av { self.splat(a2) } else { a2 };
                let b3 = if vec && !bv { self.splat(b2) } else { b2 };
                (Expr::bin(*op, a3, b3), vec)
            }
            Expr::Call(i, args) => {
                let parts: Vec<(Expr, bool)> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                let vec = parts.iter().any(|(_, v)| *v);
                let args2 = parts
                    .into_iter()
                    .map(|(a, av)| if vec && !av { self.splat(a) } else { a })
                    .collect();
                (Expr::Call(*i, args2), vec)
            }
            Expr::ConstVec(vs) => (Expr::ConstVec(vs.clone()), true),
            Expr::Pop | Expr::Peek(_) | Expr::LPop(_) => {
                panic!("tape read not normalized out of expression position")
            }
            other => panic!("unexpected vector construct in scalar input: {other}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_sdf::Schedule;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::graph::{Graph, Node, NodeId};
    use macross_vm::{run_scheduled, Machine};

    /// Helper: build src -> actor -> sink, SIMDize the middle actor with
    /// the given modes, and check differential output over `iters`
    /// steady-state iterations of the *scaled* schedule.
    fn differential(
        actor: Filter,
        in_elem: ScalarTy,
        cfg: SingleActorConfig,
        iters: u64,
    ) -> (u64, u64) {
        let mut src = FilterBuilder::new("src", 0, 0, 1, in_elem);
        let n = src.state("n", Ty::Scalar(in_elem));
        src.work(|b| {
            b.push(v(n));
            // Wrap around a small range to keep f32 exact.
            b.set(
                n,
                E(Expr::bin(
                    BinOp::Rem,
                    Expr::bin(
                        BinOp::Add,
                        Expr::Cast(ScalarTy::I32, Box::new(Expr::Var(n))),
                        Expr::Const(Value::I32(1)),
                    ),
                    Expr::Const(Value::I32(1000)),
                ))
                .0,
            );
        });
        // Source state is typed as in_elem; for f32 we cast back.
        let mut srcf = src.build();
        if in_elem == ScalarTy::F32 {
            srcf.work = {
                let mut b = B::new();
                b.push(v(n));
                b.set(
                    n,
                    cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 1000i32),
                );
                b.build()
            };
        }

        let build = |mid: Filter| {
            StreamSpec::pipeline(vec![
                StreamSpec::filter(srcf.clone(), in_elem),
                StreamSpec::filter(mid, cfg.out_elem),
                StreamSpec::Sink,
            ])
            .build()
            .unwrap()
        };

        let scalar_graph = build(actor.clone());
        let vec_actor = simdize_single_actor(&actor, &cfg).unwrap();
        let vec_graph = build(vec_actor);

        // Scalar schedule, scaled by SW (Equation 1 with one SIMDizable
        // actor); the vector schedule is the same with the vectorized
        // actor's repetition number divided by SW — exactly what the
        // driver does.
        let mut ssched = Schedule::compute(&scalar_graph).unwrap();
        ssched.scale(cfg.sw as u64);
        let mut vsched = ssched.clone();
        let actor_id = NodeId(1);
        assert_eq!(vsched.reps[1] % cfg.sw as u64, 0);
        vsched.reps[1] /= cfg.sw as u64;
        // Mark reorder edges for VectorReorder modes.
        let mut vec_graph = vec_graph;
        if cfg.input == TapeMode::VectorReorder {
            let e = vec_graph.single_in_edge(actor_id).unwrap();
            vec_graph.edge_mut(e).reorder = Some(macross_streamir::Reorder {
                rate: actor.pop,
                sw: cfg.sw,
                side: macross_streamir::ReorderSide::Producer,
                addr_gen: macross_streamir::AddrGen::Sagu,
            });
        }
        if cfg.output == TapeMode::VectorReorder {
            let e = vec_graph.single_out_edge(actor_id).unwrap();
            vec_graph.edge_mut(e).reorder = Some(macross_streamir::Reorder {
                rate: actor.push,
                sw: cfg.sw,
                side: macross_streamir::ReorderSide::Consumer,
                addr_gen: macross_streamir::AddrGen::Sagu,
            });
        }

        let machine = Machine::core_i7_with_sagu();
        let a = run_scheduled(&scalar_graph, &ssched, &machine, iters).unwrap();
        let b = run_scheduled(&vec_graph, &vsched, &machine, iters).unwrap();
        assert_eq!(a.output.len(), b.output.len(), "output lengths differ");
        assert!(!a.output.is_empty());
        for (i, (x, y)) in a.output.iter().zip(&b.output).enumerate() {
            assert!(
                x.bits_eq(*y),
                "output {i} differs: scalar {x:?} vs simd {y:?}"
            );
        }
        (a.total_cycles(), b.total_cycles())
    }

    /// The paper's actor D (Figure 3a): pop 2, push 2, loop + sqrt.
    fn actor_d() -> Filter {
        let mut fb = FilterBuilder::new("D", 2, 2, 2, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
        let tmp = fb.local("tmp", Ty::Array(ScalarTy::F32, 2));
        let coeff = fb.state("coeff", Ty::Array(ScalarTy::F32, 2));
        fb.init(|b| {
            b.set_idx(coeff, 0i32, 0.5f32);
            b.set_idx(coeff, 1i32, 0.25f32);
        });
        fb.work(|b| {
            b.for_(i, 2i32, |b| {
                b.set(t, pop());
                b.set_idx(tmp, v(i), v(t) * idx(coeff, v(i)));
            });
            b.push(sqrt(abs(idx(tmp, 0i32) + idx(tmp, 1i32))));
            b.push(sqrt(abs(idx(tmp, 0i32) - idx(tmp, 1i32))));
        });
        fb.build()
    }

    #[test]
    fn strided_mode_preserves_output() {
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        let (scalar, simd) = differential(actor_d(), ScalarTy::F32, cfg, 8);
        assert!(simd < scalar, "SIMD ({simd}) should beat scalar ({scalar})");
    }

    #[test]
    fn permute_mode_preserves_output() {
        let cfg = SingleActorConfig {
            sw: 4,
            input: TapeMode::Permute,
            output: TapeMode::Permute,
            in_elem: ScalarTy::F32,
            out_elem: ScalarTy::F32,
        };
        let (scalar, simd) = differential(actor_d(), ScalarTy::F32, cfg, 8);
        assert!(simd < scalar);
    }

    #[test]
    fn vector_reorder_mode_preserves_output() {
        let cfg = SingleActorConfig {
            sw: 4,
            input: TapeMode::VectorReorder,
            output: TapeMode::VectorReorder,
            in_elem: ScalarTy::F32,
            out_elem: ScalarTy::F32,
        };
        let (scalar, simd) = differential(actor_d(), ScalarTy::F32, cfg, 8);
        assert!(simd < scalar);
    }

    #[test]
    fn permute_beats_strided_on_cost() {
        let strided = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        let permute = SingleActorConfig {
            sw: 4,
            input: TapeMode::Permute,
            output: TapeMode::Permute,
            in_elem: ScalarTy::F32,
            out_elem: ScalarTy::F32,
        };
        let (_, strided_cycles) = differential(actor_d(), ScalarTy::F32, strided, 8);
        let (_, permute_cycles) = differential(actor_d(), ScalarTy::F32, permute, 8);
        assert!(
            permute_cycles < strided_cycles,
            "permute ({permute_cycles}) should beat strided ({strided_cycles})"
        );
    }

    #[test]
    fn peeking_fir_strided() {
        // 4-tap moving sum: peek 4, pop 1, push 1.
        let mut fb = FilterBuilder::new("fir", 4, 1, 1, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
        let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(acc, 0.0f32);
            b.for_(i, 4i32, |b| {
                b.set(acc, v(acc) + peek(v(i)));
            });
            b.set(junk, pop());
            b.push(v(acc));
        });
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        // Peek-heavy actors are correctness-preserving but often
        // unprofitable under strided packing — the driver's cost model is
        // responsible for skipping them, so only output equality is
        // asserted here.
        let (scalar, simd) = differential(fb.build(), ScalarTy::F32, cfg, 6);
        assert!(scalar > 0 && simd > 0);
    }

    #[test]
    fn peeking_rejects_permute_mode() {
        let mut fb = FilterBuilder::new("fir", 2, 1, 1, ScalarTy::F32);
        let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.push(peek(1i32));
            b.set(junk, pop());
        });
        let cfg = SingleActorConfig {
            sw: 4,
            input: TapeMode::Permute,
            output: TapeMode::Strided,
            in_elem: ScalarTy::F32,
            out_elem: ScalarTy::F32,
        };
        assert!(matches!(
            simdize_single_actor(&fb.build(), &cfg),
            Err(SimdizeError::NotVectorizable { .. })
        ));
    }

    #[test]
    fn stateful_rejected() {
        let mut fb = FilterBuilder::new("acc", 1, 1, 1, ScalarTy::F32);
        let s = fb.state("s", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(s, v(s) + pop());
            b.push(v(s));
        });
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        assert!(matches!(
            simdize_single_actor(&fb.build(), &cfg),
            Err(SimdizeError::NotVectorizable { .. })
        ));
    }

    #[test]
    fn figure3_shape_strided_reads() {
        // The vectorized D must read with stride 2 (its pop rate), as in
        // Figure 3b lines 1-4.
        let cfg = SingleActorConfig::strided(4, ScalarTy::F32, ScalarTy::F32);
        let dv = simdize_single_actor(&actor_d(), &cfg).unwrap();
        assert_eq!(dv.pop, 8);
        assert_eq!(dv.push, 8);
        assert_eq!(dv.peek, 8);
        let text = dv.work.iter().map(|s| s.to_string()).collect::<String>();
        assert!(text.contains("peek(6)"), "stride-2 lane 3 read:\n{text}");
        assert!(text.contains("peek(4)"));
        assert!(text.contains("peek(2)"));
        assert!(text.contains("rpush("));
        assert!(text.contains("advance_read(6)"));
        assert!(text.contains("advance_write(6)"));
    }

    #[test]
    fn integer_actor_all_modes() {
        // Bit-manipulation actor (DES-like round function slice).
        let mut fb = FilterBuilder::new("mix", 2, 2, 2, ScalarTy::I32);
        let a = fb.local("a", Ty::Scalar(ScalarTy::I32));
        let bv = fb.local("b", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(a, pop());
            b.set(bv, pop());
            b.push((v(a) ^ (v(bv) << 3i32)) & 0x7fffffffi32);
            b.push((v(bv) | (v(a) >> 2i32)) + 17i32);
        });
        let f = fb.build();
        for (im, om) in [
            (TapeMode::Strided, TapeMode::Strided),
            (TapeMode::Permute, TapeMode::Permute),
            (TapeMode::VectorReorder, TapeMode::VectorReorder),
            (TapeMode::Permute, TapeMode::Strided),
            (TapeMode::Strided, TapeMode::VectorReorder),
        ] {
            let cfg = SingleActorConfig {
                sw: 4,
                input: im,
                output: om,
                in_elem: ScalarTy::I32,
                out_elem: ScalarTy::I32,
            };
            differential(f.clone(), ScalarTy::I32, cfg, 5);
        }
    }

    #[test]
    fn wider_simd_widths() {
        for sw in [2usize, 8] {
            let cfg = SingleActorConfig::strided(sw, ScalarTy::F32, ScalarTy::F32);
            differential(actor_d(), ScalarTy::F32, cfg, 4);
        }
    }

    #[test]
    fn graph_node_replacement_roundtrip() {
        // Sanity: replacing a node in a Graph keeps edges valid.
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 0, 0, 1)));
        let b = g.add_node(Node::Filter(Filter::new("b", 1, 1, 1)));
        let c = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::F32);
        g.connect(b, 0, c, 0, ScalarTy::F32);
        let mut nb = Filter::new("b_v4", 4, 4, 4);
        nb.work = vec![];
        g.replace_node(b, Node::Filter(nb));
        assert_eq!(g.node(b).name(), "b_v4");
        assert_eq!(g.edge_count(), 2);
    }
}
