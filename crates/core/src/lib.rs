//! # macross
//!
//! The core of the MacroSS reproduction (ASPLOS 2010): **macro-SIMDization
//! of streaming applications** — vectorization decided on the stream graph
//! rather than on lowered loops.
//!
//! The crate implements the paper's three graph-level transforms and both
//! tape optimizations, orchestrated by the Algorithm-1 driver:
//!
//! - [`single`] — single-actor SIMDization (Section 3.1): `SW` consecutive
//!   firings of a stateless actor become one data-parallel firing, with
//!   strided scalar tape accesses packing/unpacking lanes.
//! - [`vertical`] — vertical SIMDization (Section 3.2): pipelines of
//!   vectorizable actors are fused so the firing reorder turns their
//!   internal tapes into vector buffers, eliminating the pack/unpack.
//! - [`horizontal`] — horizontal SIMDization (Section 3.3): `SW`
//!   isomorphic task-parallel actors (stateful allowed) merge into one
//!   vector actor on vector tapes, with HSplitter/HJoiner doing the
//!   transposition.
//! - [`permnet`] — permutation-based tape accesses (Section 3.4, Fig. 7).
//! - the SAGU tape optimization (Section 3.4, Figs. 8/9) via
//!   [`single::TapeMode::VectorReorder`] and edge reorder markings, with
//!   the hardware model in the `macross-sagu` crate.
//! - [`driver`] — Algorithm 1: scheduling, segment identification,
//!   Equation-1 repetition adjustment, cost-model-driven tape-mode
//!   selection, and final validation.
//!
//! Every transform is *output-preserving by construction and by test*: the
//! differential harness runs the scalar and SIMDized graphs on the
//! `macross-vm` interpreter and requires bit-identical sink output.
//!
//! ```
//! use macross::driver::{macro_simdize, SimdizeOptions};
//! use macross_streamir::builder::StreamSpec;
//! use macross_streamir::edsl::*;
//! use macross_streamir::types::{ScalarTy, Ty};
//! use macross_vm::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
//! let n = src.state("n", Ty::Scalar(ScalarTy::F32));
//! src.work(|b| { b.push(v(n)); b.set(n, v(n) + 1.0f32); });
//! let mut f = FilterBuilder::new("f", 2, 2, 2, ScalarTy::F32);
//! let a = f.local("a", Ty::Scalar(ScalarTy::F32));
//! f.work(|b| {
//!     b.set(a, pop());
//!     b.push(v(a) * 2.0f32);
//!     b.push(v(a) + pop());
//! });
//! let graph = StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink]).build()?;
//! let simd = macro_simdize(&graph, &Machine::core_i7(), &SimdizeOptions::all())?;
//! assert_eq!(simd.report.single_actors, vec!["f_v4"]);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod cost;
pub mod driver;
pub mod error;
pub mod graph_edit;
pub mod horizontal;
pub mod normalize;
pub mod opt;
pub mod permnet;
pub mod region;
pub mod single;
pub mod vertical;

pub use artifact::{compile_graph, CompiledGraph};
pub use driver::{
    macro_simdize, macro_simdize_colocated, modelled_steady_cost, placement, run_threaded,
    run_threaded_mode, run_threaded_supervised, steady_node_weights, SimdizeOptions, SimdizeReport,
    Simdized, TapeDecision, ThreadedError,
};
pub use error::SimdizeError;
pub use region::{region_width, simdize_region_actor};
pub use single::{simdize_single_actor, SingleActorConfig, TapeMode};
