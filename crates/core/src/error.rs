//! Error type for the macro-SIMDization passes.

use std::fmt;

/// Errors produced by the SIMDization transforms and driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimdizeError {
    /// An actor fails a vectorizability condition for the requested
    /// transform.
    NotVectorizable {
        /// Actor name.
        actor: String,
        /// Which condition failed.
        reason: String,
    },
    /// A transformed actor's measured rates disagree with its declared
    /// rates — an internal consistency failure of the transform.
    RateCheck(String),
    /// Scheduling the (transformed) graph failed.
    Schedule(String),
    /// The graph is structurally unsuitable.
    Graph(String),
}

impl fmt::Display for SimdizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdizeError::NotVectorizable { actor, reason } => {
                write!(f, "actor {actor} is not vectorizable: {reason}")
            }
            SimdizeError::RateCheck(s) => write!(f, "rate self-check failed: {s}"),
            SimdizeError::Schedule(s) => write!(f, "scheduling failed: {s}"),
            SimdizeError::Graph(s) => write!(f, "graph error: {s}"),
        }
    }
}

impl std::error::Error for SimdizeError {}

impl From<macross_sdf::ScheduleError> for SimdizeError {
    fn from(e: macross_sdf::ScheduleError) -> Self {
        SimdizeError::Schedule(e.to_string())
    }
}
