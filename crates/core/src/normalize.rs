//! Work-function normalization: hoists every tape read and every push
//! operand into a fresh local, so the SIMDizer only has to handle the
//! statement forms `v = pop()`, `v = peek(e)`, `v = lpop(ch)` and
//! `push(v)` / `lpush(ch, v)`.

use macross_streamir::expr::{Expr, LValue};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::Ty;

/// Normalize a filter's work body in place.
///
/// `in_elem`/`out_elem` are the element types of the input and output
/// tapes, used to type the hoisted temporaries.
///
/// # Panics
/// Panics if a peek offset or control-flow expression itself reads the
/// tape — the vectorizability analysis rejects such actors before the
/// SIMDizer runs.
pub fn normalize_work(filter: &mut Filter, in_elem: Ty, out_elem: Ty) {
    let body = std::mem::take(&mut filter.work);
    let mut n = Normalizer {
        filter,
        in_elem,
        out_elem,
        counter: 0,
    };
    let work = n.block(body);
    n.filter.work = work;
}

struct Normalizer<'a> {
    filter: &'a mut Filter,
    in_elem: Ty,
    out_elem: Ty,
    counter: usize,
}

impl<'a> Normalizer<'a> {
    fn fresh(&mut self, ty: Ty) -> macross_streamir::expr::VarId {
        let name = format!("__t{}", self.counter);
        self.counter += 1;
        self.filter.add_var(name, ty, VarKind::Local)
    }

    fn block(&mut self, stmts: Vec<Stmt>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn stmt(&mut self, s: Stmt, out: &mut Vec<Stmt>) {
        match s {
            // Already-normal tape-read assignments stay put when the target
            // is a plain variable.
            Stmt::Assign(lv @ LValue::Var(_), e @ (Expr::Pop | Expr::LPop(_))) => {
                out.push(Stmt::Assign(lv, e))
            }
            Stmt::Assign(lv @ LValue::Var(_), Expr::Peek(off)) => {
                assert!(!off.reads_tape(), "peek offset reads the tape");
                out.push(Stmt::Assign(lv, Expr::Peek(off)));
            }
            Stmt::Assign(lv, e) => {
                let e = self.hoist(e, out);
                if let LValue::Index(_, i) | LValue::LaneIndex(_, i, _) | LValue::VIndex(_, i, _) =
                    &lv
                {
                    assert!(!i.reads_tape(), "array subscript reads the tape");
                }
                out.push(Stmt::Assign(lv, e));
            }
            Stmt::Push(e) => {
                let e = self.hoist(e, out);
                let var = self.as_var(e, self.out_elem, out);
                out.push(Stmt::Push(Expr::Var(var)));
            }
            Stmt::LPush(c, e) => {
                let e = self.hoist(e, out);
                let ty = self.filter.chans[c.0 as usize].ty;
                let var = self.as_var(e, ty, out);
                out.push(Stmt::LPush(c, Expr::Var(var)));
            }
            Stmt::RPush { value, offset } => {
                let value = self.hoist(value, out);
                assert!(!offset.reads_tape(), "rpush offset reads the tape");
                out.push(Stmt::RPush { value, offset });
            }
            Stmt::VPush { value, width } => {
                let value = self.hoist(value, out);
                out.push(Stmt::VPush { value, width });
            }
            Stmt::LVPush(c, e, w) => {
                let e = self.hoist(e, out);
                out.push(Stmt::LVPush(c, e, w));
            }
            Stmt::For { var, count, body } => {
                assert!(!count.reads_tape(), "loop trip count reads the tape");
                let body = self.block(body);
                out.push(Stmt::For { var, count, body });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                assert!(!cond.reads_tape(), "branch condition reads the tape");
                let then_branch = self.block(then_branch);
                let else_branch = self.block(else_branch);
                out.push(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                });
            }
            s @ (Stmt::AdvanceRead(_) | Stmt::AdvanceWrite(_)) => out.push(s),
        }
    }

    /// Ensure an expression is a variable reference, hoisting if needed.
    fn as_var(&mut self, e: Expr, ty: Ty, out: &mut Vec<Stmt>) -> macross_streamir::expr::VarId {
        if let Expr::Var(v) = e {
            return v;
        }
        let t = self.fresh(ty);
        out.push(Stmt::Assign(LValue::Var(t), e));
        t
    }

    /// Replace tape reads inside `e` with fresh temporaries assigned in
    /// left-to-right evaluation order.
    fn hoist(&mut self, e: Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Pop => {
                let t = self.fresh(self.in_elem);
                out.push(Stmt::Assign(LValue::Var(t), Expr::Pop));
                Expr::Var(t)
            }
            Expr::Peek(off) => {
                assert!(!off.reads_tape(), "peek offset reads the tape");
                let t = self.fresh(self.in_elem);
                out.push(Stmt::Assign(LValue::Var(t), Expr::Peek(off)));
                Expr::Var(t)
            }
            Expr::LPop(c) => {
                let ty = self.filter.chans[c.0 as usize].ty;
                let t = self.fresh(ty);
                out.push(Stmt::Assign(LValue::Var(t), Expr::LPop(c)));
                Expr::Var(t)
            }
            Expr::VPop { .. } | Expr::VPeek { .. } | Expr::LVPop(_, _) => {
                panic!("normalizing already-vectorized code")
            }
            Expr::Const(_) | Expr::ConstVec(_) | Expr::Var(_) => e,
            Expr::Index(v, i) => Expr::Index(v, Box::new(self.hoist(*i, out))),
            Expr::VIndex(v, i, w) => Expr::VIndex(v, Box::new(self.hoist(*i, out)), w),
            Expr::Unary(op, a) => Expr::Unary(op, Box::new(self.hoist(*a, out))),
            Expr::Binary(op, a, b) => {
                let a = self.hoist(*a, out);
                let b = self.hoist(*b, out);
                Expr::bin(op, a, b)
            }
            Expr::Call(i, args) => {
                Expr::Call(i, args.into_iter().map(|a| self.hoist(a, out)).collect())
            }
            Expr::Cast(t, a) => Expr::Cast(t, Box::new(self.hoist(*a, out))),
            Expr::Lane(a, l) => Expr::Lane(Box::new(self.hoist(*a, out)), l),
            Expr::Splat(a, w) => Expr::Splat(Box::new(self.hoist(*a, out)), w),
            Expr::PermuteEven(a, b) => {
                let a = self.hoist(*a, out);
                let b = self.hoist(*b, out);
                Expr::PermuteEven(Box::new(a), Box::new(b))
            }
            Expr::PermuteOdd(a, b) => {
                let a = self.hoist(*a, out);
                let b = self.hoist(*b, out);
                Expr::PermuteOdd(Box::new(a), Box::new(b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_streamir::analysis::measure_rates;
    use macross_streamir::edsl::*;
    use macross_streamir::types::ScalarTy;

    fn f32_ty() -> Ty {
        Ty::Scalar(ScalarTy::F32)
    }

    #[test]
    fn hoists_pop_out_of_expression() {
        let mut fb = FilterBuilder::new("x", 2, 2, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop() + pop());
        });
        let mut f = fb.build();
        normalize_work(&mut f, f32_ty(), f32_ty());
        // t0 = pop; t1 = pop; t2 = t0 + t1; push(t2)
        assert_eq!(f.work.len(), 4);
        assert!(matches!(
            &f.work[0],
            Stmt::Assign(LValue::Var(_), Expr::Pop)
        ));
        assert!(matches!(&f.work[3], Stmt::Push(Expr::Var(_))));
        assert_eq!(measure_rates(&f.work).unwrap().pop, 2);
    }

    #[test]
    fn preserves_evaluation_order() {
        // push(peek(1) - pop()): peek must be hoisted before the pop.
        let mut fb = FilterBuilder::new("x", 2, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(peek(1i32) - pop());
        });
        let mut f = fb.build();
        normalize_work(&mut f, f32_ty(), f32_ty());
        assert!(matches!(&f.work[0], Stmt::Assign(_, Expr::Peek(_))));
        assert!(matches!(&f.work[1], Stmt::Assign(_, Expr::Pop)));
    }

    #[test]
    fn keeps_normal_forms_untouched() {
        let mut fb = FilterBuilder::new("x", 1, 1, 1, ScalarTy::F32);
        let t = fb.local("t", f32_ty());
        fb.work(|b| {
            b.set(t, pop());
            b.push(v(t));
        });
        let mut f = fb.build();
        let before = f.work.clone();
        normalize_work(&mut f, f32_ty(), f32_ty());
        assert_eq!(f.work, before);
    }

    #[test]
    fn hoists_inside_loops_stay_inside() {
        let mut fb = FilterBuilder::new("x", 4, 4, 4, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(pop() * 2.0f32);
            });
        });
        let mut f = fb.build();
        normalize_work(&mut f, f32_ty(), f32_ty());
        match &f.work[0] {
            Stmt::For { body, .. } => {
                assert!(matches!(&body[0], Stmt::Assign(_, Expr::Pop)));
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        assert_eq!(measure_rates(&f.work).unwrap().pop, 4);
    }

    #[test]
    fn behaviour_is_preserved_under_vm() {
        use macross_streamir::builder::StreamSpec;
        use macross_vm::{run_program, Machine};
        let mk = |normalized: bool| {
            let mut src = FilterBuilder::new("src", 0, 0, 2, ScalarTy::F32);
            let n = src.state("n", f32_ty());
            src.work(|b| {
                b.push(v(n));
                b.set(n, v(n) + 1.0f32);
                b.push(v(n) * 0.5f32);
                b.set(n, v(n) + 1.0f32);
            });
            let mut fb = FilterBuilder::new("f", 3, 2, 2, ScalarTy::F32);
            fb.work(|b| {
                b.push(peek(2i32) - pop());
                b.push(pop() * 3.0f32);
            });
            let mut f = fb.build();
            if normalized {
                normalize_work(&mut f, f32_ty(), f32_ty());
            }
            StreamSpec::pipeline(vec![
                src.build_spec(),
                StreamSpec::filter(f, ScalarTy::F32),
                StreamSpec::Sink,
            ])
            .build()
            .unwrap()
        };
        let machine = Machine::core_i7();
        let a = run_program(&mk(false), &machine, 5).unwrap();
        let b = run_program(&mk(true), &machine, 5).unwrap();
        assert_eq!(a.output, b.output);
    }
}
