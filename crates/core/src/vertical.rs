//! Vertical SIMDization (Section 3.2): fuse a pipeline of vectorizable
//! actors into one coarse actor whose inner actors communicate through
//! internal channels — which the subsequent single-actor SIMDization of
//! the coarse actor turns into *vector* buffers, eliminating the
//! packing/unpacking between the fused actors (Figure 5).

use crate::error::SimdizeError;
use macross_sdf::gcd;
use macross_streamir::analysis::analyze_vectorizability;
use macross_streamir::expr::{ChanId, Expr, LValue, VarId};
use macross_streamir::filter::{Filter, VarKind};
use macross_streamir::graph::{Graph, Node, NodeId};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{ScalarTy, Ty};

/// Why two adjacent actors cannot be fused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseBlocker {
    /// One of the actors fails the vectorizability conditions.
    NotVectorizable(String),
    /// A non-head actor peeks (its window would become fused-actor state).
    InnerPeek(String),
    /// The nodes are not a filter-to-filter pipeline edge.
    NotPipeline,
}

/// Check whether `up -> down` is a fusable pipeline link: both filters
/// SIMDizable, connected one-to-one, and `down` consumes with plain pops
/// only (the paper allows peeking only at the endpoints of a fused
/// pipeline; we require it only at the head — see DESIGN.md).
pub fn link_fusable(graph: &Graph, up: NodeId, down: NodeId) -> Result<(), FuseBlocker> {
    let (upf, downf) = match (graph.node(up), graph.node(down)) {
        (Node::Filter(a), Node::Filter(b)) => (a, b),
        _ => return Err(FuseBlocker::NotPipeline),
    };
    let out = graph.single_out_edge(up).ok_or(FuseBlocker::NotPipeline)?;
    if graph.edge(out).dst != down || graph.single_in_edge(down) != Some(out) {
        return Err(FuseBlocker::NotPipeline);
    }
    for f in [upf, downf] {
        let va = analyze_vectorizability(f);
        if !va.simdizable() {
            return Err(FuseBlocker::NotVectorizable(f.name.clone()));
        }
    }
    if downf.peek > downf.pop || crate::single::uses_peek(downf) {
        return Err(FuseBlocker::InnerPeek(downf.name.clone()));
    }
    Ok(())
}

/// Fuse a chain of pipeline actors into one coarse actor.
///
/// `reps` are the actors' repetition numbers in the current steady state;
/// inner repetition counts are `reps[i] / gcd(reps)` and the coarse actor
/// fires `gcd(reps)` times per steady state.
///
/// # Errors
/// Fails if any link is not fusable.
///
/// # Panics
/// Panics if `chain.len() < 2` or the chain/reps lengths differ.
pub fn fuse_chain(graph: &Graph, chain: &[NodeId], reps: &[u64]) -> Result<Filter, SimdizeError> {
    assert!(chain.len() >= 2, "fusing needs at least two actors");
    assert_eq!(chain.len(), reps.len());
    for w in chain.windows(2) {
        link_fusable(graph, w[0], w[1]).map_err(|b| SimdizeError::NotVectorizable {
            actor: graph.node(w[0]).name(),
            reason: format!("cannot fuse with successor: {b:?}"),
        })?;
    }

    let g = reps.iter().copied().fold(0, gcd).max(1);
    let inner_reps: Vec<u64> = reps.iter().map(|r| r / g).collect();
    let filters: Vec<&Filter> = chain
        .iter()
        .map(|&id| graph.node(id).as_filter().expect("filters"))
        .collect();

    // Name in the paper's style: 3D_2E.
    let name = filters
        .iter()
        .zip(&inner_reps)
        .map(|(f, r)| format!("{r}{}", f.name))
        .collect::<Vec<_>>()
        .join("_");

    let head = filters[0];
    let tail = filters[filters.len() - 1];
    let r0 = inner_reps[0] as usize;
    let rn = inner_reps[inner_reps.len() - 1] as usize;
    let mut fused = Filter::new(
        name,
        (r0 - 1) * head.pop + head.peek,
        r0 * head.pop,
        rn * tail.push,
    );

    // Internal channels between adjacent inner actors, typed by the
    // connecting tape's element type.
    let mut chans: Vec<ChanId> = Vec::new();
    for w in chain.windows(2) {
        let e = graph.single_out_edge(w[0]).expect("pipeline edge");
        let elem = graph.edge(e).elem;
        let up_name = graph.node(w[0]).name();
        chans.push(fused.add_chan(format!("buf_{up_name}"), Ty::Scalar(elem)));
    }

    for (i, f) in filters.iter().enumerate() {
        assert!(f.chans.is_empty(), "inner actor already fused");
        // Remap this inner actor's variables into the fused namespace.
        let base = fused.vars.len() as u32;
        for v in &f.vars {
            fused.vars.push(v.clone());
        }
        let in_chan = if i > 0 { Some(chans[i - 1]) } else { None };
        let out_chan = if i < filters.len() - 1 {
            Some(chans[i])
        } else {
            None
        };

        let init = remap_block(&f.init, base, in_chan, out_chan);
        fused.init.extend(init);

        let body = remap_block(&f.work, base, in_chan, out_chan);
        let r = inner_reps[i] as usize;
        if r == 1 {
            fused.work.extend(body);
        } else {
            let wc = fused.add_var(
                format!("work_counter{i}"),
                Ty::Scalar(ScalarTy::I32),
                VarKind::Local,
            );
            fused.work.push(Stmt::For {
                var: wc,
                count: Expr::Const(macross_streamir::types::Value::I32(r as i32)),
                body,
            });
        }
    }
    Ok(fused)
}

/// Remap variable ids by `base` and redirect tape accesses to internal
/// channels where the actor is not at the fused boundary.
fn remap_block(
    stmts: &[Stmt],
    base: u32,
    in_chan: Option<ChanId>,
    out_chan: Option<ChanId>,
) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| remap_stmt(s, base, in_chan, out_chan))
        .collect()
}

fn remap_stmt(s: &Stmt, base: u32, ic: Option<ChanId>, oc: Option<ChanId>) -> Stmt {
    let e = |e: &Expr| remap_expr(e, base, ic);
    match s {
        Stmt::Assign(lv, rhs) => Stmt::Assign(remap_lvalue(lv, base, ic), e(rhs)),
        Stmt::Push(v) => match oc {
            Some(c) => Stmt::LPush(c, e(v)),
            None => Stmt::Push(e(v)),
        },
        Stmt::RPush { value, offset } => {
            assert!(oc.is_none(), "rpush inside a fused inner actor");
            Stmt::RPush {
                value: e(value),
                offset: e(offset),
            }
        }
        Stmt::VPush { .. } | Stmt::LVPush(_, _, _) => panic!("vector ops in scalar fusion input"),
        Stmt::LPush(_, _) => panic!("inner actor already has channels"),
        Stmt::For { var, count, body } => Stmt::For {
            var: VarId(var.0 + base),
            count: e(count),
            body: remap_block(body, base, ic, oc),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: e(cond),
            then_branch: remap_block(then_branch, base, ic, oc),
            else_branch: remap_block(else_branch, base, ic, oc),
        },
        Stmt::AdvanceRead(n) => {
            assert!(
                ic.is_none(),
                "peeking consumption inside a fused inner actor"
            );
            Stmt::AdvanceRead(*n)
        }
        Stmt::AdvanceWrite(n) => Stmt::AdvanceWrite(*n),
    }
}

fn remap_lvalue(lv: &LValue, base: u32, ic: Option<ChanId>) -> LValue {
    match lv {
        LValue::Var(v) => LValue::Var(VarId(v.0 + base)),
        LValue::Index(v, i) => LValue::Index(VarId(v.0 + base), remap_expr(i, base, ic)),
        LValue::LaneVar(v, l) => LValue::LaneVar(VarId(v.0 + base), *l),
        LValue::LaneIndex(v, i, l) => {
            LValue::LaneIndex(VarId(v.0 + base), remap_expr(i, base, ic), *l)
        }
        LValue::VIndex(_, _, _) => panic!("vector lvalue in scalar fusion input"),
    }
}

fn remap_expr(e: &Expr, base: u32, ic: Option<ChanId>) -> Expr {
    let r = |e: &Expr| remap_expr(e, base, ic);
    match e {
        Expr::Const(v) => Expr::Const(*v),
        Expr::ConstVec(v) => Expr::ConstVec(v.clone()),
        Expr::Var(v) => Expr::Var(VarId(v.0 + base)),
        Expr::Index(v, i) => Expr::Index(VarId(v.0 + base), Box::new(r(i))),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(r(a))),
        Expr::Binary(op, a, b) => Expr::bin(*op, r(a), r(b)),
        Expr::Call(i, args) => Expr::Call(*i, args.iter().map(r).collect()),
        Expr::Cast(t, a) => Expr::Cast(*t, Box::new(r(a))),
        Expr::Pop => match ic {
            Some(c) => Expr::LPop(c),
            None => Expr::Pop,
        },
        Expr::Peek(off) => {
            assert!(ic.is_none(), "peek inside a fused inner actor");
            Expr::Peek(Box::new(r(off)))
        }
        Expr::LPop(_) => panic!("inner actor already has channels"),
        other => panic!("vector construct in scalar fusion input: {other}"),
    }
}

/// Replace a fused chain in the graph: the chain's nodes are removed, the
/// fused actor inserted, and boundary edges reconnected. Returns the new
/// graph and the fused actor's node id.
pub fn splice_fused(graph: &Graph, chain: &[NodeId], fused: Filter) -> (Graph, NodeId) {
    use crate::graph_edit::rebuild_without;
    use std::collections::HashSet;
    let remove: HashSet<NodeId> = chain.iter().copied().collect();
    let head = chain[0];
    let tail = *chain.last().expect("non-empty chain");
    let mut r = rebuild_without(graph, &remove);
    let fused_id = r.graph.add_node(Node::Filter(fused));
    for e in &r.dropped_edges {
        if e.dst == head {
            if let Some(src) = r.node_map[e.src.0 as usize] {
                r.graph.connect(src, e.src_port, fused_id, 0, e.elem);
            }
        } else if e.src == tail {
            if let Some(dst) = r.node_map[e.dst.0 as usize] {
                r.graph.connect(fused_id, 0, dst, e.dst_port, e.elem);
            }
        }
        // Edges strictly inside the chain vanish into internal channels.
    }
    (r.graph, fused_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{simdize_single_actor, SingleActorConfig};
    use macross_sdf::Schedule;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_streamir::types::Value;
    use macross_vm::{run_scheduled, Machine, RunResult};

    /// Paper's actor D (pop 2, push 2).
    fn actor_d() -> Filter {
        let mut fb = FilterBuilder::new("D", 2, 2, 2, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
        let tmp = fb.local("tmp", Ty::Array(ScalarTy::F32, 2));
        let coeff = fb.state("coeff", Ty::Array(ScalarTy::F32, 2));
        fb.init(|b| {
            b.set_idx(coeff, 0i32, 0.5f32);
            b.set_idx(coeff, 1i32, 0.25f32);
        });
        fb.work(|b| {
            b.for_(i, 2i32, |b| {
                b.set(t, pop());
                b.set_idx(tmp, v(i), v(t) * idx(coeff, v(i)));
            });
            b.push(sqrt(abs(idx(tmp, 0i32) + idx(tmp, 1i32))));
            b.push(sqrt(abs(idx(tmp, 0i32) - idx(tmp, 1i32))));
        });
        fb.build()
    }

    /// Paper's actor E (pop 3, push 4) with sin/cos.
    fn actor_e() -> Filter {
        let mut fb = FilterBuilder::new("E", 3, 3, 4, ScalarTy::F32);
        let x0 = fb.local("x0", Ty::Scalar(ScalarTy::F32));
        let x1 = fb.local("x1", Ty::Scalar(ScalarTy::F32));
        let x2 = fb.local("x2", Ty::Scalar(ScalarTy::F32));
        let res = fb.local("result", Ty::Array(ScalarTy::F32, 4));
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x0, pop());
            b.set(x1, pop());
            b.set(x2, pop());
            b.set_idx(res, 0i32, v(x1) * cos(v(x0)) + v(x2));
            b.set_idx(res, 1i32, v(x0) * cos(v(x1)) + v(x2));
            b.set_idx(res, 2i32, v(x1) * sin(v(x0)) + v(x2));
            b.set_idx(res, 3i32, v(x0) * sin(v(x1)) + v(x2));
            b.for_(i, 4i32, |b| {
                b.push(idx(res, v(i)));
            });
        });
        fb.build()
    }

    fn f32_source() -> StreamSpec {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n) * 0.125f32);
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 512i32),
            );
        });
        src.build_spec()
    }

    fn pipeline_graph(mid: Vec<Filter>) -> Graph {
        let mut stages = vec![f32_source()];
        for f in mid {
            stages.push(StreamSpec::filter(f, ScalarTy::F32));
        }
        stages.push(StreamSpec::Sink);
        StreamSpec::pipeline(stages).build().unwrap()
    }

    fn run(graph: &Graph, sched: &Schedule, iters: u64) -> RunResult {
        run_scheduled(graph, sched, &Machine::core_i7(), iters).unwrap()
    }

    #[test]
    fn fuse_d_e_matches_paper_shape() {
        let g = pipeline_graph(vec![actor_d(), actor_e()]);
        let sched = Schedule::compute(&g).unwrap();
        // D rep 3, E rep 2 within gcd: overall reps depend on src/sink; D=3k, E=2k.
        let (d_id, e_id) = (NodeId(1), NodeId(2));
        let reps = [sched.rep(d_id), sched.rep(e_id)];
        let fused = fuse_chain(&g, &[d_id, e_id], &reps).unwrap();
        assert_eq!(fused.name, "3D_2E");
        assert_eq!(fused.pop, 6);
        assert_eq!(fused.push, 8);
        assert_eq!(fused.peek, 6);
        assert_eq!(fused.chans.len(), 1);
    }

    #[test]
    fn fused_actor_is_output_equivalent() {
        let g = pipeline_graph(vec![actor_d(), actor_e()]);
        let sched = Schedule::compute(&g).unwrap();
        let reps = [sched.rep(NodeId(1)), sched.rep(NodeId(2))];
        let fused = fuse_chain(&g, &[NodeId(1), NodeId(2)], &reps).unwrap();
        let (fg, _) = splice_fused(&g, &[NodeId(1), NodeId(2)], fused);
        let fsched = Schedule::compute(&fg).unwrap();

        // Equal throughput: scale both to the same number of source firings.
        let mut s1 = sched.clone();
        let mut s2 = fsched.clone();
        let l = macross_sdf::lcm(s1.reps[0], s2.reps[0]);
        let (m1, m2) = (l / s1.reps[0], l / s2.reps[0]);
        s1.scale(m1);
        s2.scale(m2);
        let a = run(&g, &s1, 6);
        let b = run(&fg, &s2, 6);
        assert_eq!(a.output.len(), b.output.len());
        for (x, y) in a.output.iter().zip(&b.output) {
            assert!(x.bits_eq(*y), "{x:?} != {y:?}");
        }
    }

    #[test]
    fn vertical_simdization_eliminates_pack_unpack() {
        // Build both versions: (a) single-actor SIMDize D and E separately;
        // (b) fuse then SIMDize the coarse actor. Both must match scalar
        // output; (b) must spend fewer pack/unpack cycles.
        let sw = 4usize;
        let scalar_graph = pipeline_graph(vec![actor_d(), actor_e()]);
        let base = Schedule::compute(&scalar_graph).unwrap();

        // --- scalar reference, scaled for equal throughput ---
        // reps: src 12, D 6, E 4, sink 16? (depends); scale everything by 4.
        let mut ssched = base.clone();
        ssched.scale(sw as u64);

        // (a) separate single-actor SIMDization.
        let cfg = SingleActorConfig::strided(sw, ScalarTy::F32, ScalarTy::F32);
        let dv = simdize_single_actor(&actor_d(), &cfg).unwrap();
        let ev = simdize_single_actor(&actor_e(), &cfg).unwrap();
        let mut ga = pipeline_graph(vec![actor_d(), actor_e()]);
        ga.replace_node(NodeId(1), Node::Filter(dv));
        ga.replace_node(NodeId(2), Node::Filter(ev));
        let mut sa = base.clone();
        sa.scale(sw as u64);
        sa.reps[1] /= sw as u64;
        sa.reps[2] /= sw as u64;

        // (b) vertical: fuse then SIMDize.
        let reps = [base.rep(NodeId(1)), base.rep(NodeId(2))];
        let fused = fuse_chain(&scalar_graph, &[NodeId(1), NodeId(2)], &reps).unwrap();
        let (mut gb, fused_id) = splice_fused(&scalar_graph, &[NodeId(1), NodeId(2)], fused);
        let fsched = Schedule::compute(&gb).unwrap();
        let fused_filter = gb.node(fused_id).as_filter().unwrap().clone();
        let coarse_v = simdize_single_actor(&fused_filter, &cfg).unwrap();
        gb.replace_node(fused_id, Node::Filter(coarse_v));
        let mut sb = fsched.clone();
        sb.scale(sw as u64);
        sb.reps[fused_id.0 as usize] /= sw as u64;

        // Align throughput across all three runs via source reps.
        let l = [ssched.reps[0], sa.reps[0], sb.reps[0]]
            .into_iter()
            .fold(1, macross_sdf::lcm);
        let scale_for = |s: &mut Schedule| {
            let m = l / s.reps[0];
            s.scale(m);
        };
        scale_for(&mut ssched);
        scale_for(&mut sa);
        scale_for(&mut sb);

        let machine = Machine::core_i7();
        let r_scalar = run_scheduled(&scalar_graph, &ssched, &machine, 4).unwrap();
        let r_single = run_scheduled(&ga, &sa, &machine, 4).unwrap();
        let r_vert = run_scheduled(&gb, &sb, &machine, 4).unwrap();

        assert_eq!(r_scalar.output.len(), r_single.output.len());
        assert_eq!(r_scalar.output.len(), r_vert.output.len());
        for ((x, y), z) in r_scalar
            .output
            .iter()
            .zip(&r_single.output)
            .zip(&r_vert.output)
        {
            assert!(x.bits_eq(*y), "single-actor mismatch");
            assert!(x.bits_eq(*z), "vertical mismatch");
        }
        assert!(
            r_vert.counters.pack_unpack < r_single.counters.pack_unpack,
            "vertical ({}) must pack/unpack less than single-actor ({})",
            r_vert.counters.pack_unpack,
            r_single.counters.pack_unpack
        );
        assert!(
            r_vert.total_cycles() < r_single.total_cycles(),
            "vertical ({}) must beat single-actor ({})",
            r_vert.total_cycles(),
            r_single.total_cycles()
        );
        assert!(r_vert.total_cycles() < r_scalar.total_cycles());
    }

    #[test]
    fn stateful_link_rejected() {
        let mut acc = FilterBuilder::new("acc", 1, 1, 1, ScalarTy::F32);
        let s = acc.state("s", Ty::Scalar(ScalarTy::F32));
        acc.work(|b| {
            b.set(s, v(s) + pop());
            b.push(v(s));
        });
        let g = pipeline_graph(vec![actor_d(), acc.build()]);
        assert!(matches!(
            link_fusable(&g, NodeId(1), NodeId(2)),
            Err(FuseBlocker::NotVectorizable(_))
        ));
    }

    #[test]
    fn inner_peek_rejected() {
        let mut fir = FilterBuilder::new("fir", 3, 1, 1, ScalarTy::F32);
        let junk = fir.local("j", Ty::Scalar(ScalarTy::F32));
        fir.work(|b| {
            b.push(peek(0i32) + peek(2i32));
            b.set(junk, pop());
        });
        let g = pipeline_graph(vec![actor_d(), fir.build()]);
        assert!(matches!(
            link_fusable(&g, NodeId(1), NodeId(2)),
            Err(FuseBlocker::InnerPeek(_))
        ));
    }

    #[test]
    fn head_peek_allowed() {
        let mut fir = FilterBuilder::new("fir", 3, 1, 1, ScalarTy::F32);
        let junk = fir.local("j", Ty::Scalar(ScalarTy::F32));
        fir.work(|b| {
            b.push(peek(0i32) + peek(2i32));
            b.set(junk, pop());
        });
        // fir (peeking head) -> D: allowed.
        let g = pipeline_graph(vec![fir.build(), actor_d()]);
        link_fusable(&g, NodeId(1), NodeId(2)).unwrap();
        let sched = Schedule::compute(&g).unwrap();
        let reps = [sched.rep(NodeId(1)), sched.rep(NodeId(2))];
        let fused = fuse_chain(&g, &[NodeId(1), NodeId(2)], &reps).unwrap();
        assert!(fused.peek > fused.pop);
        let _ = Expr::Const(Value::I32(0));
    }
}
