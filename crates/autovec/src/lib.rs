//! # macross-autovec
//!
//! The *traditional* auto-vectorization baseline the paper compares
//! MacroSS against (Section 4 / Figure 10): a local loop vectorizer that
//! sees one actor's lowered work function at a time.
//!
//! Exactly like GCC/ICC on the StreamIt-generated C++, this pass:
//!
//! - cannot change the steady-state schedule or repetition numbers,
//! - cannot fuse actors or merge isomorphic ones,
//! - cannot restructure tape layouts,
//! - can only vectorize innermost counted loops whose bodies pass a
//!   conventional legality check (no control flow, unit-stride accesses,
//!   privatizable temporaries, recognized reductions).
//!
//! Two presets model the paper's two host compilers:
//!
//! - [`AutovecConfig::gcc_like`]: no vector math library and no
//!   floating-point reassociation (GCC's defaults) — "GCC shows
//!   unimpressive gains".
//! - [`AutovecConfig::icc_like`]: SVML-style vector math calls and
//!   fast-FP reductions (ICC's defaults, which reassociate) — "fairly
//!   large gains (1.34x on average)".
//!
//! Because the ICC preset reassociates floating-point reductions, its
//! output is *not* bit-identical to scalar; the differential tests use a
//! relative tolerance for it, and exact equality for everything else —
//! faithfully mirroring the real compilers.

use macross_streamir::expr::{BinOp, Expr, LValue, VarId};
use macross_streamir::filter::VarKind;
use macross_streamir::graph::{Graph, Node};
use macross_streamir::stmt::Stmt;
use macross_streamir::types::{ScalarTy, Ty, Value};
use std::collections::HashSet;

/// Auto-vectorizer behaviour knobs modelling a host compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutovecConfig {
    /// Preset name for reports.
    pub name: String,
    /// Vector width.
    pub sw: usize,
    /// A vector math library is available for intrinsic calls.
    pub vector_math: bool,
    /// Floating-point reductions may be reassociated (changes results!).
    pub fp_reductions: bool,
    /// Integer reductions may be vectorized (exact).
    pub int_reductions: bool,
}

impl AutovecConfig {
    /// GCC-4.3-like defaults: conservative.
    pub fn gcc_like(sw: usize) -> AutovecConfig {
        AutovecConfig {
            name: "gcc_like".into(),
            sw,
            vector_math: false,
            fp_reductions: false,
            int_reductions: true,
        }
    }

    /// ICC-11-like defaults: vector math library, fast-FP reductions.
    pub fn icc_like(sw: usize) -> AutovecConfig {
        AutovecConfig {
            name: "icc_like".into(),
            sw,
            vector_math: true,
            fp_reductions: true,
            int_reductions: true,
        }
    }
}

/// Report of what the pass vectorized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AutovecReport {
    /// `(actor, loops vectorized)` for actors where at least one loop was.
    pub vectorized: Vec<(String, usize)>,
    /// Total loops examined.
    pub loops_seen: usize,
    /// Loops rejected by legality.
    pub loops_rejected: usize,
}

/// Auto-vectorize every filter of a graph in place, returning the report.
///
/// The graph's schedule and rates are untouched — this is precisely the
/// limitation the paper identifies in traditional post-lowering
/// vectorization.
pub fn autovectorize_graph(graph: &mut Graph, cfg: &AutovecConfig) -> AutovecReport {
    let mut report = AutovecReport::default();
    for id in graph.node_ids().collect::<Vec<_>>() {
        if let Node::Filter(f) = graph.node_mut(id) {
            let mut count = 0;
            let mut pass = LoopVectorizer {
                cfg,
                filter_vars: f.vars.clone(),
                new_vars: Vec::new(),
                report: &mut report,
            };
            let body = std::mem::take(&mut f.work);
            let body = pass.block(body, &mut count);
            let new_vars = std::mem::take(&mut pass.new_vars);
            for (name, ty) in new_vars {
                f.add_var(name, ty, VarKind::Local);
            }
            f.work = body;
            if count > 0 {
                report.vectorized.push((f.name.clone(), count));
            }
        }
    }
    report
}

struct LoopVectorizer<'a> {
    cfg: &'a AutovecConfig,
    filter_vars: Vec<macross_streamir::filter::VarDecl>,
    new_vars: Vec<(String, Ty)>,
    report: &'a mut AutovecReport,
}

/// Affine form `i + c` of an index expression in the loop variable.
fn affine_in(e: &Expr, i: VarId) -> Option<(bool, i32)> {
    match e {
        Expr::Var(v) if *v == i => Some((true, 0)),
        Expr::Const(Value::I32(c)) => Some((false, *c)),
        Expr::Binary(BinOp::Add, a, b) => {
            let (ai, ac) = affine_in(a, i)?;
            let (bi, bc) = affine_in(b, i)?;
            if ai && bi {
                None // 2*i: non-unit stride
            } else {
                Some((ai || bi, ac.wrapping_add(bc)))
            }
        }
        _ => None,
    }
}

fn uses_var(e: &Expr, v: VarId) -> bool {
    let mut hit = false;
    e.walk(&mut |e| {
        if matches!(e, Expr::Var(w) | Expr::Index(w, _) if *w == v) {
            hit = true;
        }
    });
    hit
}

/// Everything the legality scan learns about a candidate loop body.
struct BodyInfo {
    /// Temps written before being read (become fresh vector temps).
    private: HashSet<VarId>,
    /// Reduction accumulators `acc = acc + e`.
    reductions: HashSet<VarId>,
    /// Pops per iteration (must be 0 or 1).
    pops: usize,
    /// Pushes per iteration (must be 0 or 1).
    pushes: usize,
}

impl<'a> LoopVectorizer<'a> {
    fn fresh(&mut self, name: &str, ty: Ty) -> VarId {
        let id = VarId((self.filter_vars.len()) as u32);
        self.filter_vars.push(macross_streamir::filter::VarDecl {
            name: format!("{name}{}", self.new_vars.len()),
            ty,
            kind: VarKind::Local,
        });
        self.new_vars
            .push((format!("{name}{}", self.new_vars.len()), ty));
        id
    }

    fn var_ty(&self, v: VarId) -> Ty {
        self.filter_vars[v.0 as usize].ty
    }

    fn block(&mut self, stmts: Vec<Stmt>, count: &mut usize) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    count: c,
                    body,
                } => {
                    let inner_has_control = body
                        .iter()
                        .any(|s| matches!(s, Stmt::For { .. } | Stmt::If { .. }));
                    if inner_has_control {
                        // Not innermost: recurse, then leave this loop scalar.
                        let body = self.block(body, count);
                        out.push(Stmt::For {
                            var,
                            count: c,
                            body,
                        });
                        continue;
                    }
                    self.report.loops_seen += 1;
                    match self.try_vectorize(var, &c, &body, &out) {
                        Some(mut v) => {
                            out.append(&mut v);
                            *count += 1;
                        }
                        None => {
                            self.report.loops_rejected += 1;
                            out.push(Stmt::For {
                                var,
                                count: c,
                                body,
                            });
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let then_branch = self.block(then_branch, count);
                    let else_branch = self.block(else_branch, count);
                    out.push(Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    });
                }
                other => out.push(other),
            }
        }
        out
    }

    /// Legality scan. `prefix` is the code emitted before the loop in the
    /// same block (used only for diagnostics).
    fn scan(&self, i: VarId, body: &[Stmt]) -> Option<BodyInfo> {
        let mut info = BodyInfo {
            private: HashSet::new(),
            reductions: HashSet::new(),
            pops: 0,
            pushes: 0,
        };
        let mut defined: HashSet<VarId> = HashSet::new();
        for s in body {
            match s {
                Stmt::Assign(LValue::Var(v), e) => {
                    // Reduction pattern: v = v + e (v not otherwise used).
                    let is_reduction = matches!(
                        e,
                        Expr::Binary(BinOp::Add, a, _) if matches!(a.as_ref(), Expr::Var(w) if w == v)
                    ) || matches!(
                        e,
                        Expr::Binary(BinOp::Add, _, b) if matches!(b.as_ref(), Expr::Var(w) if w == v)
                    );
                    let reads_self = uses_var(e, *v);
                    if reads_self && !defined.contains(v) {
                        if !is_reduction {
                            return None; // loop-carried dependence
                        }
                        let elem = self.var_ty(*v).elem();
                        let allowed = if elem.is_float() {
                            self.cfg.fp_reductions
                        } else {
                            self.cfg.int_reductions
                        };
                        if !allowed {
                            return None;
                        }
                        info.reductions.insert(*v);
                    } else {
                        info.private.insert(*v);
                    }
                    defined.insert(*v);
                    self.scan_expr(i, e, &mut info)?;
                }
                Stmt::Assign(LValue::Index(v, idx), e) => {
                    // Unit-stride store required.
                    let (has_i, _) = affine_in(idx, i)?;
                    if !has_i {
                        return None; // same slot every iteration: dependence
                    }
                    if self.var_ty(*v).is_vector() {
                        return None;
                    }
                    self.scan_expr(i, e, &mut info)?;
                }
                Stmt::Push(e) => {
                    info.pushes += 1;
                    if info.pushes > 1 {
                        return None;
                    }
                    self.scan_expr(i, e, &mut info)?;
                }
                _ => return None, // rpush/vector/channel ops, control flow
            }
        }
        // A reduction variable must not also be treated as private.
        if info.reductions.intersection(&info.private).next().is_some() {
            return None;
        }
        Some(info)
    }

    /// Expression-side legality: counts pops, checks peeks and subscripts.
    fn scan_expr(&self, i: VarId, e: &Expr, info: &mut BodyInfo) -> Option<()> {
        let mut ok = true;
        let mut pops = 0usize;
        e.walk(&mut |e| match e {
            Expr::Pop => pops += 1,
            Expr::Peek(off)
                // Legal iff the loop has no pops (affine offsets) or the
                // offset is loop-invariant and the peek precedes all pops —
                // we conservatively require no pops anywhere in the loop.
                if affine_in(off, i).is_none() => {
                    ok = false;
                }
            Expr::Index(v, idx) => {
                if self.var_ty(*v).is_vector() {
                    ok = false;
                }
                // Loads: unit-stride or loop-invariant are both fine.
                match affine_in(idx, i) {
                    Some(_) => {}
                    None => {
                        if uses_var(idx, i) {
                            ok = false;
                        }
                    }
                }
            }
            Expr::Call(_, _)
                if !self.cfg.vector_math => {
                    // Calls force scalar libm: reject the loop (GCC).
                    ok = false;
                }
            Expr::VPop { .. }
            | Expr::VPeek { .. }
            | Expr::VIndex(_, _, _)
            | Expr::ConstVec(_)
            | Expr::Lane(_, _)
            | Expr::Splat(_, _)
            | Expr::PermuteEven(_, _)
            | Expr::PermuteOdd(_, _)
            | Expr::LVPop(_, _)
            | Expr::LPop(_) => ok = false,
            _ => {}
        });
        info.pops += pops;
        if info.pops > 1 {
            ok = false;
        }
        // Peeks combined with pops in the same loop are rejected (the
        // moving read pointer breaks contiguity).
        if info.pops > 0 {
            let mut has_peek = false;
            e.walk(&mut |e| {
                if matches!(e, Expr::Peek(_)) {
                    has_peek = true;
                }
            });
            if has_peek {
                ok = false;
            }
        }
        ok.then_some(())
    }

    fn try_vectorize(
        &mut self,
        i: VarId,
        count: &Expr,
        body: &[Stmt],
        _prefix: &[Stmt],
    ) -> Option<Vec<Stmt>> {
        let sw = self.cfg.sw;
        let n = count.as_const_usize()?;
        if n < sw {
            return None;
        }
        let info = self.scan(i, body)?;
        // Private temps must not be live outside the loop: conservatively
        // require their declared names to be compiler temps or reused
        // solely inside; we approximate by checking the variable is scalar
        // (arrays are excluded) — liveness outside is the benchmark
        // author's responsibility flagged by differential tests.
        let n_vec = n - n % sw;

        let mut out = Vec::new();
        // Map private/reduction vars to fresh vector temps.
        let mut vec_map: Vec<Option<VarId>> = vec![None; self.filter_vars.len()];
        for &v in info.private.iter().chain(info.reductions.iter()) {
            let ty = self.var_ty(v).vectorized(sw);
            let nv = self.fresh("__av", ty);
            vec_map.resize(self.filter_vars.len(), None);
            vec_map[v.0 as usize] = Some(nv);
        }
        // Reduction prologue: vacc = splat(0).
        for &v in &info.reductions {
            let elem = self.var_ty(v).elem();
            out.push(Stmt::Assign(
                LValue::Var(vec_map[v.0 as usize].expect("mapped")),
                Expr::Splat(Box::new(Expr::Const(elem.zero())), sw),
            ));
        }

        // Main vector loop.
        let ivec = self.fresh("__iv", Ty::Scalar(ScalarTy::I32));
        let ibase = self.fresh("__ib", Ty::Scalar(ScalarTy::I32));
        let mut vbody = vec![Stmt::Assign(
            LValue::Var(ibase),
            Expr::bin(
                BinOp::Mul,
                Expr::Var(ivec),
                Expr::Const(Value::I32(sw as i32)),
            ),
        )];
        for s in body {
            vbody.push(self.rewrite_stmt(s, i, ibase, &vec_map, &info)?);
        }
        out.push(Stmt::For {
            var: ivec,
            count: Expr::Const(Value::I32((n_vec / sw) as i32)),
            body: vbody,
        });

        // Reduction epilogue: acc += lane sums.
        for &v in &info.reductions {
            let nv = vec_map[v.0 as usize].expect("mapped");
            let mut sum = Expr::Lane(Box::new(Expr::Var(nv)), 0);
            for l in 1..sw {
                sum = Expr::bin(BinOp::Add, sum, Expr::Lane(Box::new(Expr::Var(nv)), l));
            }
            out.push(Stmt::Assign(
                LValue::Var(v),
                Expr::bin(BinOp::Add, Expr::Var(v), sum),
            ));
        }

        // Remainder loop with the original body, offset by n_vec.
        if n_vec < n {
            let r = self.fresh("__rem", Ty::Scalar(ScalarTy::I32));
            let mut rbody = vec![Stmt::Assign(
                LValue::Var(i),
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(r),
                    Expr::Const(Value::I32(n_vec as i32)),
                ),
            )];
            rbody.extend(body.iter().cloned());
            out.push(Stmt::For {
                var: r,
                count: Expr::Const(Value::I32((n - n_vec) as i32)),
                body: rbody,
            });
        }
        Some(out)
    }

    fn rewrite_stmt(
        &mut self,
        s: &Stmt,
        i: VarId,
        ibase: VarId,
        vec_map: &[Option<VarId>],
        info: &BodyInfo,
    ) -> Option<Stmt> {
        match s {
            Stmt::Assign(LValue::Var(v), e) => {
                if info.reductions.contains(v) {
                    // v = v + e  ->  vacc = vacc + vec(e)
                    let nv = vec_map[v.0 as usize].expect("mapped");
                    let (_, other) = split_reduction(e, *v)?;
                    let (oe, ov) = self.rewrite_expr(&other, i, ibase, vec_map)?;
                    let oe = self.ensure_vec(oe, ov);
                    return Some(Stmt::Assign(
                        LValue::Var(nv),
                        Expr::bin(BinOp::Add, Expr::Var(nv), oe),
                    ));
                }
                let nv = vec_map[v.0 as usize].expect("private var mapped");
                let (e2, ev) = self.rewrite_expr(e, i, ibase, vec_map)?;
                Some(Stmt::Assign(LValue::Var(nv), self.ensure_vec(e2, ev)))
            }
            Stmt::Assign(LValue::Index(v, idx), e) => {
                let (has_i, c) = affine_in(idx, i)?;
                debug_assert!(has_i);
                let base = Expr::bin(BinOp::Add, Expr::Var(ibase), Expr::Const(Value::I32(c)));
                let (e2, ev) = self.rewrite_expr(e, i, ibase, vec_map)?;
                Some(Stmt::Assign(
                    LValue::VIndex(*v, base, self.cfg.sw),
                    self.ensure_vec(e2, ev),
                ))
            }
            Stmt::Push(e) => {
                let (e2, ev) = self.rewrite_expr(e, i, ibase, vec_map)?;
                Some(Stmt::VPush {
                    value: self.ensure_vec(e2, ev),
                    width: self.cfg.sw,
                })
            }
            _ => None,
        }
    }

    fn ensure_vec(&self, e: Expr, is_vec: bool) -> Expr {
        if is_vec {
            e
        } else {
            Expr::Splat(Box::new(e), self.cfg.sw)
        }
    }

    /// Returns `(expr, is_vector)`.
    fn rewrite_expr(
        &mut self,
        e: &Expr,
        i: VarId,
        ibase: VarId,
        vec_map: &[Option<VarId>],
    ) -> Option<(Expr, bool)> {
        let sw = self.cfg.sw;
        Some(match e {
            Expr::Const(v) => (Expr::Const(*v), false),
            Expr::Var(v) if *v == i => {
                // iota: ibase + {0,1,..,sw-1}
                let iota = Expr::ConstVec((0..sw as i32).map(Value::I32).collect());
                (
                    Expr::bin(
                        BinOp::Add,
                        Expr::Splat(Box::new(Expr::Var(ibase)), sw),
                        iota,
                    ),
                    true,
                )
            }
            Expr::Var(v) => match vec_map.get(v.0 as usize).copied().flatten() {
                Some(nv) => (Expr::Var(nv), true),
                None => (Expr::Var(*v), false),
            },
            Expr::Index(v, idx) => match affine_in(idx, i) {
                Some((true, c)) => {
                    let base = Expr::bin(BinOp::Add, Expr::Var(ibase), Expr::Const(Value::I32(c)));
                    (Expr::VIndex(*v, Box::new(base), sw), true)
                }
                _ => {
                    // Loop-invariant subscript: scalar load.
                    (Expr::Index(*v, idx.clone()), false)
                }
            },
            Expr::Peek(off) => {
                let (has_i, c) = affine_in(off, i)?;
                if has_i {
                    let base = Expr::bin(BinOp::Add, Expr::Var(ibase), Expr::Const(Value::I32(c)));
                    (
                        Expr::VPeek {
                            offset: Box::new(base),
                            width: sw,
                        },
                        true,
                    )
                } else {
                    // Loop-invariant peek with no pops in the loop: same
                    // value every iteration.
                    (Expr::Peek(off.clone()), false)
                }
            }
            Expr::Pop => (Expr::VPop { width: sw }, true),
            Expr::Unary(op, a) => {
                let (a2, av) = self.rewrite_expr(a, i, ibase, vec_map)?;
                (Expr::Unary(*op, Box::new(a2)), av)
            }
            Expr::Cast(t, a) => {
                let (a2, av) = self.rewrite_expr(a, i, ibase, vec_map)?;
                (Expr::Cast(*t, Box::new(a2)), av)
            }
            Expr::Binary(op, a, b) => {
                let (a2, av) = self.rewrite_expr(a, i, ibase, vec_map)?;
                let (b2, bv) = self.rewrite_expr(b, i, ibase, vec_map)?;
                let vec = av || bv;
                let a3 = if vec && !av {
                    self.ensure_vec(a2, false)
                } else {
                    a2
                };
                let b3 = if vec && !bv {
                    self.ensure_vec(b2, false)
                } else {
                    b2
                };
                (Expr::bin(*op, a3, b3), vec)
            }
            Expr::Call(f, args) => {
                let parts: Vec<(Expr, bool)> = args
                    .iter()
                    .map(|a| self.rewrite_expr(a, i, ibase, vec_map))
                    .collect::<Option<_>>()?;
                let vec = parts.iter().any(|(_, v)| *v);
                let args2 = parts
                    .into_iter()
                    .map(|(a, av)| {
                        if vec && !av {
                            self.ensure_vec(a, false)
                        } else {
                            a
                        }
                    })
                    .collect();
                (Expr::Call(*f, args2), vec)
            }
            _ => return None,
        })
    }
}

/// For `acc = acc + e` (either operand order), return `(acc, e)`.
fn split_reduction(e: &Expr, acc: VarId) -> Option<(VarId, Expr)> {
    match e {
        Expr::Binary(BinOp::Add, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), other) if *v == acc => Some((acc, other.clone())),
            (other, Expr::Var(v)) if *v == acc => Some((acc, other.clone())),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_sdf::Schedule;
    use macross_streamir::builder::StreamSpec;
    use macross_streamir::edsl::*;
    use macross_vm::{run_scheduled, Machine, RunResult};

    fn f32_source() -> StreamSpec {
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
        let n = src.state("n", Ty::Scalar(ScalarTy::F32));
        src.work(|b| {
            b.push(v(n) * 0.5f32);
            b.set(
                n,
                cast(ScalarTy::F32, (cast(ScalarTy::I32, v(n)) + 1i32) % 313i32),
            );
        });
        src.build_spec()
    }

    fn run_pair(
        graph: &Graph,
        cfg: &AutovecConfig,
        iters: u64,
    ) -> (RunResult, RunResult, AutovecReport) {
        let sched = Schedule::compute(graph).unwrap();
        let machine = Machine::core_i7();
        let a = run_scheduled(graph, &sched, &machine, iters).unwrap();
        let mut vg = graph.clone();
        let report = autovectorize_graph(&mut vg, cfg);
        let b = run_scheduled(&vg, &sched, &machine, iters).unwrap();
        assert_eq!(a.output.len(), b.output.len());
        (a, b, report)
    }

    /// Elementwise loop: exactly vectorizable by both presets.
    #[test]
    fn elementwise_loop_vectorized_exactly() {
        let mut fb = FilterBuilder::new("scale", 8, 8, 8, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let arr = fb.local("arr", Ty::Array(ScalarTy::F32, 8));
        let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 8i32, |b| {
                b.set_idx(arr, v(i), pop() * 2.0f32 + 1.0f32);
            });
            b.for_(j, 8i32, |b| {
                b.push(idx(arr, v(j)));
            });
        });
        let g = StreamSpec::pipeline(vec![f32_source(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, report) = run_pair(&g, &AutovecConfig::gcc_like(4), 6);
        for (x, y) in a.output.iter().zip(&b.output) {
            assert!(x.bits_eq(*y));
        }
        assert_eq!(report.vectorized, vec![("scale".to_string(), 2)]);
        assert!(b.total_cycles() < a.total_cycles());
    }

    /// FP reduction: GCC refuses, ICC vectorizes with tolerance.
    #[test]
    fn fp_reduction_policy() {
        let mut fb = FilterBuilder::new("dot", 8, 8, 1, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
        let arr = fb.local("arr", Ty::Array(ScalarTy::F32, 8));
        let j = fb.local("j", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(j, 8i32, |b| {
                b.set_idx(arr, v(j), pop());
            });
            b.set(acc, 0.0f32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + idx(arr, v(i)) * idx(arr, v(i)));
            });
            b.push(v(acc));
        });
        let g = StreamSpec::pipeline(vec![f32_source(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();

        let (_, _, gcc_rep) = run_pair(&g, &AutovecConfig::gcc_like(4), 4);
        // GCC vectorizes the fill loop but not the FP reduction.
        assert_eq!(gcc_rep.vectorized, vec![("dot".to_string(), 1)]);

        let (a, b, icc_rep) = run_pair(&g, &AutovecConfig::icc_like(4), 4);
        assert_eq!(icc_rep.vectorized, vec![("dot".to_string(), 2)]);
        // Reassociated: approximately equal only.
        for (x, y) in a.output.iter().zip(&b.output) {
            let (x, y) = (x.as_f64(), y.as_f64());
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// Integer reduction is exact for both.
    #[test]
    fn int_reduction_exact() {
        let mut fb = FilterBuilder::new("sum", 8, 8, 1, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(acc, 0i32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + pop());
            });
            b.push(v(acc));
        });
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, (v(n) + 7i32) % 1000i32);
        });
        let g = StreamSpec::pipeline(vec![src.build_spec(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, rep) = run_pair(&g, &AutovecConfig::gcc_like(4), 6);
        assert_eq!(a.output, b.output);
        assert_eq!(rep.vectorized.len(), 1);
    }

    /// Intrinsic calls: rejected by GCC preset, vectorized by ICC preset.
    #[test]
    fn math_call_policy() {
        let mut fb = FilterBuilder::new("trig", 4, 4, 4, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(sin(pop()));
            });
        });
        let g = StreamSpec::pipeline(vec![f32_source(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (_, _, gcc_rep) = run_pair(&g, &AutovecConfig::gcc_like(4), 4);
        assert!(gcc_rep.vectorized.is_empty());
        let (a, b, icc_rep) = run_pair(&g, &AutovecConfig::icc_like(4), 4);
        assert_eq!(icc_rep.vectorized.len(), 1);
        for (x, y) in a.output.iter().zip(&b.output) {
            assert!(x.bits_eq(*y), "elementwise sin must stay exact");
        }
    }

    /// FIR peek loop with affine offsets (no pops inside): vectorizable.
    #[test]
    fn fir_peek_loop() {
        let mut fb = FilterBuilder::new("fir", 8, 1, 1, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
        let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
        let coef = fb.state("coef", Ty::Array(ScalarTy::F32, 8));
        let k = fb.local("k", Ty::Scalar(ScalarTy::I32));
        fb.init(|b| {
            b.for_(k, 8i32, |b| {
                b.set_idx(coef, v(k), cast(ScalarTy::F32, v(k) + 1i32));
            });
        });
        fb.work(|b| {
            b.set(acc, 0.0f32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + peek(v(i)) * idx(coef, v(i)));
            });
            b.set(junk, pop());
            b.push(v(acc));
        });
        let g = StreamSpec::pipeline(vec![f32_source(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, rep) = run_pair(&g, &AutovecConfig::icc_like(4), 6);
        assert_eq!(rep.vectorized.len(), 1);
        assert!(b.total_cycles() < a.total_cycles());
        for (x, y) in a.output.iter().zip(&b.output) {
            let (x, y) = (x.as_f64(), y.as_f64());
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
    }

    /// Loop-carried dependence must be rejected.
    #[test]
    fn loop_carried_dependence_rejected() {
        let mut fb = FilterBuilder::new("scan", 4, 4, 4, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let prev = fb.local("prev", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.set(prev, v(prev) * 3i32 + pop());
                b.push(v(prev));
            });
        });
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let g = StreamSpec::pipeline(vec![src.build_spec(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, rep) = run_pair(&g, &AutovecConfig::icc_like(4), 4);
        assert!(rep.vectorized.is_empty());
        assert_eq!(rep.loops_rejected, 1);
        assert_eq!(a.output, b.output);
    }

    /// Two pops per iteration: strided lanes, rejected.
    #[test]
    fn multi_pop_loop_rejected() {
        let mut fb = FilterBuilder::new("pair", 8, 8, 4, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 4i32, |b| {
                b.push(pop() + pop());
            });
        });
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let g = StreamSpec::pipeline(vec![src.build_spec(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, rep) = run_pair(&g, &AutovecConfig::icc_like(4), 4);
        assert!(rep.vectorized.is_empty());
        assert_eq!(a.output, b.output);
    }

    /// Remainder iterations are handled when the trip count is not a
    /// multiple of the vector width.
    #[test]
    fn remainder_loop_correct() {
        let mut fb = FilterBuilder::new("r", 7, 7, 7, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.for_(i, 7i32, |b| {
                b.push(pop() * 3i32 + v(i));
            });
        });
        let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::I32);
        let n = src.state("n", Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let g = StreamSpec::pipeline(vec![src.build_spec(), fb.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap();
        let (a, b, rep) = run_pair(&g, &AutovecConfig::gcc_like(4), 5);
        assert_eq!(rep.vectorized.len(), 1);
        assert_eq!(a.output, b.output);
    }
}
