//! Stream graphs: nodes (filters, splitters, joiners, sinks) connected by
//! tapes (edges), with rate queries and topological utilities.

use crate::filter::Filter;
use crate::types::ScalarTy;
use std::fmt;

/// Identifies a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies an edge (tape) within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// How a splitter distributes data to its branches.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitKind {
    /// Every branch receives a copy of each item.
    Duplicate,
    /// Weighted round-robin: branch `i` receives `weights[i]` consecutive
    /// items per firing.
    RoundRobin(Vec<usize>),
}

/// Which address-generation mechanism resolves a reordered tape access
/// (Section 3.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrGen {
    /// The streaming address generation unit (Figure 9): address generation
    /// is folded into the memory operation.
    Sagu,
    /// The software fallback (Figure 8): ~6 extra ALU operations per access.
    Software,
}

/// Which end of the tape performs the column-major (reordered) accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderSide {
    /// The vectorized producer pushed whole vectors in row-major order; the
    /// scalar consumer reads column-major.
    Consumer,
    /// The scalar producer writes column-major so the vectorized consumer
    /// can pop whole vectors.
    Producer,
}

/// Marks a tape whose scalar end accesses data in column-major block order
/// because the vector end uses plain vector pushes/pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reorder {
    /// The vector actor's per-original-firing push (or pop) count — the
    /// `Push_Count` register of the SAGU.
    pub rate: usize,
    /// SIMD width of the vector end.
    pub sw: usize,
    /// Which side performs reordered accesses.
    pub side: ReorderSide,
    /// Hardware or software address generation.
    pub addr_gen: AddrGen,
}

impl Reorder {
    /// Elements per reorder block (`rate * sw`).
    pub fn block(&self) -> usize {
        self.rate * self.sw
    }
}

/// A node of the stream graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A computational actor (1 optional input, 1 optional output).
    Filter(Filter),
    /// Distributes one input tape over several output tapes.
    Splitter(SplitKind),
    /// Merges several input tapes round-robin by the given weights.
    Joiner(Vec<usize>),
    /// Horizontal splitter produced by horizontal SIMDization: packs scalar
    /// input into vectors on `groups` vector output tapes.
    HSplitter {
        /// The original splitter kind (weights must be uniform for
        /// round-robin).
        kind: SplitKind,
        /// SIMD width (lanes per vector).
        width: usize,
    },
    /// Horizontal joiner: unpacks vectors from `groups` vector input tapes
    /// back to the scalar output order of the original joiner.
    HJoiner {
        /// Original per-branch round-robin weights (uniform).
        weights: Vec<usize>,
        /// SIMD width.
        width: usize,
    },
    /// Terminal node: pops one element per firing and records it as program
    /// output (used by the VM for differential testing).
    Sink,
}

impl Node {
    /// Display name for reports.
    pub fn name(&self) -> String {
        match self {
            Node::Filter(f) => f.name.clone(),
            Node::Splitter(SplitKind::Duplicate) => "split_dup".into(),
            Node::Splitter(SplitKind::RoundRobin(_)) => "split_rr".into(),
            Node::Joiner(_) => "join_rr".into(),
            Node::HSplitter { .. } => "hsplitter".into(),
            Node::HJoiner { .. } => "hjoiner".into(),
            Node::Sink => "sink".into(),
        }
    }

    /// The contained filter, if this node is one.
    pub fn as_filter(&self) -> Option<&Filter> {
        match self {
            Node::Filter(f) => Some(f),
            _ => None,
        }
    }

    /// Mutable access to the contained filter, if this node is one.
    pub fn as_filter_mut(&mut self) -> Option<&mut Filter> {
        match self {
            Node::Filter(f) => Some(f),
            _ => None,
        }
    }

    /// Elements consumed per firing on input `port` (scalar elements).
    pub fn pop_rate(&self, port: usize) -> usize {
        match self {
            Node::Filter(f) => {
                assert_eq!(port, 0);
                f.pop
            }
            Node::Splitter(SplitKind::Duplicate) => 1,
            Node::Splitter(SplitKind::RoundRobin(w)) => {
                assert_eq!(port, 0);
                w.iter().sum()
            }
            Node::Joiner(w) => w[port],
            Node::HSplitter { kind, .. } => match kind {
                SplitKind::Duplicate => 1,
                SplitKind::RoundRobin(w) => w.iter().sum(),
            },
            Node::HJoiner { weights, width } => {
                // One input port per group of `width` branches; weights are
                // uniform, so each port delivers `weight * width` scalars
                // (`weight` vectors) per firing.
                let _ = port;
                weights[0] * *width
            }
            Node::Sink => 1,
        }
    }

    /// Elements produced per firing on output `port` (scalar elements).
    pub fn push_rate(&self, port: usize) -> usize {
        match self {
            Node::Filter(f) => {
                assert_eq!(port, 0);
                f.push
            }
            Node::Splitter(SplitKind::Duplicate) => 1,
            Node::Splitter(SplitKind::RoundRobin(w)) => w[port],
            Node::Joiner(w) => w.iter().sum(),
            Node::HSplitter { kind, width } => match kind {
                SplitKind::Duplicate => *width,
                SplitKind::RoundRobin(w) => w[0] * *width,
            },
            Node::HJoiner { weights, .. } => weights.iter().sum(),
            Node::Sink => 0,
        }
    }

    /// Maximum read extent per firing on input `port`.
    pub fn peek_rate(&self, port: usize) -> usize {
        match self {
            Node::Filter(f) => {
                assert_eq!(port, 0);
                f.peek
            }
            other => other.pop_rate(port),
        }
    }
}

/// A tape connecting two node ports.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Producer output port.
    pub src_port: usize,
    /// Consumer node.
    pub dst: NodeId,
    /// Consumer input port.
    pub dst_port: usize,
    /// Element type flowing on the tape.
    pub elem: ScalarTy,
    /// Lanes per logical item: 1 for scalar tapes, `SW` for vector tapes
    /// created by horizontal SIMDization. Rates are always counted in scalar
    /// elements regardless of width.
    pub width: usize,
    /// Reordered-access marking for SAGU / software address generation.
    pub reorder: Option<Reorder>,
}

/// Errors from graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node has a port-arity violation (e.g. a filter with two inputs).
    BadArity { node: u32, detail: String },
    /// Ports on a node are not contiguous starting at zero.
    BadPorts { node: u32, detail: String },
    /// The graph contains a cycle; only DAGs are supported.
    Cyclic,
    /// A source filter (no input edge) declares a nonzero pop rate, or a
    /// filter with an input edge declares zero.
    RateMismatch { node: u32, detail: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadArity { node, detail } => write!(f, "node n{node}: {detail}"),
            GraphError::BadPorts { node, detail } => write!(f, "node n{node}: {detail}"),
            GraphError::Cyclic => {
                write!(f, "graph contains a cycle (feedback loops are unsupported)")
            }
            GraphError::RateMismatch { node, detail } => write!(f, "node n{node}: {detail}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A flattened stream graph (a DAG of nodes and tapes).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Connect `src`'s output `src_port` to `dst`'s input `dst_port` with a
    /// scalar tape of element type `elem`, returning the edge id.
    pub fn connect(
        &mut self,
        src: NodeId,
        src_port: usize,
        dst: NodeId,
        dst_port: usize,
        elem: ScalarTy,
    ) -> EdgeId {
        self.edges.push(Edge {
            src,
            src_port,
            dst,
            dst_port,
            elem,
            width: 1,
            reorder: None,
        });
        EdgeId((self.edges.len() - 1) as u32)
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Node ids only.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Borrow an edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// Mutably borrow an edge.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.0 as usize]
    }

    /// Replace a node in place (used by SIMDization transforms).
    pub fn replace_node(&mut self, id: NodeId, node: Node) {
        self.nodes[id.0 as usize] = node;
    }

    /// Input edges of a node, sorted by input port.
    pub fn in_edges(&self, id: NodeId) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dst == id)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        v.sort_by_key(|&e| self.edge(e).dst_port);
        v
    }

    /// Output edges of a node, sorted by output port.
    pub fn out_edges(&self, id: NodeId) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == id)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        v.sort_by_key(|&e| self.edge(e).src_port);
        v
    }

    /// The single input edge of a node, if it has exactly one.
    pub fn single_in_edge(&self, id: NodeId) -> Option<EdgeId> {
        let v = self.in_edges(id);
        if v.len() == 1 {
            Some(v[0])
        } else {
            None
        }
    }

    /// The single output edge of a node, if it has exactly one.
    pub fn single_out_edge(&self, id: NodeId) -> Option<EdgeId> {
        let v = self.out_edges(id);
        if v.len() == 1 {
            Some(v[0])
        } else {
            None
        }
    }

    /// Topological order of all nodes.
    ///
    /// # Errors
    /// Returns [`GraphError::Cyclic`] if the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.dst.0 as usize] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| indeg[id.0 as usize] == 0)
            .collect();
        // Keep deterministic order: process smallest id first.
        queue.sort();
        let mut order = Vec::with_capacity(n);
        let mut qi = 0;
        while qi < queue.len() {
            let id = queue[qi];
            qi += 1;
            order.push(id);
            let mut next: Vec<NodeId> = Vec::new();
            for e in &self.edges {
                if e.src == id {
                    let d = e.dst.0 as usize;
                    indeg[d] -= 1;
                    if indeg[d] == 0 {
                        next.push(e.dst);
                    }
                }
            }
            next.sort();
            queue.extend(next);
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cyclic)
        }
    }

    /// Structural validation: port arities, contiguity, acyclicity, and
    /// source/sink rate sanity.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (id, node) in self.nodes() {
            let ins = self.in_edges(id);
            let outs = self.out_edges(id);
            let (max_in, max_out) = match node {
                Node::Filter(_) => (1usize, 1usize),
                Node::Splitter(SplitKind::Duplicate) => (1, usize::MAX),
                Node::Splitter(SplitKind::RoundRobin(w)) => (1, w.len()),
                Node::Joiner(w) => (w.len(), 1),
                Node::HSplitter { kind, width } => {
                    let n = match kind {
                        SplitKind::Duplicate => outs.len() * width,
                        SplitKind::RoundRobin(w) => w.len(),
                    };
                    (1, n.div_ceil(*width))
                }
                Node::HJoiner { weights, width } => (weights.len().div_ceil(*width), 1),
                Node::Sink => (1, 0),
            };
            if ins.len() > max_in || (matches!(node, Node::Joiner(_)) && ins.len() != max_in) {
                return Err(GraphError::BadArity {
                    node: id.0,
                    detail: format!(
                        "{} has {} inputs (expected <= {})",
                        node.name(),
                        ins.len(),
                        max_in
                    ),
                });
            }
            if max_out != usize::MAX && outs.len() > max_out {
                return Err(GraphError::BadArity {
                    node: id.0,
                    detail: format!(
                        "{} has {} outputs (expected <= {})",
                        node.name(),
                        outs.len(),
                        max_out
                    ),
                });
            }
            for (want, &e) in ins.iter().enumerate() {
                if self.edge(e).dst_port != want {
                    return Err(GraphError::BadPorts {
                        node: id.0,
                        detail: format!("input ports not contiguous at port {want}"),
                    });
                }
            }
            for (want, &e) in outs.iter().enumerate() {
                if self.edge(e).src_port != want {
                    return Err(GraphError::BadPorts {
                        node: id.0,
                        detail: format!("output ports not contiguous at port {want}"),
                    });
                }
            }
            if let Node::Filter(f) = node {
                if ins.is_empty() && f.pop != 0 {
                    return Err(GraphError::RateMismatch {
                        node: id.0,
                        detail: format!(
                            "filter {} has no input tape but pop rate {}",
                            f.name, f.pop
                        ),
                    });
                }
                if !ins.is_empty() && f.pop == 0 && f.peek == 0 {
                    return Err(GraphError::RateMismatch {
                        node: id.0,
                        detail: format!("filter {} has an input tape but never reads it", f.name),
                    });
                }
                if outs.is_empty() && f.push != 0 {
                    return Err(GraphError::RateMismatch {
                        node: id.0,
                        detail: format!(
                            "filter {} has no output tape but push rate {}",
                            f.name, f.push
                        ),
                    });
                }
            }
        }
        self.topo_order().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    fn chain3() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("src", 0, 0, 2)));
        let b = g.add_node(Node::Filter(Filter::new("mid", 2, 2, 1)));
        let c = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::F32);
        g.connect(b, 0, c, 0, ScalarTy::F32);
        (g, a, b, c)
    }

    #[test]
    fn topo_order_of_chain() {
        let (g, a, b, c) = chain3();
        assert_eq!(g.topo_order().unwrap(), vec![a, b, c]);
        g.validate().unwrap();
    }

    #[test]
    fn splitter_rates() {
        let sp = Node::Splitter(SplitKind::RoundRobin(vec![4, 4, 4, 4]));
        assert_eq!(sp.pop_rate(0), 16);
        assert_eq!(sp.push_rate(2), 4);
        let dup = Node::Splitter(SplitKind::Duplicate);
        assert_eq!(dup.pop_rate(0), 1);
        assert_eq!(dup.push_rate(3), 1);
    }

    #[test]
    fn joiner_rates() {
        let j = Node::Joiner(vec![1, 2, 3]);
        assert_eq!(j.pop_rate(1), 2);
        assert_eq!(j.push_rate(0), 6);
    }

    #[test]
    fn hsplitter_hjoiner_rates() {
        let hs = Node::HSplitter {
            kind: SplitKind::RoundRobin(vec![4, 4, 4, 4]),
            width: 4,
        };
        assert_eq!(hs.pop_rate(0), 16);
        assert_eq!(hs.push_rate(0), 16); // 4 vectors of width 4
        let hj = Node::HJoiner {
            weights: vec![1, 1, 1, 1],
            width: 4,
        };
        assert_eq!(hj.pop_rate(0), 4);
        assert_eq!(hj.push_rate(0), 4);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 1, 1, 1)));
        let b = g.add_node(Node::Filter(Filter::new("b", 1, 1, 1)));
        g.connect(a, 0, b, 0, ScalarTy::I32);
        g.connect(b, 0, a, 0, ScalarTy::I32);
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
    }

    #[test]
    fn validate_rejects_source_with_pop() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("bad", 1, 1, 1)));
        let b = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::I32);
        let err = g.validate().unwrap_err();
        assert!(matches!(err, GraphError::RateMismatch { .. }));
    }

    #[test]
    fn validate_rejects_double_input_filter() {
        let mut g = Graph::new();
        let s1 = g.add_node(Node::Filter(Filter::new("s1", 0, 0, 1)));
        let s2 = g.add_node(Node::Filter(Filter::new("s2", 0, 0, 1)));
        let f = g.add_node(Node::Filter(Filter::new("f", 2, 2, 1)));
        let k = g.add_node(Node::Sink);
        g.connect(s1, 0, f, 0, ScalarTy::I32);
        g.connect(s2, 0, f, 1, ScalarTy::I32);
        g.connect(f, 0, k, 0, ScalarTy::I32);
        assert!(matches!(g.validate(), Err(GraphError::BadArity { .. })));
    }

    #[test]
    fn in_out_edges_sorted_by_port() {
        let mut g = Graph::new();
        let src = g.add_node(Node::Filter(Filter::new("src", 0, 0, 3)));
        let sp = g.add_node(Node::Splitter(SplitKind::RoundRobin(vec![1, 1, 1])));
        let j = g.add_node(Node::Joiner(vec![1, 1, 1]));
        let k = g.add_node(Node::Sink);
        g.connect(src, 0, sp, 0, ScalarTy::I32);
        // Connect out of order on purpose.
        g.connect(sp, 2, j, 2, ScalarTy::I32);
        g.connect(sp, 0, j, 0, ScalarTy::I32);
        g.connect(sp, 1, j, 1, ScalarTy::I32);
        g.connect(j, 0, k, 0, ScalarTy::I32);
        let outs = g.out_edges(sp);
        assert_eq!(self_ports(&g, &outs), vec![0, 1, 2]);
        g.validate().unwrap();
    }

    fn self_ports(g: &Graph, edges: &[EdgeId]) -> Vec<usize> {
        edges.iter().map(|&e| g.edge(e).src_port).collect()
    }

    #[test]
    fn reorder_block_size() {
        let r = Reorder {
            rate: 3,
            sw: 4,
            side: ReorderSide::Consumer,
            addr_gen: AddrGen::Sagu,
        };
        assert_eq!(r.block(), 12);
    }
}
