//! Statement AST of actor `work`/`init` functions.

use crate::expr::{ChanId, Expr, LValue, VarId};
use std::fmt;

/// Statement nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs`.
    Assign(LValue, Expr),
    /// Scalar push to the output tape (advances the write pointer by 1).
    Push(Expr),
    /// Random-access push: write `value` at `offset` elements past the write
    /// pointer without advancing it (`rpush(data, offset)` in the paper).
    RPush { value: Expr, offset: Expr },
    /// Vector push: `width` lanes written contiguously at the write pointer,
    /// advancing it by `width`.
    VPush { value: Expr, width: usize },
    /// Scalar push to an internal channel of a fused actor.
    LPush(ChanId, Expr),
    /// Vector push to an internal channel of a fused actor.
    LVPush(ChanId, Expr, usize),
    /// Counted loop: `var` ranges over `0..count`.
    For {
        var: VarId,
        count: Expr,
        body: Vec<Stmt>,
    },
    /// Conditional.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// Advance the input-tape read pointer by `n` elements without reading.
    ///
    /// Emitted by the SIMDizer at the end of a vectorized work function: the
    /// strided `peek`s only popped `pop_rate` elements although
    /// `SW * pop_rate` were consumed (implicit in Figure 3b of the paper).
    AdvanceRead(usize),
    /// Advance the output-tape write pointer by `n` elements; the slots were
    /// already filled by `RPush`. Counterpart of [`Stmt::AdvanceRead`].
    AdvanceWrite(usize),
}

impl Stmt {
    /// Pre-order walk over statements (not descending into expressions).
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.walk(f);
                }
                for s in else_branch {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Walk every expression contained in this statement (and substatements).
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.walk(&mut |s| match s {
            Stmt::Assign(lv, e) => {
                match lv {
                    LValue::Index(_, i) | LValue::LaneIndex(_, i, _) | LValue::VIndex(_, i, _) => {
                        i.walk(f)
                    }
                    _ => {}
                }
                e.walk(f);
            }
            Stmt::Push(e) | Stmt::LPush(_, e) | Stmt::LVPush(_, e, _) => e.walk(f),
            Stmt::RPush { value, offset } => {
                value.walk(f);
                offset.walk(f);
            }
            Stmt::VPush { value, .. } => value.walk(f),
            Stmt::For { count, .. } => count.walk(f),
            Stmt::If { cond, .. } => cond.walk(f),
            Stmt::AdvanceRead(_) | Stmt::AdvanceWrite(_) => {}
        });
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        s.fmt_indented(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Assign(lv, e) => writeln!(f, "{pad}{lv} = {e};"),
            Stmt::Push(e) => writeln!(f, "{pad}push({e});"),
            Stmt::RPush { value, offset } => writeln!(f, "{pad}rpush({value}, {offset});"),
            Stmt::VPush { value, width } => writeln!(f, "{pad}vpush{width}({value});"),
            Stmt::LPush(c, e) => writeln!(f, "{pad}{c}.push({e});"),
            Stmt::LVPush(c, e, w) => writeln!(f, "{pad}{c}.vpush{w}({e});"),
            Stmt::For { var, count, body } => {
                writeln!(f, "{pad}for ({var} : 0 to {count}) {{")?;
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                write_block(f, then_branch, indent + 1)?;
                if !else_branch.is_empty() {
                    writeln!(f, "{pad}}} else {{")?;
                    write_block(f, else_branch, indent + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::AdvanceRead(n) => writeln!(f, "{pad}advance_read({n});"),
            Stmt::AdvanceWrite(n) => writeln!(f, "{pad}advance_write({n});"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, VarId};
    use crate::types::Value;

    fn sample_loop() -> Stmt {
        Stmt::For {
            var: VarId(0),
            count: Expr::Const(Value::I32(4)),
            body: vec![
                Stmt::Assign(LValue::Var(VarId(1)), Expr::Pop),
                Stmt::Push(Expr::bin(
                    BinOp::Mul,
                    Expr::Var(VarId(1)),
                    Expr::Const(Value::F32(2.0)),
                )),
            ],
        }
    }

    #[test]
    fn walk_visits_nested() {
        let s = sample_loop();
        let mut count = 0;
        s.walk(&mut |_| count += 1);
        assert_eq!(count, 3); // for + assign + push
    }

    #[test]
    fn walk_exprs_visits_all() {
        let s = sample_loop();
        let mut pops = 0;
        s.walk_exprs(&mut |e| {
            if matches!(e, Expr::Pop) {
                pops += 1;
            }
        });
        assert_eq!(pops, 1);
    }

    #[test]
    fn display_renders_block() {
        let s = sample_loop();
        let text = s.to_string();
        assert!(text.contains("for (v0 : 0 to 4) {"));
        assert!(text.contains("push((v1 * 2.0f));"));
    }

    #[test]
    fn if_display_includes_else() {
        let s = Stmt::If {
            cond: Expr::Var(VarId(0)),
            then_branch: vec![Stmt::Push(Expr::Const(Value::I32(1)))],
            else_branch: vec![Stmt::Push(Expr::Const(Value::I32(0)))],
        };
        let text = s.to_string();
        assert!(text.contains("} else {"));
    }
}
