//! Graphviz export of stream graphs (compiler debugging aid).

use crate::graph::{Graph, Node, SplitKind};

/// Render a graph in Graphviz `dot` syntax. Filters show their rates;
/// vector tapes and reordered (SAGU) tapes are highlighted.
pub fn to_dot(graph: &Graph) -> String {
    let mut s = String::from(
        "digraph stream {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for (id, node) in graph.nodes() {
        let (label, style) = match node {
            Node::Filter(f) => (
                format!("{}\\npeek={} pop={} push={}", f.name, f.peek, f.pop, f.push),
                if f.vars.iter().any(|v| v.ty.is_vector()) {
                    ", style=filled, fillcolor=lightblue"
                } else {
                    ""
                },
            ),
            Node::Splitter(SplitKind::Duplicate) => ("split (duplicate)".into(), ""),
            Node::Splitter(SplitKind::RoundRobin(w)) => (format!("split {w:?}"), ""),
            Node::Joiner(w) => (format!("join {w:?}"), ""),
            Node::HSplitter { width, .. } => (
                format!("HSplitter (SW={width})"),
                ", style=filled, fillcolor=gold",
            ),
            Node::HJoiner { width, .. } => (
                format!("HJoiner (SW={width})"),
                ", style=filled, fillcolor=gold",
            ),
            Node::Sink => ("sink".into(), ", shape=doublecircle"),
        };
        s.push_str(&format!("  n{} [label=\"{}\"{}];\n", id.0, label, style));
    }
    for (_, e) in graph.edges() {
        let mut attrs = Vec::new();
        if e.width > 1 {
            attrs.push(format!("label=\"x{}\", penwidth=2", e.width));
        }
        if e.reorder.is_some() {
            attrs.push("color=red, label=\"SAGU\"".into());
        }
        let attr_s = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        s.push_str(&format!("  n{} -> n{}{};\n", e.src.0, e.dst.0, attr_s));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::types::ScalarTy;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("src", 0, 0, 1)));
        let b = g.add_node(Node::Sink);
        g.connect(a, 0, b, 0, ScalarTy::F32);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph stream {"));
        assert!(dot.contains("src\\npeek=0 pop=0 push=1"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlights_vector_and_reordered_tapes() {
        let mut g = Graph::new();
        let a = g.add_node(Node::Filter(Filter::new("a", 0, 0, 4)));
        let b = g.add_node(Node::HSplitter {
            kind: SplitKind::Duplicate,
            width: 4,
        });
        let c = g.add_node(Node::Sink);
        let e1 = g.connect(a, 0, b, 0, ScalarTy::F32);
        g.edge_mut(e1).reorder = Some(crate::graph::Reorder {
            rate: 2,
            sw: 4,
            side: crate::graph::ReorderSide::Consumer,
            addr_gen: crate::graph::AddrGen::Sagu,
        });
        let e2 = g.connect(b, 0, c, 0, ScalarTy::F32);
        g.edge_mut(e2).width = 4;
        let dot = to_dot(&g);
        assert!(dot.contains("SAGU"));
        assert!(dot.contains("HSplitter (SW=4)"));
        assert!(dot.contains("x4"));
    }
}
