//! Structural graph hashing: a 128-bit fingerprint of *what a stream
//! program computes*, independent of how it was written down.
//!
//! Two graphs collide exactly when they have the same topology (up to
//! node-id / insertion-order relabeling), the same declared rates, the
//! same splitter/joiner configurations, the same edge element types and
//! reorder markings, and structurally identical filter bodies. Everything
//! diagnostic is ignored: filter names, variable names, channel names and
//! the order nodes happened to be added to the graph. Variables and
//! channels are referenced by index inside the AST ([`crate::expr::VarId`]
//! never carries a name), so body hashing is alpha-invariant for free —
//! only the *declaration* lists need name-blind treatment.
//!
//! The fingerprint keys the service layer's compile-once cache: a session
//! whose graph hashes to an already-compiled shape reuses the SIMDized
//! graph, schedule, and fused bytecode without re-running the driver. A
//! false collision there would hand a tenant another program's code, so
//! the hash is deliberately conservative: 128 bits from two independently
//! seeded streams, with Weisfeiler–Lehman label refinement so that
//! topology (not just local node content) feeds every label.

use crate::expr::{Expr, LValue};
use crate::filter::{Filter, VarKind};
use crate::graph::{AddrGen, Graph, Node, Reorder, ReorderSide, SplitKind};
use crate::stmt::Stmt;
use crate::types::{ScalarTy, Ty, Value};
use std::fmt;

/// A 128-bit structural fingerprint of a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphHash(pub u128);

impl GraphHash {
    /// Lower-case hex rendering (32 digits) for reports and cache keys.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for GraphHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for GraphHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GraphHash({:032x})", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Seeds separating the two streams; arbitrary odd constants.
const SEED_A: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_B: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Two independently seeded FNV-1a-style word folds, advanced in
/// lockstep. Each absorbed word is multiplied-and-rotated so that word
/// position matters (plain FNV over equal words would be too regular).
#[derive(Clone, Copy)]
struct H {
    a: u64,
    b: u64,
}

impl H {
    fn new() -> H {
        H {
            a: FNV_OFFSET ^ SEED_A,
            b: FNV_OFFSET.wrapping_mul(FNV_PRIME) ^ SEED_B,
        }
    }

    #[must_use]
    fn word(mut self, x: u64) -> H {
        self.a = (self.a ^ x).wrapping_mul(FNV_PRIME).rotate_left(27);
        self.b = (self.b ^ x.rotate_left(32))
            .wrapping_mul(FNV_PRIME)
            .rotate_left(31);
        self
    }

    /// Absorb a previously finished 128-bit label.
    #[must_use]
    fn label(self, l: u128) -> H {
        self.word(l as u64).word((l >> 64) as u64)
    }

    fn finish(self) -> u128 {
        // Final avalanche so truncated prefixes of the stream don't
        // produce related outputs.
        let mut a = self.a ^ self.b.rotate_left(17);
        a ^= a >> 33;
        a = a.wrapping_mul(0xff51_afd7_ed55_8ccd);
        let mut b = self.b ^ self.a.rotate_left(43);
        b ^= b >> 29;
        b = b.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        ((a as u128) << 64) | b as u128
    }
}

fn scalar_tag(t: ScalarTy) -> u64 {
    match t {
        ScalarTy::I32 => 1,
        ScalarTy::I64 => 2,
        ScalarTy::F32 => 3,
        ScalarTy::F64 => 4,
    }
}

fn hash_ty(h: H, ty: &Ty) -> H {
    match ty {
        Ty::Scalar(t) => h.word(1).word(scalar_tag(*t)),
        Ty::Vector(t, w) => h.word(2).word(scalar_tag(*t)).word(*w as u64),
        Ty::Array(t, n) => h.word(3).word(scalar_tag(*t)).word(*n as u64),
        Ty::VectorArray(t, w, n) => h
            .word(4)
            .word(scalar_tag(*t))
            .word(*w as u64)
            .word(*n as u64),
    }
}

/// Bit-exact value hashing: distinct bit patterns (including NaN
/// payloads and `-0.0` vs `0.0`) hash differently, matching
/// [`Value::bits_eq`] semantics used by the differential tests.
fn hash_value(h: H, v: &Value) -> H {
    match v {
        Value::I32(x) => h.word(1).word(*x as u32 as u64),
        Value::I64(x) => h.word(2).word(*x as u64),
        Value::F32(x) => h.word(3).word(x.to_bits() as u64),
        Value::F64(x) => h.word(4).word(x.to_bits()),
    }
}

fn hash_expr(mut h: H, e: &Expr) -> H {
    match e {
        Expr::Const(v) => hash_value(h.word(1), v),
        Expr::ConstVec(vs) => {
            h = h.word(2).word(vs.len() as u64);
            for v in vs {
                h = hash_value(h, v);
            }
            h
        }
        Expr::Var(v) => h.word(3).word(v.0 as u64),
        Expr::Index(v, i) => hash_expr(h.word(4).word(v.0 as u64), i),
        Expr::VIndex(v, i, w) => hash_expr(h.word(5).word(v.0 as u64).word(*w as u64), i),
        Expr::Unary(op, a) => hash_expr(h.word(6).word(*op as u64), a),
        Expr::Binary(op, a, b) => hash_expr(hash_expr(h.word(7).word(*op as u64), a), b),
        Expr::Call(intr, args) => {
            h = h.word(8).word(*intr as u64).word(args.len() as u64);
            for a in args {
                h = hash_expr(h, a);
            }
            h
        }
        Expr::Cast(t, a) => hash_expr(h.word(9).word(scalar_tag(*t)), a),
        Expr::Pop => h.word(10),
        Expr::Peek(off) => hash_expr(h.word(11), off),
        Expr::VPop { width } => h.word(12).word(*width as u64),
        Expr::VPeek { offset, width } => hash_expr(h.word(13).word(*width as u64), offset),
        Expr::LPop(c) => h.word(14).word(c.0 as u64),
        Expr::LVPop(c, w) => h.word(15).word(c.0 as u64).word(*w as u64),
        Expr::Lane(a, i) => hash_expr(h.word(16).word(*i as u64), a),
        Expr::Splat(a, w) => hash_expr(h.word(17).word(*w as u64), a),
        Expr::PermuteEven(a, b) => hash_expr(hash_expr(h.word(18), a), b),
        Expr::PermuteOdd(a, b) => hash_expr(hash_expr(h.word(19), a), b),
    }
}

fn hash_lvalue(h: H, lv: &LValue) -> H {
    match lv {
        LValue::Var(v) => h.word(1).word(v.0 as u64),
        LValue::Index(v, i) => hash_expr(h.word(2).word(v.0 as u64), i),
        LValue::LaneVar(v, l) => h.word(3).word(v.0 as u64).word(*l as u64),
        LValue::LaneIndex(v, i, l) => hash_expr(h.word(4).word(v.0 as u64).word(*l as u64), i),
        LValue::VIndex(v, i, w) => hash_expr(h.word(5).word(v.0 as u64).word(*w as u64), i),
    }
}

fn hash_stmt(mut h: H, s: &Stmt) -> H {
    match s {
        Stmt::Assign(lv, e) => hash_expr(hash_lvalue(h.word(1), lv), e),
        Stmt::Push(e) => hash_expr(h.word(2), e),
        Stmt::RPush { value, offset } => hash_expr(hash_expr(h.word(3), value), offset),
        Stmt::VPush { value, width } => hash_expr(h.word(4).word(*width as u64), value),
        Stmt::LPush(c, e) => hash_expr(h.word(5).word(c.0 as u64), e),
        Stmt::LVPush(c, e, w) => hash_expr(h.word(6).word(c.0 as u64).word(*w as u64), e),
        Stmt::For { var, count, body } => {
            h = hash_expr(h.word(7).word(var.0 as u64), count);
            hash_block(h, body)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            h = hash_expr(h.word(8), cond);
            h = hash_block(h, then_branch);
            hash_block(h, else_branch)
        }
        Stmt::AdvanceRead(n) => h.word(9).word(*n as u64),
        Stmt::AdvanceWrite(n) => h.word(10).word(*n as u64),
    }
}

fn hash_block(mut h: H, block: &[Stmt]) -> H {
    h = h.word(block.len() as u64);
    for s in block {
        h = hash_stmt(h, s);
    }
    h
}

/// Name-blind filter signature: rates, variable and channel *shapes*
/// (types and kinds, never names), and both function bodies.
fn filter_sig(f: &Filter) -> u128 {
    let mut h = H::new()
        .word(0xf11f)
        .word(f.peek as u64)
        .word(f.pop as u64)
        .word(f.push as u64)
        .word(f.vars.len() as u64);
    for v in &f.vars {
        h = hash_ty(h, &v.ty).word(match v.kind {
            VarKind::Local => 1,
            VarKind::State => 2,
        });
    }
    h = h.word(f.chans.len() as u64);
    for c in &f.chans {
        h = hash_ty(h, &c.ty);
    }
    h = hash_block(h, &f.init);
    h = hash_block(h, &f.work);
    // The region annotation changes what the SIMDizer may do with the
    // filter, so two filters differing only in it must not collide in
    // the compile-once cache.
    match &f.region {
        None => h = h.word(0),
        Some(r) => {
            h = h
                .word(0xbe10)
                .word(r.regions as u64)
                .word(r.cursor.0 as u64)
                .word(r.vars.len() as u64);
            for v in &r.vars {
                h = h.word(v.0 as u64);
            }
        }
    }
    h.finish()
}

fn hash_split_kind(mut h: H, kind: &SplitKind) -> H {
    match kind {
        SplitKind::Duplicate => h.word(1),
        SplitKind::RoundRobin(ws) => {
            h = h.word(2).word(ws.len() as u64);
            for &w in ws {
                h = h.word(w as u64);
            }
            h
        }
    }
}

/// Local (round-zero) label of a node: its own content only.
fn node_sig(node: &Node) -> u128 {
    let h = H::new();
    match node {
        Node::Filter(f) => h.word(1).label(filter_sig(f)),
        Node::Splitter(kind) => hash_split_kind(h.word(2), kind),
        Node::Joiner(ws) => {
            let mut h = h.word(3).word(ws.len() as u64);
            for &w in ws {
                h = h.word(w as u64);
            }
            h
        }
        Node::HSplitter { kind, width } => hash_split_kind(h.word(4).word(*width as u64), kind),
        Node::HJoiner { weights, width } => {
            let mut h = h.word(5).word(*width as u64).word(weights.len() as u64);
            for &w in weights {
                h = h.word(w as u64);
            }
            h
        }
        Node::Sink => h.word(6),
    }
    .finish()
}

fn hash_reorder(h: H, r: &Option<Reorder>) -> H {
    match r {
        None => h.word(0),
        Some(r) => h
            .word(1)
            .word(r.rate as u64)
            .word(r.sw as u64)
            .word(match r.side {
                ReorderSide::Consumer => 1,
                ReorderSide::Producer => 2,
            })
            .word(match r.addr_gen {
                AddrGen::Sagu => 1,
                AddrGen::Software => 2,
            }),
    }
}

/// Content signature of an edge, without endpoint identities (those are
/// supplied as refined labels by the caller).
fn edge_sig(h: H, elem: ScalarTy, width: usize, reorder: &Option<Reorder>) -> H {
    hash_reorder(h.word(scalar_tag(elem)).word(width as u64), reorder)
}

/// Compute the structural fingerprint of `graph`.
///
/// Runs Weisfeiler–Lehman label refinement: each node starts from its
/// name-blind content signature and repeatedly absorbs its neighbours'
/// labels through port-ordered edge descriptions, so after `k` rounds a
/// label summarizes the node's radius-`k` neighbourhood. The final hash
/// is the fold of the *sorted* label multiset plus the sorted relation of
/// labelled edges — both order-free, which is what makes the result
/// insertion-order invariant.
pub fn structural_hash(graph: &Graph) -> GraphHash {
    let n = graph.node_count();
    let mut labels: Vec<u128> = graph.nodes().map(|(_, node)| node_sig(node)).collect();
    // Enough rounds to propagate across any benchmark-sized graph; more
    // rounds can only merge fewer (never more) shapes, and invariance
    // properties hold for any round count.
    let rounds = n.clamp(1, 32);
    let mut next = labels.clone();
    for _ in 0..rounds {
        for (id, _) in graph.nodes() {
            let mut h = H::new().label(labels[id.0 as usize]);
            // `in_edges` / `out_edges` come back sorted by port, so the
            // absorption order is structural, not insertion order.
            for e in graph.in_edges(id) {
                let edge = graph.edge(e);
                h = edge_sig(
                    h.word(0x1e)
                        .word(edge.dst_port as u64)
                        .word(edge.src_port as u64)
                        .label(labels[edge.src.0 as usize]),
                    edge.elem,
                    edge.width,
                    &edge.reorder,
                );
            }
            for e in graph.out_edges(id) {
                let edge = graph.edge(e);
                h = edge_sig(
                    h.word(0x0e)
                        .word(edge.src_port as u64)
                        .word(edge.dst_port as u64)
                        .label(labels[edge.dst.0 as usize]),
                    edge.elem,
                    edge.width,
                    &edge.reorder,
                );
            }
            next[id.0 as usize] = h.finish();
        }
        std::mem::swap(&mut labels, &mut next);
    }

    let mut sorted = labels.clone();
    sorted.sort_unstable();
    let mut edge_hashes: Vec<u128> = graph
        .edges()
        .map(|(_, e)| {
            edge_sig(
                H::new()
                    .label(labels[e.src.0 as usize])
                    .word(e.src_port as u64)
                    .label(labels[e.dst.0 as usize])
                    .word(e.dst_port as u64),
                e.elem,
                e.width,
                &e.reorder,
            )
            .finish()
        })
        .collect();
    edge_hashes.sort_unstable();

    let mut h = H::new().word(n as u64).word(edge_hashes.len() as u64);
    for l in sorted {
        h = h.label(l);
    }
    for e in edge_hashes {
        h = h.label(e);
    }
    GraphHash(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StreamSpec;
    use crate::edsl::*;
    use crate::types::{ScalarTy, Ty};

    /// A two-filter pipeline parameterized over every diagnostic name.
    fn named_pipeline(src_name: &str, f_name: &str, state_name: &str, mul: i32) -> Graph {
        let mut src = FilterBuilder::new(src_name, 0, 0, 2, ScalarTy::I32);
        let n = src.state(state_name, Ty::Scalar(ScalarTy::I32));
        src.work(|b| {
            b.push(v(n));
            b.set(n, v(n) + 1i32);
            b.push(v(n));
            b.set(n, v(n) + 1i32);
        });
        let mut f = FilterBuilder::new(f_name, 1, 1, 1, ScalarTy::I32);
        f.work(move |b| {
            b.push(pop() * mul);
        });
        StreamSpec::pipeline(vec![src.build_spec(), f.build_spec(), StreamSpec::Sink])
            .build()
            .unwrap()
    }

    #[test]
    fn alpha_renamed_graphs_collide() {
        let a = named_pipeline("src", "scale", "n", 3);
        let b = named_pipeline("generator", "gain", "counter", 3);
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn body_change_diverges() {
        let a = named_pipeline("src", "scale", "n", 3);
        let b = named_pipeline("src", "scale", "n", 4);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    fn rated_filter(name: &str, peek: usize, pop: usize, push: usize) -> Filter {
        let mut f = Filter::new(name, peek, pop, push);
        let mut b = B::new();
        for _ in 0..push {
            b.push(1i32);
        }
        if pop > 0 {
            b.stmt(Stmt::AdvanceRead(pop));
        }
        f.work = b.build();
        f
    }

    /// The same diamond built with two different node insertion orders
    /// (and therefore different NodeIds) must collide.
    fn diamond(order_flipped: bool) -> Graph {
        let mut g = Graph::new();
        let src = rated_filter("src", 0, 0, 2);
        let left = rated_filter("left", 1, 1, 1);
        let right = rated_filter("right", 1, 1, 3);
        let (s, sp, l, r, j, k) = if order_flipped {
            let k = g.add_node(Node::Sink);
            let j = g.add_node(Node::Joiner(vec![1, 3]));
            let r = g.add_node(Node::Filter(right));
            let l = g.add_node(Node::Filter(left));
            let sp = g.add_node(Node::Splitter(SplitKind::RoundRobin(vec![1, 1])));
            let s = g.add_node(Node::Filter(src));
            (s, sp, l, r, j, k)
        } else {
            let s = g.add_node(Node::Filter(src));
            let sp = g.add_node(Node::Splitter(SplitKind::RoundRobin(vec![1, 1])));
            let l = g.add_node(Node::Filter(left));
            let r = g.add_node(Node::Filter(right));
            let j = g.add_node(Node::Joiner(vec![1, 3]));
            let k = g.add_node(Node::Sink);
            (s, sp, l, r, j, k)
        };
        g.connect(s, 0, sp, 0, ScalarTy::I32);
        g.connect(sp, 0, l, 0, ScalarTy::I32);
        g.connect(sp, 1, r, 0, ScalarTy::I32);
        g.connect(l, 0, j, 0, ScalarTy::I32);
        g.connect(r, 0, j, 1, ScalarTy::I32);
        g.connect(j, 0, k, 0, ScalarTy::I32);
        g
    }

    #[test]
    fn insertion_order_is_ignored() {
        assert_eq!(
            structural_hash(&diamond(false)),
            structural_hash(&diamond(true))
        );
    }

    #[test]
    fn rate_change_diverges() {
        let mut a = Graph::new();
        let s = a.add_node(Node::Filter(rated_filter("s", 0, 0, 2)));
        let k = a.add_node(Node::Sink);
        a.connect(s, 0, k, 0, ScalarTy::I32);
        let mut b = Graph::new();
        let s = b.add_node(Node::Filter(rated_filter("s", 0, 0, 4)));
        let k = b.add_node(Node::Sink);
        b.connect(s, 0, k, 0, ScalarTy::I32);
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn splitter_weights_matter() {
        let build = |w: Vec<usize>| {
            let mut g = Graph::new();
            let s = g.add_node(Node::Filter(rated_filter("s", 0, 0, 4)));
            let sp = g.add_node(Node::Splitter(SplitKind::RoundRobin(w.clone())));
            let l = g.add_node(Node::Filter(rated_filter("l", 1, 1, 1)));
            let r = g.add_node(Node::Filter(rated_filter("r", 1, 1, 1)));
            let j = g.add_node(Node::Joiner(w.clone()));
            let k = g.add_node(Node::Sink);
            g.connect(s, 0, sp, 0, ScalarTy::I32);
            g.connect(sp, 0, l, 0, ScalarTy::I32);
            g.connect(sp, 1, r, 0, ScalarTy::I32);
            g.connect(l, 0, j, 0, ScalarTy::I32);
            g.connect(r, 0, j, 1, ScalarTy::I32);
            g.connect(j, 0, k, 0, ScalarTy::I32);
            g
        };
        assert_ne!(
            structural_hash(&build(vec![1, 3])),
            structural_hash(&build(vec![2, 2]))
        );
    }

    #[test]
    fn element_type_matters() {
        let build = |t: ScalarTy| {
            let mut g = Graph::new();
            let mut f = Filter::new("s", 0, 0, 1);
            let mut b = B::new();
            match t {
                ScalarTy::F32 => b.push(1.0f32),
                _ => b.push(1i32),
            };
            f.work = b.build();
            let s = g.add_node(Node::Filter(f));
            let k = g.add_node(Node::Sink);
            g.connect(s, 0, k, 0, t);
            g
        };
        assert_ne!(
            structural_hash(&build(ScalarTy::I32)),
            structural_hash(&build(ScalarTy::F32))
        );
    }

    #[test]
    fn hex_rendering_is_stable_width() {
        let g = named_pipeline("src", "scale", "n", 3);
        let hex = structural_hash(&g).to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
