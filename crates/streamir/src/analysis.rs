//! Static analyses over filters: rate measurement by abstract
//! interpretation, statefulness, and the vectorizability conditions of
//! Section 3.1 of the paper.

use crate::expr::{BinOp, Expr, Intrinsic, LValue, VarId};
use crate::filter::{Filter, VarKind};
use crate::stmt::Stmt;
use crate::types::{ScalarTy, Ty, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Measured per-firing tape rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rates {
    /// Elements consumed (read pointer advance).
    pub pop: usize,
    /// Elements produced (write pointer advance).
    pub push: usize,
    /// Maximum read extent (`>= pop`).
    pub peek: usize,
}

/// Errors from rate measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateError {
    /// A loop trip count could not be resolved to a compile-time constant.
    DynamicTripCount(String),
    /// A peek/rpush offset could not be resolved to a constant.
    DynamicOffset(String),
    /// The two branches of an `if` move the tape pointers differently.
    DivergentBranches(String),
    /// Measured rates disagree with the filter's declared rates.
    DeclaredMismatch {
        /// Actor name.
        name: String,
        /// What the body actually does.
        measured: Rates,
        /// What the actor declares.
        declared: Rates,
    },
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateError::DynamicTripCount(s) => {
                write!(f, "loop trip count is not a compile-time constant: {s}")
            }
            RateError::DynamicOffset(s) => {
                write!(f, "tape-access offset is not a compile-time constant: {s}")
            }
            RateError::DivergentBranches(s) => {
                write!(f, "if-branches have different tape rates: {s}")
            }
            RateError::DeclaredMismatch {
                name,
                measured,
                declared,
            } => write!(
                f,
                "filter {name}: measured rates {measured:?} disagree with declared {declared:?}"
            ),
        }
    }
}

impl std::error::Error for RateError {}

/// Abstract machine state for rate measurement.
struct RateState {
    /// Integer-constant environment (loop vars and constant locals).
    env: HashMap<VarId, Value>,
    /// Elements popped so far this firing.
    pops: usize,
    /// Maximum read extent so far.
    peek_extent: usize,
    /// Elements pushed (write pointer advance) so far.
    pushes: usize,
    /// Maximum write extent so far (rpush can exceed the pointer).
    push_extent: usize,
}

impl RateState {
    fn new() -> RateState {
        RateState {
            env: HashMap::new(),
            pops: 0,
            peek_extent: 0,
            pushes: 0,
            push_extent: 0,
        }
    }
}

/// Measure the per-firing rates of a work function body.
///
/// Loops are abstractly unrolled (their trip counts must be compile-time
/// constants), so loop-variable-dependent peek offsets like `peek(i + j)`
/// resolve exactly.
///
/// # Errors
/// See [`RateError`].
pub fn measure_rates(body: &[Stmt]) -> Result<Rates, RateError> {
    let mut st = RateState::new();
    exec_block(body, &mut st)?;
    Ok(Rates {
        pop: st.pops,
        push: st.pushes.max(st.push_extent),
        peek: st.peek_extent.max(st.pops),
    })
}

/// Check a filter's declared rates against its measured rates.
///
/// # Errors
/// Returns [`RateError::DeclaredMismatch`] when they disagree, or any
/// measurement error.
pub fn check_rates(filter: &Filter) -> Result<Rates, RateError> {
    let measured = measure_rates(&filter.work)?;
    let declared = Rates {
        pop: filter.pop,
        push: filter.push,
        peek: filter.peek,
    };
    if measured != declared {
        return Err(RateError::DeclaredMismatch {
            name: filter.name.clone(),
            measured,
            declared,
        });
    }
    Ok(measured)
}

fn exec_block(stmts: &[Stmt], st: &mut RateState) -> Result<(), RateError> {
    for s in stmts {
        exec_stmt(s, st)?;
    }
    Ok(())
}

fn exec_stmt(s: &Stmt, st: &mut RateState) -> Result<(), RateError> {
    match s {
        Stmt::Assign(lv, e) => {
            count_expr(e, st)?;
            if let LValue::Index(_, i) | LValue::LaneIndex(_, i, _) | LValue::VIndex(_, i, _) = lv {
                count_expr(i, st)?;
            }
            match lv {
                LValue::Var(v) => {
                    if let Some(val) = const_eval(e, st) {
                        st.env.insert(*v, val);
                    } else {
                        st.env.remove(v);
                    }
                }
                _ => {
                    st.env.remove(&lv.var());
                }
            }
        }
        Stmt::Push(e) => {
            count_expr(e, st)?;
            st.pushes += 1;
            st.push_extent = st.push_extent.max(st.pushes);
        }
        Stmt::RPush { value, offset } => {
            count_expr(value, st)?;
            let off = const_eval(offset, st)
                .map(|v| v.as_i64() as usize)
                .ok_or_else(|| RateError::DynamicOffset(offset.to_string()))?;
            st.push_extent = st.push_extent.max(st.pushes + off + 1);
        }
        Stmt::VPush { value, width } => {
            count_expr(value, st)?;
            st.pushes += width;
            st.push_extent = st.push_extent.max(st.pushes);
        }
        Stmt::LPush(_, e) | Stmt::LVPush(_, e, _) => count_expr(e, st)?,
        Stmt::For { var, count, body } => {
            let n = const_eval(count, st)
                .map(|v| v.as_i64())
                .ok_or_else(|| RateError::DynamicTripCount(count.to_string()))?;
            for i in 0..n.max(0) {
                st.env.insert(*var, Value::I32(i as i32));
                exec_block(body, st)?;
            }
            st.env.remove(var);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            count_expr(cond, st)?;
            if let Some(c) = const_eval(cond, st) {
                if c.is_truthy() {
                    exec_block(then_branch, st)?;
                } else {
                    exec_block(else_branch, st)?;
                }
            } else {
                // Unknown condition: both branches must have identical
                // tape behaviour for the rates to be static.
                let mut t = snapshot(st);
                exec_block(then_branch, &mut t)?;
                let mut e = snapshot(st);
                exec_block(else_branch, &mut e)?;
                if (t.pops, t.pushes, t.peek_extent, t.push_extent)
                    != (e.pops, e.pushes, e.peek_extent, e.push_extent)
                {
                    return Err(RateError::DivergentBranches(cond.to_string()));
                }
                st.pops = t.pops;
                st.pushes = t.pushes;
                st.peek_extent = t.peek_extent;
                st.push_extent = t.push_extent;
                // Keep only bindings identical in both branches.
                st.env
                    .retain(|k, v| t.env.get(k) == Some(v) && e.env.get(k) == Some(v));
            }
        }
        Stmt::AdvanceRead(n) => {
            st.pops += n;
            st.peek_extent = st.peek_extent.max(st.pops);
        }
        Stmt::AdvanceWrite(n) => {
            st.pushes += n;
            st.push_extent = st.push_extent.max(st.pushes);
        }
    }
    Ok(())
}

fn snapshot(st: &RateState) -> RateState {
    RateState {
        env: st.env.clone(),
        pops: st.pops,
        peek_extent: st.peek_extent,
        pushes: st.pushes,
        push_extent: st.push_extent,
    }
}

/// Count tape reads inside an expression (left-to-right evaluation order).
fn count_expr(e: &Expr, st: &mut RateState) -> Result<(), RateError> {
    match e {
        Expr::Pop => {
            st.pops += 1;
            st.peek_extent = st.peek_extent.max(st.pops);
        }
        Expr::VPop { width } => {
            st.pops += width;
            st.peek_extent = st.peek_extent.max(st.pops);
        }
        Expr::Peek(off) => {
            count_expr(off, st)?;
            let o = const_eval(off, st)
                .map(|v| v.as_i64() as usize)
                .ok_or_else(|| RateError::DynamicOffset(off.to_string()))?;
            st.peek_extent = st.peek_extent.max(st.pops + o + 1);
        }
        Expr::VPeek { offset, width } => {
            count_expr(offset, st)?;
            let o = const_eval(offset, st)
                .map(|v| v.as_i64() as usize)
                .ok_or_else(|| RateError::DynamicOffset(offset.to_string()))?;
            st.peek_extent = st.peek_extent.max(st.pops + o + width);
        }
        Expr::Const(_) | Expr::ConstVec(_) | Expr::Var(_) | Expr::LPop(_) | Expr::LVPop(_, _) => {}
        Expr::Index(_, i) | Expr::VIndex(_, i, _) => count_expr(i, st)?,
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Lane(a, _) | Expr::Splat(a, _) => {
            count_expr(a, st)?
        }
        Expr::Binary(_, a, b) | Expr::PermuteEven(a, b) | Expr::PermuteOdd(a, b) => {
            count_expr(a, st)?;
            count_expr(b, st)?;
        }
        Expr::Call(_, args) => {
            for a in args {
                count_expr(a, st)?;
            }
        }
    }
    Ok(())
}

/// Evaluate an expression to a compile-time constant if possible.
fn const_eval(e: &Expr, st: &RateState) -> Option<Value> {
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(v) => st.env.get(v).copied(),
        Expr::Unary(op, a) => Some(crate::expr::eval_unop(*op, const_eval(a, st)?)),
        Expr::Binary(op, a, b) => Some(crate::expr::eval_binop(
            *op,
            const_eval(a, st)?,
            const_eval(b, st)?,
        )),
        Expr::Cast(t, a) => Some(const_eval(a, st)?.cast(*t)),
        _ => None,
    }
}

/// Result of the vectorizability analysis (Section 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vectorizability {
    /// The filter mutates persistent state in `work`.
    pub stateful: bool,
    /// A loop bound or branch condition depends on popped data.
    pub tape_dependent_control: bool,
    /// An array subscript or peek offset depends on popped data.
    pub tape_dependent_subscript: bool,
    /// Intrinsics called anywhere in `work` (the target machine decides
    /// which of these its SIMD engine supports).
    pub intrinsics: BTreeSet<Intrinsic>,
    /// The body already uses vector constructs (has been SIMDized).
    pub vectorized: bool,
}

impl Vectorizability {
    /// True if the actor passes every *machine-independent* condition for
    /// single-actor SIMDization. Intrinsic support must still be checked
    /// against the target.
    pub fn simdizable(&self) -> bool {
        !self.stateful
            && !self.tape_dependent_control
            && !self.tape_dependent_subscript
            && !self.vectorized
    }
}

/// Analyze a filter for the vectorizability conditions.
pub fn analyze_vectorizability(filter: &Filter) -> Vectorizability {
    let mut out = Vectorizability {
        stateful: false,
        tape_dependent_control: false,
        tape_dependent_subscript: false,
        intrinsics: BTreeSet::new(),
        vectorized: false,
    };

    // Statefulness: state variables written inside work.
    let state_vars: HashSet<VarId> = filter.state_vars().collect();
    for s in &filter.work {
        s.walk(&mut |s| {
            if let Stmt::Assign(lv, _) = s {
                if state_vars.contains(&lv.var()) {
                    out.stateful = true;
                }
            }
        });
    }

    // Intrinsics and pre-existing vector constructs.
    for s in &filter.work {
        s.walk_exprs(&mut |e| match e {
            Expr::Call(i, _) => {
                out.intrinsics.insert(*i);
            }
            Expr::ConstVec(_)
            | Expr::VPop { .. }
            | Expr::VPeek { .. }
            | Expr::LVPop(_, _)
            | Expr::VIndex(_, _, _)
            | Expr::Lane(_, _)
            | Expr::Splat(_, _)
            | Expr::PermuteEven(_, _)
            | Expr::PermuteOdd(_, _) => out.vectorized = true,
            _ => {}
        });
        s.walk(&mut |s| {
            if matches!(s, Stmt::VPush { .. } | Stmt::LVPush(_, _, _)) {
                out.vectorized = true;
            }
        });
    }
    if filter.vars.iter().any(|v| v.ty.is_vector()) {
        out.vectorized = true;
    }

    // Taint analysis for tape-dependent control flow / subscripts.
    // Iterate to a fixpoint so loop-carried taint is caught.
    let mut tainted: HashSet<VarId> = HashSet::new();
    loop {
        let before = tainted.len();
        taint_block(&filter.work, &mut tainted, &mut out);
        if tainted.len() == before {
            break;
        }
    }
    out
}

fn expr_tainted(e: &Expr, tainted: &HashSet<VarId>) -> bool {
    let mut hit = false;
    e.walk(&mut |e| match e {
        Expr::Pop
        | Expr::Peek(_)
        | Expr::VPop { .. }
        | Expr::VPeek { .. }
        | Expr::LPop(_)
        | Expr::LVPop(_, _) => hit = true,
        Expr::Var(v) | Expr::Index(v, _) if tainted.contains(v) => {
            hit = true;
        }
        _ => {}
    });
    hit
}

fn check_subscripts(e: &Expr, tainted: &HashSet<VarId>, out: &mut Vectorizability) {
    e.walk(&mut |e| match e {
        Expr::Index(_, i) if expr_tainted(i, tainted) => {
            out.tape_dependent_subscript = true;
        }
        Expr::Peek(off) | Expr::VPeek { offset: off, .. } if expr_tainted(off, tainted) => {
            out.tape_dependent_subscript = true;
        }
        _ => {}
    });
}

fn taint_block(stmts: &[Stmt], tainted: &mut HashSet<VarId>, out: &mut Vectorizability) {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                check_subscripts(e, tainted, out);
                if let LValue::Index(_, i) | LValue::LaneIndex(_, i, _) | LValue::VIndex(_, i, _) =
                    lv
                {
                    check_subscripts(i, tainted, out);
                    if expr_tainted(i, tainted) {
                        out.tape_dependent_subscript = true;
                    }
                }
                let rhs_tainted = expr_tainted(e, tainted);
                match lv {
                    LValue::Var(v) => {
                        if rhs_tainted {
                            tainted.insert(*v);
                        }
                        // Note: we do not untaint on clean assignment; the
                        // analysis is a conservative may-taint fixpoint.
                    }
                    _ => {
                        if rhs_tainted {
                            tainted.insert(lv.var());
                        }
                    }
                }
            }
            Stmt::Push(e) | Stmt::LPush(_, e) | Stmt::LVPush(_, e, _) => {
                check_subscripts(e, tainted, out)
            }
            Stmt::RPush { value, offset } => {
                check_subscripts(value, tainted, out);
                if expr_tainted(offset, tainted) {
                    out.tape_dependent_subscript = true;
                }
            }
            Stmt::VPush { value, .. } => check_subscripts(value, tainted, out),
            Stmt::For { count, body, .. } => {
                if expr_tainted(count, tainted) {
                    out.tape_dependent_control = true;
                }
                taint_block(body, tainted, out);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if expr_tainted(cond, tainted) {
                    out.tape_dependent_control = true;
                }
                taint_block(then_branch, tainted, out);
                taint_block(else_branch, tainted, out);
            }
            Stmt::AdvanceRead(_) | Stmt::AdvanceWrite(_) => {}
        }
    }
}

/// The canonical cursor-advance statement `cursor = (cursor + 1) % R`.
///
/// [`check_region_spec`] requires this exact shape as the last top-level
/// `work` statement; the region SIMDizer strips it before vectorizing the
/// body and re-appends the panelized form `cursor = (cursor + 1) % (R/W)`.
pub fn region_cursor_update(cursor: VarId, regions: usize) -> Stmt {
    Stmt::Assign(
        LValue::Var(cursor),
        Expr::bin(
            BinOp::Rem,
            Expr::bin(BinOp::Add, Expr::Var(cursor), Expr::Const(Value::I32(1))),
            Expr::Const(Value::I32(regions as i32)),
        ),
    )
}

/// Validate a filter's region-based state annotation (the Timcheck &
/// Buhler shape): the declared invariant is that firing `i` touches only
/// region `i mod R`, which the body makes checkable by routing every
/// region access through an explicit cursor.
///
/// The checked conditions:
/// 1. the cursor is a scalar `i32` state variable, never written by `init`
///    (so zero-initialization starts it at region 0) and distinct from the
///    region arrays;
/// 2. each region variable is a state array of exactly `R` elements;
/// 3. inside `work`, every read and write of a region variable subscripts
///    it with exactly `cursor` — any other subscript is a (potential)
///    cross-region access and rejected;
/// 4. the last top-level `work` statement is exactly
///    `cursor = (cursor + 1) % R` and it is the only write to the cursor;
/// 5. `work` writes no persistent state besides the region arrays and the
///    cursor (other stateful behavior would not be lane-independent).
///
/// The SIMDizer re-checks this and silently falls back to scalar dispatch
/// on `Err`, so a wrong annotation can cost performance but never
/// correctness.
pub fn check_region_spec(filter: &Filter) -> Result<(), String> {
    let spec = filter
        .region
        .as_ref()
        .ok_or_else(|| "filter has no region annotation".to_string())?;
    if spec.regions < 2 {
        return Err(format!("region count must be >= 2, got {}", spec.regions));
    }
    let nvars = filter.vars.len() as u32;
    if spec.cursor.0 >= nvars || spec.vars.iter().any(|v| v.0 >= nvars) {
        return Err("region spec names an undeclared variable".to_string());
    }
    if spec.vars.is_empty() {
        return Err("region spec declares no region arrays".to_string());
    }
    if spec.vars.contains(&spec.cursor) {
        return Err("cursor cannot itself be a region array".to_string());
    }
    let mut seen = HashSet::new();
    if !spec.vars.iter().all(|v| seen.insert(*v)) {
        return Err("duplicate region array in spec".to_string());
    }

    // 1. Cursor shape.
    let cdecl = filter.var(spec.cursor);
    if cdecl.kind != VarKind::State || cdecl.ty != Ty::Scalar(ScalarTy::I32) {
        return Err(format!(
            "cursor {} must be a scalar i32 state variable",
            cdecl.name
        ));
    }
    for s in &filter.init {
        let mut bad = false;
        s.walk(&mut |s| {
            if let Stmt::Assign(lv, _) = s {
                if lv.var() == spec.cursor {
                    bad = true;
                }
            }
        });
        if bad {
            return Err(format!(
                "init writes cursor {}; it must start zero-initialized",
                cdecl.name
            ));
        }
    }

    // 2. Region array shapes.
    let regions: HashSet<VarId> = spec.vars.iter().copied().collect();
    for &v in &spec.vars {
        let d = filter.var(v);
        match d.ty {
            Ty::Array(_, n) if n == spec.regions && d.kind == VarKind::State => {}
            _ => {
                return Err(format!(
                    "region variable {} must be a state array of {} elements, got {:?}",
                    d.name, spec.regions, d.ty
                ));
            }
        }
    }

    // 3. Every work access of a region variable is subscripted by exactly
    // the cursor.
    let cursor_expr = Expr::Var(spec.cursor);
    let mut err: Option<String> = None;
    let flag = |msg: String, err: &mut Option<String>| {
        if err.is_none() {
            *err = Some(msg);
        }
    };
    for s in &filter.work {
        s.walk_exprs(&mut |e| match e {
            Expr::Index(v, i) if regions.contains(v) && **i != cursor_expr => {
                flag(
                    format!(
                        "region array {} read with subscript {i}; only the \
                         cursor may index it in work",
                        filter.var(*v).name
                    ),
                    &mut err,
                );
            }
            Expr::Var(v) | Expr::VIndex(v, _, _) if regions.contains(v) => {
                flag(
                    format!(
                        "region array {} referenced without a cursor subscript",
                        filter.var(*v).name
                    ),
                    &mut err,
                );
            }
            _ => {}
        });
        s.walk(&mut |s| {
            if let Stmt::Assign(lv, _) = s {
                if regions.contains(&lv.var()) {
                    match lv {
                        LValue::Index(_, i) if *i == cursor_expr => {}
                        _ => flag(
                            format!(
                                "region array {} written through {lv}; only \
                                 [cursor] stores are region-local",
                                filter.var(lv.var()).name
                            ),
                            &mut err,
                        ),
                    }
                }
            }
        });
    }
    if let Some(e) = err {
        return Err(e);
    }

    // 4. The cursor advances exactly once, as the last top-level statement.
    let expected = region_cursor_update(spec.cursor, spec.regions);
    match filter.work.last() {
        Some(s) if *s == expected => {}
        _ => {
            return Err(format!(
                "last work statement must be exactly `{} = ({0} + 1) % {}`",
                cdecl.name, spec.regions
            ));
        }
    }
    let mut cursor_writes = 0usize;
    for s in &filter.work {
        s.walk(&mut |s| {
            if let Stmt::Assign(lv, _) = s {
                if lv.var() == spec.cursor {
                    cursor_writes += 1;
                }
            }
        });
    }
    if cursor_writes != 1 {
        return Err(format!(
            "cursor {} must be written exactly once in work, found {} writes",
            cdecl.name, cursor_writes
        ));
    }

    // 5. No other persistent state is written in work.
    let state: HashSet<VarId> = filter.state_vars().collect();
    for s in &filter.work {
        let mut bad: Option<VarId> = None;
        s.walk(&mut |s| {
            if let Stmt::Assign(lv, _) = s {
                let v = lv.var();
                if state.contains(&v) && v != spec.cursor && !regions.contains(&v) && bad.is_none()
                {
                    bad = Some(v);
                }
            }
        });
        if let Some(v) = bad {
            return Err(format!(
                "work writes non-region state {}; region SIMDization requires \
                 all firing-carried state to live in region arrays",
                filter.var(v).name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edsl::*;
    use crate::types::{ScalarTy, Ty};

    #[test]
    fn measures_simple_rates() {
        let mut fb = FilterBuilder::new("d", 2, 2, 2, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.for_(i, 2i32, |b| {
                b.set(t, pop());
                b.push(v(t) * 2.0f32);
            });
        });
        let f = fb.build();
        assert_eq!(
            check_rates(&f).unwrap(),
            Rates {
                pop: 2,
                push: 2,
                peek: 2
            }
        );
    }

    #[test]
    fn measures_loop_var_peeks() {
        // FIR-style: peek(i) for i in 0..8, pop 1, push 1.
        let mut fb = FilterBuilder::new("fir", 8, 1, 1, ScalarTy::F32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::F32));
        let junk = fb.local("junk", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(acc, 0.0f32);
            b.for_(i, 8i32, |b| {
                b.set(acc, v(acc) + peek(v(i)));
            });
            b.set(junk, pop());
            b.push(v(acc));
        });
        let f = fb.build();
        assert_eq!(
            check_rates(&f).unwrap(),
            Rates {
                pop: 1,
                push: 1,
                peek: 8
            }
        );
    }

    #[test]
    fn peek_extent_tracks_pops() {
        // pop then peek(0): the peek reads element 1 of the firing.
        let mut fb = FilterBuilder::new("p", 2, 2, 1, ScalarTy::F32);
        let a = fb.local("a", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(a, pop() + peek(0i32));
            b.push(v(a));
            b.stmt(Stmt::AdvanceRead(1));
        });
        let f = fb.build();
        assert_eq!(
            check_rates(&f).unwrap(),
            Rates {
                pop: 2,
                push: 1,
                peek: 2
            }
        );
    }

    #[test]
    fn declared_mismatch_detected() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 2, ScalarTy::F32);
        fb.work(|b| {
            b.push(pop());
        });
        let f = fb.build();
        assert!(matches!(
            check_rates(&f),
            Err(RateError::DeclaredMismatch { .. })
        ));
    }

    #[test]
    fn divergent_branches_detected() {
        let mut fb = FilterBuilder::new("div", 1, 1, 1, ScalarTy::I32);
        let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x, pop());
            b.if_else(
                v(x),
                |b| {
                    b.push(1i32);
                },
                |b| {
                    b.push(1i32);
                    b.push(2i32);
                },
            );
        });
        let f = fb.build();
        assert!(matches!(
            measure_rates(&f.work),
            Err(RateError::DivergentBranches(_))
        ));
    }

    #[test]
    fn balanced_dynamic_branches_ok() {
        let mut fb = FilterBuilder::new("bal", 1, 1, 1, ScalarTy::I32);
        let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x, pop());
            b.if_else(
                v(x),
                |b| {
                    b.push(v(x) + 1i32);
                },
                |b| {
                    b.push(0i32);
                },
            );
        });
        let f = fb.build();
        assert_eq!(
            check_rates(&f).unwrap(),
            Rates {
                pop: 1,
                push: 1,
                peek: 1
            }
        );
    }

    #[test]
    fn stateful_detection() {
        let mut fb = FilterBuilder::new("acc", 1, 1, 1, ScalarTy::F32);
        let s = fb.state("sum", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set(s, v(s) + pop());
            b.push(v(s));
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(va.stateful);
        assert!(!va.simdizable());
    }

    #[test]
    fn readonly_state_is_not_stateful() {
        let mut fb = FilterBuilder::new("coef", 1, 1, 1, ScalarTy::F32);
        let cf = fb.state("c", Ty::Array(ScalarTy::F32, 4));
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        fb.init(|b| {
            b.for_(i, 4i32, |b| {
                b.set_idx(cf, v(i), cast(ScalarTy::F32, v(i)));
            });
        });
        fb.work(|b| {
            b.push(pop() * idx(cf, 0i32));
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(!va.stateful);
        assert!(va.simdizable());
    }

    #[test]
    fn tape_dependent_control_detected() {
        let mut fb = FilterBuilder::new("tdc", 1, 1, 1, ScalarTy::I32);
        let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x, pop());
            b.if_else(
                gt(v(x), 0i32),
                |b| {
                    b.push(1i32);
                },
                |b| {
                    b.push(0i32);
                },
            );
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(va.tape_dependent_control);
        assert!(!va.simdizable());
    }

    #[test]
    fn tape_dependent_subscript_detected() {
        let mut fb = FilterBuilder::new("tds", 1, 1, 1, ScalarTy::I32);
        let arr = fb.state("lut", Ty::Array(ScalarTy::I32, 16));
        let x = fb.local("x", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(x, pop());
            b.push(idx(arr, v(x) & 15i32));
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(va.tape_dependent_subscript);
    }

    #[test]
    fn intrinsics_collected() {
        let mut fb = FilterBuilder::new("trig", 1, 1, 1, ScalarTy::F32);
        fb.work(|b| {
            b.push(sin(pop()) + cos(c(0.5f32)));
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(va.intrinsics.contains(&Intrinsic::Sin));
        assert!(va.intrinsics.contains(&Intrinsic::Cos));
        assert!(va.simdizable());
    }

    #[test]
    fn vectorized_code_flagged() {
        let mut fb = FilterBuilder::new("vec", 4, 4, 4, ScalarTy::F32);
        let tv = fb.local("t_v", Ty::Vector(ScalarTy::F32, 4));
        fb.work(|b| {
            b.set(tv, E(Expr::VPop { width: 4 }));
            b.stmt(Stmt::VPush {
                value: Expr::Var(tv),
                width: 4,
            });
        });
        let f = fb.build();
        let va = analyze_vectorizability(&f);
        assert!(va.vectorized);
        assert!(!va.simdizable());
    }

    /// A canonical per-channel IIR bank with `regions` channels.
    fn region_iir(regions: usize) -> Filter {
        let mut fb = FilterBuilder::new("iir_bank", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", regions);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, v(cur), idx(y, v(cur)) * 0.5f32 + pop() * 0.5f32);
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(regions as i32));
        });
        fb.build()
    }

    #[test]
    fn well_formed_region_spec_accepted() {
        let f = region_iir(8);
        assert_eq!(check_region_spec(&f), Ok(()));
        // The classic analyses still see a stateful actor, so the
        // pre-existing passes keep refusing it.
        let va = analyze_vectorizability(&f);
        assert!(va.stateful);
        assert!(!va.simdizable());
    }

    #[test]
    fn region_cursor_update_matches_edsl_shape() {
        let f = region_iir(4);
        let spec = f.region.as_ref().unwrap();
        assert_eq!(
            f.work.last().unwrap(),
            &region_cursor_update(spec.cursor, 4)
        );
    }

    #[test]
    fn cross_region_write_rejected() {
        // Writes region (cursor + 1) % R: violates `i mod R` locality.
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, (v(cur) + 1i32) % c(4i32), pop());
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        let f = fb.build();
        let err = check_region_spec(&f).unwrap_err();
        assert!(err.contains("region-local"), "unexpected error: {err}");
    }

    #[test]
    fn cross_region_read_rejected() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, v(cur), pop());
            b.push(idx(y, 0i32));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        let f = fb.build();
        assert!(check_region_spec(&f).is_err());
    }

    #[test]
    fn missing_cursor_update_rejected() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.work(|b| {
            b.set_idx(y, v(cur), pop());
            b.push(idx(y, v(cur)));
        });
        let f = fb.build();
        let err = check_region_spec(&f).unwrap_err();
        assert!(err.contains("last work statement"), "got: {err}");
    }

    #[test]
    fn extra_state_write_rejected() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        let total = fb.state("total", Ty::Scalar(ScalarTy::F32));
        fb.work(|b| {
            b.set_idx(y, v(cur), pop());
            b.set(total, v(total) + idx(y, v(cur)));
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        let f = fb.build();
        let err = check_region_spec(&f).unwrap_err();
        assert!(err.contains("non-region state"), "got: {err}");
    }

    #[test]
    fn init_writing_cursor_rejected() {
        let mut fb = FilterBuilder::new("bad", 1, 1, 1, ScalarTy::F32);
        let cur = fb.region_cursor("cur", 4);
        let y = fb.region_var("y", ScalarTy::F32);
        fb.init(|b| {
            b.set(cur, 2i32);
        });
        fb.work(|b| {
            b.set_idx(y, v(cur), pop());
            b.push(idx(y, v(cur)));
            b.set(cur, (v(cur) + 1i32) % c(4i32));
        });
        let f = fb.build();
        let err = check_region_spec(&f).unwrap_err();
        assert!(err.contains("init writes cursor"), "got: {err}");
    }

    #[test]
    fn region_spec_survives_structural_hash() {
        use crate::graph::{Graph, Node};
        use crate::shash::structural_hash;
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        let f = region_iir(8);
        let mut f2 = f.clone();
        f2.region.as_mut().unwrap().regions = 8; // identical
        g1.add_node(Node::Filter(f));
        g2.add_node(Node::Filter(f2));
        assert_eq!(structural_hash(&g1), structural_hash(&g2));

        let mut g3 = Graph::new();
        let mut f3 = region_iir(8);
        f3.region = None; // dropping the annotation must change the hash
        g3.add_node(Node::Filter(f3));
        assert_ne!(structural_hash(&g1), structural_hash(&g3));
    }
}
