//! Hierarchical graph construction: StreamIt-style pipelines and
//! split-joins that flatten into a [`Graph`].

use crate::filter::Filter;
use crate::graph::{Graph, Node, NodeId, SplitKind};
use crate::types::ScalarTy;
use std::fmt;

/// A hierarchical stream program, mirroring StreamIt's `pipeline` and
/// `splitjoin` composition (feedback loops are out of scope; see DESIGN.md).
#[derive(Debug, Clone)]
pub enum StreamSpec {
    /// A leaf actor together with the element type it produces.
    Filter {
        /// The actor.
        filter: Filter,
        /// Element type on the output tape.
        out_elem: ScalarTy,
    },
    /// Sequential composition.
    Pipeline(Vec<StreamSpec>),
    /// Parallel composition between a splitter and a joiner.
    SplitJoin {
        /// Splitter kind.
        split: SplitKind,
        /// Parallel branches (one per splitter output).
        branches: Vec<StreamSpec>,
        /// Joiner round-robin weights (one per branch).
        join: Vec<usize>,
    },
    /// Terminal sink capturing program output.
    Sink,
}

impl StreamSpec {
    /// Leaf constructor.
    pub fn filter(filter: Filter, out_elem: ScalarTy) -> StreamSpec {
        StreamSpec::Filter { filter, out_elem }
    }

    /// Sequential composition of the given stages.
    pub fn pipeline(stages: Vec<StreamSpec>) -> StreamSpec {
        StreamSpec::Pipeline(stages)
    }

    /// Split-join with a round-robin splitter of uniform weight `w` and a
    /// round-robin joiner of uniform weight `jw`.
    pub fn split_join_uniform(w: usize, jw: usize, branches: Vec<StreamSpec>) -> StreamSpec {
        let n = branches.len();
        StreamSpec::SplitJoin {
            split: SplitKind::RoundRobin(vec![w; n]),
            branches,
            join: vec![jw; n],
        }
    }

    /// Split-join with a duplicate splitter and a round-robin joiner of
    /// uniform weight `jw`.
    pub fn split_join_duplicate(jw: usize, branches: Vec<StreamSpec>) -> StreamSpec {
        let n = branches.len();
        StreamSpec::SplitJoin {
            split: SplitKind::Duplicate,
            branches,
            join: vec![jw; n],
        }
    }

    /// Flatten into a graph.
    ///
    /// # Errors
    /// Returns [`BuildError`] on malformed composition (empty pipeline,
    /// branch/weight count mismatch, interior sink, missing connections).
    pub fn build(self) -> Result<Graph, BuildError> {
        let mut g = Graph::new();
        let ends = flatten(&mut g, self, ScalarTy::F32)?;
        if let Some((_, _)) = ends.exit {
            return Err(BuildError::DanglingOutput);
        }
        g.validate()
            .map_err(|e| BuildError::Invalid(e.to_string()))?;
        Ok(g)
    }
}

/// Errors from [`StreamSpec::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A pipeline or split-join had no children.
    Empty,
    /// Branch count does not match joiner weight count.
    BranchMismatch { branches: usize, weights: usize },
    /// A sink appeared somewhere other than the end of the program.
    InteriorSink,
    /// A stage produces output but nothing consumes it.
    DanglingOutput,
    /// A stage consumes input but nothing produces it.
    DanglingInput,
    /// Graph-level validation failed after flattening.
    Invalid(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => write!(f, "empty pipeline or split-join"),
            BuildError::BranchMismatch { branches, weights } => {
                write!(
                    f,
                    "split-join has {branches} branches but {weights} joiner weights"
                )
            }
            BuildError::InteriorSink => write!(f, "sink must be the final stage of the program"),
            BuildError::DanglingOutput => {
                write!(f, "program output is not consumed (missing sink?)")
            }
            BuildError::DanglingInput => write!(f, "stage consumes input but none is produced"),
            BuildError::Invalid(s) => write!(f, "flattened graph invalid: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Entry/exit connection points of a flattened sub-stream.
struct Ends {
    /// Node consuming the sub-stream's input, if it consumes any.
    entry: Option<NodeId>,
    /// Node producing the sub-stream's output and its element type.
    exit: Option<(NodeId, ScalarTy)>,
}

fn flatten(g: &mut Graph, spec: StreamSpec, in_elem: ScalarTy) -> Result<Ends, BuildError> {
    match spec {
        StreamSpec::Filter { filter, out_elem } => {
            let consumes = filter.pop > 0 || filter.peek > 0;
            let produces = filter.push > 0;
            let id = g.add_node(Node::Filter(filter));
            Ok(Ends {
                entry: consumes.then_some(id),
                exit: produces.then_some((id, out_elem)),
            })
        }
        StreamSpec::Sink => {
            let id = g.add_node(Node::Sink);
            Ok(Ends {
                entry: Some(id),
                exit: None,
            })
        }
        StreamSpec::Pipeline(stages) => {
            if stages.is_empty() {
                return Err(BuildError::Empty);
            }
            let n = stages.len();
            let mut first_entry: Option<NodeId> = None;
            let mut prev_exit: Option<(NodeId, ScalarTy)> = None;
            let mut seen_any = false;
            for (i, stage) in stages.into_iter().enumerate() {
                let stage_in = prev_exit.map(|(_, t)| t).unwrap_or(in_elem);
                let ends = flatten(g, stage, stage_in)?;
                match (prev_exit, ends.entry) {
                    (Some((src, elem)), Some(dst)) => {
                        g.connect(src, next_out_port(g, src), dst, next_in_port(g, dst), elem);
                    }
                    (Some(_), None) => {
                        return Err(BuildError::Invalid("stage ignores its input".into()))
                    }
                    (None, Some(_)) if seen_any => return Err(BuildError::DanglingInput),
                    _ => {}
                }
                if !seen_any {
                    first_entry = ends.entry;
                }
                if ends.exit.is_none() && i != n - 1 {
                    return Err(BuildError::InteriorSink);
                }
                prev_exit = ends.exit;
                seen_any = true;
            }
            Ok(Ends {
                entry: first_entry,
                exit: prev_exit,
            })
        }
        StreamSpec::SplitJoin {
            split,
            branches,
            join,
        } => {
            if branches.is_empty() {
                return Err(BuildError::Empty);
            }
            if branches.len() != join.len() {
                return Err(BuildError::BranchMismatch {
                    branches: branches.len(),
                    weights: join.len(),
                });
            }
            if let SplitKind::RoundRobin(w) = &split {
                if w.len() != branches.len() {
                    return Err(BuildError::BranchMismatch {
                        branches: branches.len(),
                        weights: w.len(),
                    });
                }
            }
            let sp = g.add_node(Node::Splitter(split));
            let jn = g.add_node(Node::Joiner(join));
            let mut out_elem = in_elem;
            for (i, branch) in branches.into_iter().enumerate() {
                let ends = flatten(g, branch, in_elem)?;
                let entry = ends.entry.ok_or(BuildError::DanglingInput)?;
                let (exit, elem) = ends.exit.ok_or(BuildError::InteriorSink)?;
                g.connect(sp, i, entry, next_in_port(g, entry), in_elem);
                g.connect(exit, next_out_port(g, exit), jn, i, elem);
                out_elem = elem;
            }
            Ok(Ends {
                entry: Some(sp),
                exit: Some((jn, out_elem)),
            })
        }
    }
}

fn next_in_port(g: &Graph, id: NodeId) -> usize {
    g.in_edges(id).len()
}

fn next_out_port(g: &Graph, id: NodeId) -> usize {
    g.out_edges(id).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Node;

    fn src(push: usize) -> StreamSpec {
        StreamSpec::filter(Filter::new("src", 0, 0, push), ScalarTy::F32)
    }

    fn id_filter(name: &str) -> StreamSpec {
        StreamSpec::filter(Filter::new(name, 1, 1, 1), ScalarTy::F32)
    }

    #[test]
    fn simple_pipeline_builds() {
        let g = StreamSpec::pipeline(vec![src(1), id_filter("f"), StreamSpec::Sink])
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn split_join_builds() {
        let g = StreamSpec::pipeline(vec![
            src(4),
            StreamSpec::split_join_uniform(
                1,
                1,
                vec![
                    id_filter("b0"),
                    id_filter("b1"),
                    id_filter("b2"),
                    id_filter("b3"),
                ],
            ),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        // src, splitter, 4 branches, joiner, sink
        assert_eq!(g.node_count(), 8);
        let splitters = g
            .nodes()
            .filter(|(_, n)| matches!(n, Node::Splitter(_)))
            .count();
        assert_eq!(splitters, 1);
    }

    #[test]
    fn nested_split_join() {
        let inner = StreamSpec::split_join_uniform(1, 1, vec![id_filter("x"), id_filter("y")]);
        let g = StreamSpec::pipeline(vec![
            src(4),
            StreamSpec::split_join_uniform(2, 2, vec![inner, id_filter("z")]),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap();
        assert_eq!(g.topo_order().unwrap().len(), g.node_count());
    }

    #[test]
    fn missing_sink_rejected() {
        let err = StreamSpec::pipeline(vec![src(1), id_filter("f")])
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DanglingOutput);
    }

    #[test]
    fn interior_sink_rejected() {
        let err = StreamSpec::pipeline(vec![
            src(1),
            StreamSpec::Sink,
            id_filter("f"),
            StreamSpec::Sink,
        ])
        .build()
        .unwrap_err();
        assert_eq!(err, BuildError::InteriorSink);
    }

    #[test]
    fn branch_weight_mismatch_rejected() {
        let err = StreamSpec::pipeline(vec![
            src(2),
            StreamSpec::SplitJoin {
                split: SplitKind::RoundRobin(vec![1, 1]),
                branches: vec![id_filter("a"), id_filter("b")],
                join: vec![1],
            },
            StreamSpec::Sink,
        ])
        .build()
        .unwrap_err();
        assert!(matches!(err, BuildError::BranchMismatch { .. }));
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert_eq!(
            StreamSpec::pipeline(vec![]).build().unwrap_err(),
            BuildError::Empty
        );
    }
}
