//! Parameterized rates: rate expressions over named runtime parameters,
//! the domains those parameters range over, and concrete valuations.
//!
//! MacroSS proper is static SDF — every `peek/pop/push` is a frozen
//! `usize`. The parameterized-dataflow extension (`crates/pdf`) lets a
//! program declare rates as [`RateExpr`]s over named parameters
//! (`Param("decim")`), each constrained by a [`ParamDomain`]. A concrete
//! [`Valuation`] resolves every expression to a plain `usize`, producing
//! an ordinary static graph that the whole existing pipeline (balance
//! equations, SIMDization, bytecode) runs unchanged. These types are the
//! declarative vocabulary; instantiation lives in `macross-pdf`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A rate expression: a small arithmetic language over non-negative
/// integers and named runtime parameters. Kept deliberately tiny —
/// products and sums of parameters cover decimation factors, frame
/// sizes, and blocked transfers without opening the door to rates the
/// balance solver cannot reason about.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RateExpr {
    /// A fixed rate, exactly as in static SDF.
    Const(u64),
    /// The current value of a named runtime parameter.
    Param(String),
    /// Product of two rate expressions.
    Mul(Box<RateExpr>, Box<RateExpr>),
    /// Sum of two rate expressions.
    Add(Box<RateExpr>, Box<RateExpr>),
}

impl RateExpr {
    /// Shorthand for `Param(name.into())`.
    pub fn param(name: impl Into<String>) -> RateExpr {
        RateExpr::Param(name.into())
    }

    /// Resolve the expression under `v`.
    ///
    /// # Errors
    /// [`ParamError::Unbound`] when a referenced parameter has no value,
    /// [`ParamError::Overflow`] when the arithmetic exceeds `u64` or the
    /// result exceeds `usize` on the host.
    pub fn eval(&self, v: &Valuation) -> Result<usize, ParamError> {
        let raw = self.eval_u64(v)?;
        usize::try_from(raw).map_err(|_| ParamError::Overflow)
    }

    fn eval_u64(&self, v: &Valuation) -> Result<u64, ParamError> {
        match self {
            RateExpr::Const(c) => Ok(*c),
            RateExpr::Param(name) => v.get(name).ok_or_else(|| ParamError::Unbound(name.clone())),
            RateExpr::Mul(a, b) => a
                .eval_u64(v)?
                .checked_mul(b.eval_u64(v)?)
                .ok_or(ParamError::Overflow),
            RateExpr::Add(a, b) => a
                .eval_u64(v)?
                .checked_add(b.eval_u64(v)?)
                .ok_or(ParamError::Overflow),
        }
    }

    /// Collect the names of every parameter the expression mentions.
    pub fn collect_params(&self, out: &mut BTreeSet<String>) {
        match self {
            RateExpr::Const(_) => {}
            RateExpr::Param(name) => {
                out.insert(name.clone());
            }
            RateExpr::Mul(a, b) | RateExpr::Add(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }
}

impl fmt::Display for RateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateExpr::Const(c) => write!(f, "{c}"),
            RateExpr::Param(name) => write!(f, "${name}"),
            RateExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            RateExpr::Add(a, b) => write!(f, "({a} + {b})"),
        }
    }
}

impl From<u64> for RateExpr {
    fn from(c: u64) -> RateExpr {
        RateExpr::Const(c)
    }
}

/// The inclusive legal range of one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamRange {
    /// Smallest legal value.
    pub lo: u64,
    /// Largest legal value (inclusive).
    pub hi: u64,
}

impl ParamRange {
    /// True when `value` lies in `[lo, hi]`.
    pub fn contains(&self, value: u64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Number of legal values.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Always false: a well-formed range holds at least one value.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The declared domain of a parameterized program: every parameter the
/// rate expressions may reference, with its inclusive legal range.
/// Deterministically ordered (BTreeMap) so sweeps and canonical forms
/// are reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamDomain {
    ranges: BTreeMap<String, ParamRange>,
}

impl ParamDomain {
    /// An empty domain (a static program).
    pub fn new() -> ParamDomain {
        ParamDomain::default()
    }

    /// Declare `name` with inclusive range `[lo, hi]`, builder-style.
    ///
    /// # Panics
    /// When `lo > hi` — an empty range can never be valuated.
    pub fn with(mut self, name: impl Into<String>, lo: u64, hi: u64) -> ParamDomain {
        assert!(lo <= hi, "empty parameter range [{lo}, {hi}]");
        self.ranges.insert(name.into(), ParamRange { lo, hi });
        self
    }

    /// The declared range of `name`, if any.
    pub fn range(&self, name: &str) -> Option<ParamRange> {
        self.ranges.get(name).copied()
    }

    /// Iterate declared `(name, range)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ParamRange)> {
        self.ranges.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// Declared parameter names in deterministic order.
    pub fn names(&self) -> Vec<&str> {
        self.ranges.keys().map(String::as_str).collect()
    }

    /// Number of declared parameters.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when no parameters are declared.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Check a valuation against the domain: every declared parameter
    /// bound, every bound value in range, no undeclared bindings.
    ///
    /// # Errors
    /// [`ParamError::Unbound`], [`ParamError::Undeclared`], or
    /// [`ParamError::OutOfDomain`] accordingly.
    pub fn check(&self, v: &Valuation) -> Result<(), ParamError> {
        for (name, range) in &self.ranges {
            match v.get(name) {
                None => return Err(ParamError::Unbound(name.clone())),
                Some(val) if !range.contains(val) => {
                    return Err(ParamError::OutOfDomain {
                        name: name.clone(),
                        value: val,
                        lo: range.lo,
                        hi: range.hi,
                    })
                }
                Some(_) => {}
            }
        }
        for name in v.names() {
            if !self.ranges.contains_key(name) {
                return Err(ParamError::Undeclared(name.to_string()));
            }
        }
        Ok(())
    }

    /// Total number of valuations in the full sweep, or `None` on
    /// overflow (astronomically large domains).
    pub fn cardinality(&self) -> Option<u64> {
        self.ranges
            .values()
            .try_fold(1u64, |acc, r| acc.checked_mul(r.len()))
    }

    /// Every valuation of the domain (cartesian product, name-major in
    /// deterministic name order). Intended for validation sweeps and
    /// property tests over modestly-sized domains.
    ///
    /// # Panics
    /// When the sweep would exceed 1<<20 valuations — sweeping such a
    /// domain is a programming error, not a runtime condition.
    pub fn valuations(&self) -> Vec<Valuation> {
        let card = self
            .cardinality()
            .filter(|&c| c <= 1 << 20)
            .expect("parameter domain too large to sweep");
        let mut out = Vec::with_capacity(card as usize);
        let names: Vec<&String> = self.ranges.keys().collect();
        let mut cursor: Vec<u64> = self.ranges.values().map(|r| r.lo).collect();
        loop {
            let mut v = Valuation::new();
            for (name, val) in names.iter().zip(&cursor) {
                v.bind(name.as_str(), *val);
            }
            out.push(v);
            // Odometer increment, last name fastest.
            let mut i = cursor.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                let range = self.ranges[names[i]];
                if cursor[i] < range.hi {
                    cursor[i] += 1;
                    break;
                }
                cursor[i] = range.lo;
            }
        }
    }

    /// The canonical valuation: every parameter at its lower bound.
    /// Used as the representative instantiation for template hashing.
    pub fn canonical(&self) -> Valuation {
        let mut v = Valuation::new();
        for (name, range) in &self.ranges {
            v.bind(name.as_str(), range.lo);
        }
        v
    }
}

/// A concrete assignment of values to parameters. Deterministically
/// ordered so its canonical string form is unique per assignment —
/// that string is the valuation's cache-key component.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Valuation {
    vals: BTreeMap<String, u64>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// A single-binding valuation.
    pub fn of(name: impl Into<String>, value: u64) -> Valuation {
        let mut v = Valuation::new();
        v.bind(name, value);
        v
    }

    /// Bind (or rebind) `name` to `value`.
    pub fn bind(&mut self, name: impl Into<String>, value: u64) -> &mut Valuation {
        self.vals.insert(name.into(), value);
        self
    }

    /// Builder-style [`bind`](Valuation::bind).
    pub fn with(mut self, name: impl Into<String>, value: u64) -> Valuation {
        self.bind(name, value);
        self
    }

    /// The bound value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.vals.get(name).copied()
    }

    /// Bound names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.vals.keys().map(String::as_str)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Canonical form: `name=value` pairs in name order joined by `,`
    /// (empty string for the empty valuation). Unique per assignment,
    /// so it doubles as the valuation's component of a cache key.
    pub fn canon(&self) -> String {
        let mut s = String::new();
        for (i, (name, val)) in self.vals.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(name);
            s.push('=');
            s.push_str(&val.to_string());
        }
        s
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canon())
    }
}

/// Errors from evaluating or checking parameterized rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A rate expression referenced a parameter the valuation does not
    /// bind (or the domain declares a parameter the valuation omits).
    Unbound(String),
    /// The valuation binds a parameter the domain never declared.
    Undeclared(String),
    /// A bound value lies outside the declared range.
    OutOfDomain {
        /// Offending parameter.
        name: String,
        /// Its bound value.
        value: u64,
        /// Declared lower bound.
        lo: u64,
        /// Declared upper bound (inclusive).
        hi: u64,
    },
    /// Rate arithmetic overflowed `u64`/`usize`.
    Overflow,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Unbound(name) => write!(f, "parameter '{name}' is not bound"),
            ParamError::Undeclared(name) => write!(f, "parameter '{name}' is not declared"),
            ParamError::OutOfDomain {
                name,
                value,
                lo,
                hi,
            } => write!(f, "parameter '{name}' = {value} outside [{lo}, {hi}]"),
            ParamError::Overflow => write!(f, "rate expression overflowed"),
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_resolves_params_and_arithmetic() {
        let e = RateExpr::Mul(
            Box::new(RateExpr::param("decim")),
            Box::new(RateExpr::Add(
                Box::new(RateExpr::Const(2)),
                Box::new(RateExpr::param("taps")),
            )),
        );
        let v = Valuation::of("decim", 3).with("taps", 4);
        assert_eq!(e.eval(&v).unwrap(), 18);
        assert_eq!(e.to_string(), "($decim * (2 + $taps))");
        let mut names = BTreeSet::new();
        e.collect_params(&mut names);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn eval_errors_are_typed() {
        let v = Valuation::new();
        assert_eq!(
            RateExpr::param("x").eval(&v),
            Err(ParamError::Unbound("x".into()))
        );
        let big = RateExpr::Mul(
            Box::new(RateExpr::Const(u64::MAX)),
            Box::new(RateExpr::Const(2)),
        );
        assert_eq!(big.eval(&v), Err(ParamError::Overflow));
    }

    #[test]
    fn domain_checks_valuations() {
        let dom = ParamDomain::new().with("decim", 1, 4).with("frame", 2, 8);
        let good = Valuation::of("decim", 2).with("frame", 8);
        dom.check(&good).unwrap();
        let missing = Valuation::of("decim", 2);
        assert!(matches!(dom.check(&missing), Err(ParamError::Unbound(_))));
        let out = Valuation::of("decim", 9).with("frame", 2);
        assert!(matches!(
            dom.check(&out),
            Err(ParamError::OutOfDomain { .. })
        ));
        let extra = good.clone().with("ghost", 1);
        assert!(matches!(dom.check(&extra), Err(ParamError::Undeclared(_))));
    }

    #[test]
    fn sweep_is_exhaustive_and_deterministic() {
        let dom = ParamDomain::new().with("a", 1, 3).with("b", 5, 6);
        assert_eq!(dom.cardinality(), Some(6));
        let sweep = dom.valuations();
        assert_eq!(sweep.len(), 6);
        // Name-major, last name fastest, all distinct and all legal.
        assert_eq!(sweep[0].canon(), "a=1,b=5");
        assert_eq!(sweep[1].canon(), "a=1,b=6");
        assert_eq!(sweep[5].canon(), "a=3,b=6");
        let canon: BTreeSet<String> = sweep.iter().map(Valuation::canon).collect();
        assert_eq!(canon.len(), 6);
        for v in &sweep {
            dom.check(v).unwrap();
        }
        assert_eq!(dom.canonical().canon(), "a=1,b=5");
    }

    #[test]
    fn canon_is_insertion_order_invariant() {
        let a = Valuation::of("x", 1).with("y", 2);
        let b = Valuation::of("y", 2).with("x", 1);
        assert_eq!(a.canon(), b.canon());
        assert_eq!(a, b);
        assert_eq!(Valuation::new().canon(), "");
    }
}
