//! Filters (actors): declared rates, variables, internal channels, and the
//! `init`/`work` function bodies.

use crate::expr::{ChanId, VarId};
use crate::stmt::Stmt;
use crate::types::Ty;

/// Whether a variable persists across firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Re-initialized (to zero) on every firing of `work`.
    Local,
    /// Persists across firings; written by `init` and possibly by `work`.
    ///
    /// A filter with state written inside `work` is *stateful* and excluded
    /// from single-actor and vertical SIMDization (Section 2 of the paper).
    State,
}

/// A declared variable of a filter.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Source-level name (for diagnostics and code generation).
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Local or persistent state.
    pub kind: VarKind,
}

/// An internal FIFO channel created by vertical fusion.
///
/// Fused inner actors communicate through these instead of global tapes
/// ("internal buffers" in Section 3.2). Channels are drained completely
/// within one firing of the fused actor.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalChan {
    /// Diagnostic name.
    pub name: String,
    /// Element type: scalar before SIMDization, vector after.
    pub ty: Ty,
}

/// Region-based state annotation (Timcheck & Buhler): the filter's state
/// partitions into `regions` identical, independent regions, and firing
/// `i` touches only region `i mod regions`. The filter makes the
/// invariant explicit with a *cursor*: a scalar `i32` state variable that
/// starts at 0, indexes every region array subscript in `work`, and is
/// advanced exactly once per firing by `cursor = (cursor + 1) % regions`
/// as the last top-level `work` statement.
///
/// The annotation is a *claim*, checked by
/// `analysis::check_region_spec`; a filter whose body violates the shape
/// is rejected (or simply left scalar by the SIMDizer, which re-checks).
/// Region state variables stay ordinary [`VarKind::State`] — swap
/// carryover, fault drains and zero-initialization treat them like any
/// named state — the annotation only *adds* the independence fact the
/// region SIMDization transform needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Number of independent regions `R` (>= 2).
    pub regions: usize,
    /// The per-region state arrays; each must be `Ty::Array(elem, R)`,
    /// subscripted only by the cursor inside `work`.
    pub vars: Vec<VarId>,
    /// The cursor: a scalar `i32` state variable, `0 <= cursor < R`.
    pub cursor: VarId,
}

/// An actor with a single (optional) input and output tape.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// Actor name (unique within a graph for diagnostics).
    pub name: String,
    /// Maximum read extent per firing, in scalar tape elements. `peek >= pop`.
    pub peek: usize,
    /// Elements consumed per firing (0 for sources).
    pub pop: usize,
    /// Elements produced per firing (0 for pure sinks implemented as filters).
    pub push: usize,
    /// All declared variables; [`VarId`] indexes this vector.
    pub vars: Vec<VarDecl>,
    /// Internal channels; [`ChanId`] indexes this vector.
    pub chans: Vec<LocalChan>,
    /// Runs once before the steady state (fills state).
    pub init: Vec<Stmt>,
    /// Runs once per firing.
    pub work: Vec<Stmt>,
    /// Optional region-based state declaration (see [`RegionSpec`]).
    pub region: Option<RegionSpec>,
}

impl Filter {
    /// Create an empty filter with the given name and rates.
    ///
    /// # Panics
    /// Panics if `peek < pop` (peeking below the pop rate is meaningless).
    pub fn new(name: impl Into<String>, peek: usize, pop: usize, push: usize) -> Filter {
        assert!(peek >= pop, "peek rate must be >= pop rate");
        Filter {
            name: name.into(),
            peek,
            pop,
            push,
            vars: Vec::new(),
            chans: Vec::new(),
            init: Vec::new(),
            work: Vec::new(),
            region: None,
        }
    }

    /// Declare a variable, returning its id.
    pub fn add_var(&mut self, name: impl Into<String>, ty: Ty, kind: VarKind) -> VarId {
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
            kind,
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Declare an internal channel, returning its id.
    pub fn add_chan(&mut self, name: impl Into<String>, ty: Ty) -> ChanId {
        self.chans.push(LocalChan {
            name: name.into(),
            ty,
        });
        ChanId((self.chans.len() - 1) as u32)
    }

    /// Look up a variable declaration.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.0 as usize]
    }

    /// True if this filter consumes no input (a stream source).
    pub fn is_source(&self) -> bool {
        self.pop == 0 && self.peek == 0
    }

    /// True if the filter reads further than it pops (`peek > pop`), like a
    /// sliding-window FIR filter.
    pub fn is_peeking(&self) -> bool {
        self.peek > self.pop
    }

    /// Ids of all state variables.
    pub fn state_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::State)
            .map(|(i, _)| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarTy;

    #[test]
    fn filter_construction() {
        let mut f = Filter::new("fir", 8, 1, 1);
        let coef = f.add_var("coef", Ty::Array(ScalarTy::F32, 8), VarKind::State);
        let acc = f.add_var("acc", Ty::Scalar(ScalarTy::F32), VarKind::Local);
        assert_eq!(f.var(coef).name, "coef");
        assert_eq!(f.var(acc).kind, VarKind::Local);
        assert!(f.is_peeking());
        assert!(!f.is_source());
        assert_eq!(f.state_vars().count(), 1);
    }

    #[test]
    fn source_detection() {
        let f = Filter::new("src", 0, 0, 4);
        assert!(f.is_source());
        assert!(!f.is_peeking());
    }

    #[test]
    #[should_panic(expected = "peek rate must be >= pop rate")]
    fn peek_below_pop_rejected() {
        let _ = Filter::new("bad", 1, 2, 1);
    }

    #[test]
    fn channels_get_sequential_ids() {
        let mut f = Filter::new("fused", 2, 2, 2);
        let c0 = f.add_chan("buf0", Ty::Scalar(ScalarTy::F32));
        let c1 = f.add_chan("buf1", Ty::Vector(ScalarTy::F32, 4));
        assert_eq!(c0.0, 0);
        assert_eq!(c1.0, 1);
        assert_eq!(f.chans.len(), 2);
    }
}
