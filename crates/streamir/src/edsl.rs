//! An embedded DSL for building actor work functions ergonomically.
//!
//! The benchmark suite constructs thousands of IR statements; this module
//! provides operator overloading on [`E`] (expression wrapper), a block
//! builder [`B`], and a [`FilterBuilder`].
//!
//! ```
//! use macross_streamir::edsl::*;
//! use macross_streamir::types::{ScalarTy, Ty};
//!
//! let mut fb = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::F32);
//! let t = fb.local("t", Ty::Scalar(ScalarTy::F32));
//! fb.work(|b| {
//!     b.set(t, pop());
//!     b.push(v(t) * 2.0f32);
//! });
//! let filter = fb.build();
//! assert_eq!(filter.work.len(), 2);
//! ```

use crate::expr::{BinOp, ChanId, Expr, Intrinsic, LValue, UnOp, VarId};
use crate::filter::{Filter, RegionSpec, VarKind};
use crate::stmt::Stmt;
use crate::types::{ScalarTy, Ty, Value};

/// Expression wrapper enabling operator overloading.
#[derive(Debug, Clone, PartialEq)]
pub struct E(pub Expr);

/// Anything convertible to an expression: `E`, `VarId`, or literals.
pub trait IntoE {
    /// Convert into an expression wrapper.
    fn into_e(self) -> E;
}

impl IntoE for E {
    fn into_e(self) -> E {
        self
    }
}
impl IntoE for &E {
    fn into_e(self) -> E {
        self.clone()
    }
}
impl IntoE for Expr {
    fn into_e(self) -> E {
        E(self)
    }
}
impl IntoE for VarId {
    fn into_e(self) -> E {
        E(Expr::Var(self))
    }
}
impl IntoE for i32 {
    fn into_e(self) -> E {
        E(Expr::Const(Value::I32(self)))
    }
}
impl IntoE for i64 {
    fn into_e(self) -> E {
        E(Expr::Const(Value::I64(self)))
    }
}
impl IntoE for f32 {
    fn into_e(self) -> E {
        E(Expr::Const(Value::F32(self)))
    }
}
impl IntoE for f64 {
    fn into_e(self) -> E {
        E(Expr::Const(Value::F64(self)))
    }
}
impl IntoE for usize {
    fn into_e(self) -> E {
        E(Expr::Const(Value::I32(self as i32)))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: IntoE> std::ops::$trait<R> for E {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                E(Expr::bin($op, self.0, rhs.into_e().0))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);
impl_binop!(Shl, shl, BinOp::Shl);
impl_binop!(Shr, shr, BinOp::Shr);

macro_rules! impl_binop_scalar_lhs {
    ($lhs:ty) => {
        impl std::ops::Add<E> for $lhs {
            type Output = E;
            fn add(self, rhs: E) -> E {
                self.into_e() + rhs
            }
        }
        impl std::ops::Sub<E> for $lhs {
            type Output = E;
            fn sub(self, rhs: E) -> E {
                E(Expr::bin(BinOp::Sub, self.into_e().0, rhs.0))
            }
        }
        impl std::ops::Mul<E> for $lhs {
            type Output = E;
            fn mul(self, rhs: E) -> E {
                self.into_e() * rhs
            }
        }
        impl std::ops::Div<E> for $lhs {
            type Output = E;
            fn div(self, rhs: E) -> E {
                E(Expr::bin(BinOp::Div, self.into_e().0, rhs.0))
            }
        }
    };
}

impl_binop_scalar_lhs!(i32);
impl_binop_scalar_lhs!(f32);

impl std::ops::Neg for E {
    type Output = E;
    fn neg(self) -> E {
        E(Expr::Unary(UnOp::Neg, Box::new(self.0)))
    }
}

/// Scalar literal expression.
pub fn c(v: impl Into<Value>) -> E {
    E(Expr::Const(v.into()))
}

/// Read a variable.
pub fn v(id: VarId) -> E {
    E(Expr::Var(id))
}

/// Read an array element.
pub fn idx(arr: VarId, i: impl IntoE) -> E {
    E(Expr::Index(arr, Box::new(i.into_e().0)))
}

/// Scalar `pop()` from the input tape.
pub fn pop() -> E {
    E(Expr::Pop)
}

/// Scalar `peek(offset)` from the input tape.
pub fn peek(offset: impl IntoE) -> E {
    E(Expr::Peek(Box::new(offset.into_e().0)))
}

/// Pop from an internal channel.
pub fn lpop(c: ChanId) -> E {
    E(Expr::LPop(c))
}

/// Cast to another scalar type.
pub fn cast(ty: ScalarTy, e: impl IntoE) -> E {
    E(Expr::Cast(ty, Box::new(e.into_e().0)))
}

macro_rules! unary_intrinsic {
    ($name:ident, $which:expr) => {
        /// Intrinsic call.
        pub fn $name(e: impl IntoE) -> E {
            E(Expr::Call($which, vec![e.into_e().0]))
        }
    };
}

unary_intrinsic!(sin, Intrinsic::Sin);
unary_intrinsic!(cos, Intrinsic::Cos);
unary_intrinsic!(atan, Intrinsic::Atan);
unary_intrinsic!(sqrt, Intrinsic::Sqrt);
unary_intrinsic!(exp, Intrinsic::Exp);
unary_intrinsic!(log, Intrinsic::Log);
unary_intrinsic!(floor, Intrinsic::Floor);
unary_intrinsic!(abs, Intrinsic::Abs);

/// `min(a, b)` intrinsic.
pub fn min(a: impl IntoE, b: impl IntoE) -> E {
    E(Expr::Call(Intrinsic::Min, vec![a.into_e().0, b.into_e().0]))
}

/// `max(a, b)` intrinsic.
pub fn max(a: impl IntoE, b: impl IntoE) -> E {
    E(Expr::Call(Intrinsic::Max, vec![a.into_e().0, b.into_e().0]))
}

/// `pow(a, b)` intrinsic.
pub fn pow(a: impl IntoE, b: impl IntoE) -> E {
    E(Expr::Call(Intrinsic::Pow, vec![a.into_e().0, b.into_e().0]))
}

macro_rules! cmp_fn {
    ($name:ident, $op:expr) => {
        /// Comparison yielding `i32` 0/1.
        pub fn $name(a: impl IntoE, b: impl IntoE) -> E {
            E(Expr::bin($op, a.into_e().0, b.into_e().0))
        }
    };
}

cmp_fn!(eq, BinOp::Eq);
cmp_fn!(ne, BinOp::Ne);
cmp_fn!(lt, BinOp::Lt);
cmp_fn!(le, BinOp::Le);
cmp_fn!(gt, BinOp::Gt);
cmp_fn!(ge, BinOp::Ge);

/// Assignment targets accepted by [`B::assign`].
pub trait IntoLValue {
    /// Convert into an [`LValue`].
    fn into_lvalue(self) -> LValue;
}

impl IntoLValue for LValue {
    fn into_lvalue(self) -> LValue {
        self
    }
}
impl IntoLValue for VarId {
    fn into_lvalue(self) -> LValue {
        LValue::Var(self)
    }
}

/// Statement block builder.
#[derive(Debug, Default)]
pub struct B {
    stmts: Vec<Stmt>,
}

impl B {
    /// Create an empty block.
    pub fn new() -> B {
        B::default()
    }

    /// Append a raw statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut B {
        self.stmts.push(s);
        self
    }

    /// `lhs = rhs`.
    pub fn assign(&mut self, lhs: impl IntoLValue, rhs: impl IntoE) -> &mut B {
        self.stmts
            .push(Stmt::Assign(lhs.into_lvalue(), rhs.into_e().0));
        self
    }

    /// `var = rhs`.
    pub fn set(&mut self, var: VarId, rhs: impl IntoE) -> &mut B {
        self.assign(LValue::Var(var), rhs)
    }

    /// `arr[i] = rhs`.
    pub fn set_idx(&mut self, arr: VarId, i: impl IntoE, rhs: impl IntoE) -> &mut B {
        self.assign(LValue::Index(arr, i.into_e().0), rhs)
    }

    /// `push(value)`.
    pub fn push(&mut self, value: impl IntoE) -> &mut B {
        self.stmts.push(Stmt::Push(value.into_e().0));
        self
    }

    /// `chan.push(value)`.
    pub fn lpush(&mut self, chan: ChanId, value: impl IntoE) -> &mut B {
        self.stmts.push(Stmt::LPush(chan, value.into_e().0));
        self
    }

    /// `for (var : 0 to count-1) { ... }`.
    pub fn for_(&mut self, var: VarId, count: impl IntoE, body: impl FnOnce(&mut B)) -> &mut B {
        let mut inner = B::new();
        body(&mut inner);
        self.stmts.push(Stmt::For {
            var,
            count: count.into_e().0,
            body: inner.stmts,
        });
        self
    }

    /// `if (cond) { ... }`.
    pub fn if_(&mut self, cond: impl IntoE, then_branch: impl FnOnce(&mut B)) -> &mut B {
        let mut t = B::new();
        then_branch(&mut t);
        self.stmts.push(Stmt::If {
            cond: cond.into_e().0,
            then_branch: t.stmts,
            else_branch: vec![],
        });
        self
    }

    /// `if (cond) { ... } else { ... }`.
    pub fn if_else(
        &mut self,
        cond: impl IntoE,
        then_branch: impl FnOnce(&mut B),
        else_branch: impl FnOnce(&mut B),
    ) -> &mut B {
        let mut t = B::new();
        then_branch(&mut t);
        let mut e = B::new();
        else_branch(&mut e);
        self.stmts.push(Stmt::If {
            cond: cond.into_e().0,
            then_branch: t.stmts,
            else_branch: e.stmts,
        });
        self
    }

    /// Finish the block.
    pub fn build(self) -> Vec<Stmt> {
        self.stmts
    }
}

/// Builder for [`Filter`]s, tracking the output element type used when the
/// filter is wired into a graph.
#[derive(Debug)]
pub struct FilterBuilder {
    filter: Filter,
    out_elem: ScalarTy,
}

impl FilterBuilder {
    /// Start a filter with the given name, rates, and output element type.
    pub fn new(
        name: impl Into<String>,
        peek: usize,
        pop: usize,
        push: usize,
        out_elem: ScalarTy,
    ) -> FilterBuilder {
        FilterBuilder {
            filter: Filter::new(name, peek, pop, push),
            out_elem,
        }
    }

    /// Declare a per-firing local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.filter.add_var(name, ty, VarKind::Local)
    }

    /// Declare a persistent state variable.
    pub fn state(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.filter.add_var(name, ty, VarKind::State)
    }

    /// Declare the region cursor: a scalar `i32` state variable cycling
    /// through `0..regions`, and open the filter's [`RegionSpec`]. The
    /// cursor-advance statement (`cursor = (cursor + 1) % regions`) must
    /// still be written as the last top-level `work` statement — the
    /// legality check verifies it is there.
    pub fn region_cursor(&mut self, name: impl Into<String>, regions: usize) -> VarId {
        assert!(regions >= 2, "a region spec needs at least 2 regions");
        let cursor = self
            .filter
            .add_var(name, Ty::Scalar(ScalarTy::I32), VarKind::State);
        let spec = self.filter.region.get_or_insert(RegionSpec {
            regions,
            vars: Vec::new(),
            cursor,
        });
        assert_eq!(
            spec.regions, regions,
            "conflicting region counts on one filter"
        );
        spec.cursor = cursor;
        cursor
    }

    /// Declare a per-region state array (`Ty::Array(elem, regions)`),
    /// registered in the filter's [`RegionSpec`]. Requires
    /// [`FilterBuilder::region_cursor`] to have been called first.
    pub fn region_var(&mut self, name: impl Into<String>, elem: ScalarTy) -> VarId {
        let regions = self
            .filter
            .region
            .as_ref()
            .expect("declare the region cursor before region vars")
            .regions;
        let id = self
            .filter
            .add_var(name, Ty::Array(elem, regions), VarKind::State);
        self.filter.region.as_mut().unwrap().vars.push(id);
        id
    }

    /// Define the `init` function.
    pub fn init(&mut self, f: impl FnOnce(&mut B)) -> &mut FilterBuilder {
        let mut b = B::new();
        f(&mut b);
        self.filter.init = b.build();
        self
    }

    /// Define the `work` function.
    pub fn work(&mut self, f: impl FnOnce(&mut B)) -> &mut FilterBuilder {
        let mut b = B::new();
        f(&mut b);
        self.filter.work = b.build();
        self
    }

    /// The declared output element type.
    pub fn out_elem(&self) -> ScalarTy {
        self.out_elem
    }

    /// Finish, yielding the filter.
    pub fn build(self) -> Filter {
        self.filter
    }

    /// Finish, yielding the filter together with its output element type
    /// (for [`crate::builder::StreamSpec::filter`]).
    pub fn build_spec(self) -> crate::builder::StreamSpec {
        crate::builder::StreamSpec::Filter {
            filter: self.filter,
            out_elem: self.out_elem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloading_builds_tree() {
        let e = (c(1.0f32) + 2.0f32) * c(3.0f32);
        assert_eq!(e.0.to_string(), "((1.0f + 2.0f) * 3.0f)");
    }

    #[test]
    fn mixed_literal_types() {
        let e = pop() + 1i32;
        assert_eq!(e.0.to_string(), "(pop() + 1)");
        let e2 = v(VarId(0)) ^ 0x5ai32;
        assert_eq!(e2.0.to_string(), "(v0 ^ 90)");
    }

    #[test]
    fn block_builder_control_flow() {
        let mut fb = FilterBuilder::new("t", 2, 2, 1, ScalarTy::I32);
        let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
        let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
        fb.work(|b| {
            b.set(acc, 0i32);
            b.for_(i, 2i32, |b| {
                b.set(acc, v(acc) + pop());
            });
            b.if_else(
                gt(v(acc), 10i32),
                |b| {
                    b.push(v(acc));
                },
                |b| {
                    b.push(0i32);
                },
            );
        });
        let f = fb.build();
        assert_eq!(f.work.len(), 3);
        assert!(matches!(f.work[1], Stmt::For { .. }));
        assert!(matches!(f.work[2], Stmt::If { .. }));
    }

    #[test]
    fn intrinsic_helpers() {
        let e = sqrt(v(VarId(1)) * v(VarId(1)));
        assert_eq!(e.0.to_string(), "sqrt((v1 * v1))");
        let m = min(1i32, 2i32);
        assert_eq!(m.0.to_string(), "min(1, 2)");
    }

    #[test]
    fn comparison_helpers() {
        assert_eq!(lt(c(1i32), 2i32).0.to_string(), "(1 < 2)");
        assert_eq!(ge(v(VarId(0)), 0i32).0.to_string(), "(v0 >= 0)");
    }

    #[test]
    fn negation() {
        let e = -v(VarId(2));
        assert_eq!(e.0.to_string(), "(-v2)");
    }
}
