//! Expression AST of actor `work`/`init` functions, plus constant evaluation.

use crate::types::{ScalarTy, Value};
use std::fmt;

/// Identifies a variable declared in a [`crate::filter::Filter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifies an internal FIFO channel of a (fused) filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Binary operators. Comparisons yield `i32` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// True for the comparison operators (result type is `i32`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the integer-only bitwise/shift operators.
    pub fn is_integer_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// C-style spelling (used by the code generator and `Display`).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integers only).
    Not,
    /// Logical not: yields `i32` 1 if the operand is zero, else 0.
    LogNot,
}

/// Math intrinsics available inside work functions.
///
/// Whether a given intrinsic is supported by the target SIMD engine is part
/// of the machine description; actors calling unsupported intrinsics are not
/// SIMDizable (Section 3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Intrinsic {
    Sin,
    Cos,
    Atan,
    Sqrt,
    Exp,
    Log,
    Floor,
    Abs,
    Min,
    Max,
    Pow,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => 2,
            _ => 1,
        }
    }

    /// Lower-case C-style name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Atan => "atan",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Floor => "floor",
            Intrinsic::Abs => "abs",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Pow => "pow",
        }
    }
}

/// Expression nodes.
///
/// The same AST expresses scalar and vectorized code: the macro-SIMDizer
/// rewrites scalar trees into trees that use the vector constructs
/// ([`Expr::ConstVec`], [`Expr::Splat`], [`Expr::Lane`], the `V*` tape reads
/// and the permutation primitives).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Scalar literal.
    Const(Value),
    /// Vector literal, one value per lane (e.g. horizontal-SIMDized
    /// constants `{5, 6, 7, 8}` of Figure 6b).
    ConstVec(Vec<Value>),
    /// Read a scalar or vector variable.
    Var(VarId),
    /// Read an element of an array (or vector-array) variable.
    Index(VarId, Box<Expr>),
    /// Vector load of `width` consecutive elements of a *scalar* array
    /// starting at the given index (produced by the baseline loop
    /// auto-vectorizer for unit-stride array reads).
    VIndex(VarId, Box<Expr>, usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation (element-wise on vectors).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Intrinsic call (element-wise on vectors).
    Call(Intrinsic, Vec<Expr>),
    /// Type cast (element-wise on vectors).
    Cast(ScalarTy, Box<Expr>),
    /// Destructive scalar read from the input tape.
    Pop,
    /// Non-destructive scalar read at `offset` elements past the read pointer.
    Peek(Box<Expr>),
    /// Destructive vector read: `width` consecutive scalars from the input
    /// tape as one vector (advances the read pointer by `width`).
    VPop { width: usize },
    /// Non-destructive vector read at scalar `offset` past the read pointer.
    VPeek { offset: Box<Expr>, width: usize },
    /// Destructive scalar read from an internal channel of a fused actor.
    LPop(ChanId),
    /// Destructive vector read from an internal channel of a fused actor.
    LVPop(ChanId, usize),
    /// Extract one lane of a vector as a scalar.
    Lane(Box<Expr>, usize),
    /// Broadcast a scalar to all `width` lanes.
    Splat(Box<Expr>, usize),
    /// `extract_even(v1, v2)`: even-position elements of the concatenation.
    PermuteEven(Box<Expr>, Box<Expr>),
    /// `extract_odd(v1, v2)`: odd-position elements of the concatenation.
    PermuteOdd(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// True if the expression or any sub-expression reads the input tape.
    pub fn reads_tape(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::Pop | Expr::Peek(_) | Expr::VPop { .. } | Expr::VPeek { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Pre-order walk over this expression tree.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_)
            | Expr::ConstVec(_)
            | Expr::Var(_)
            | Expr::Pop
            | Expr::LPop(_)
            | Expr::LVPop(_, _)
            | Expr::VPop { .. } => {}
            Expr::Index(_, e)
            | Expr::VIndex(_, e, _)
            | Expr::Unary(_, e)
            | Expr::Cast(_, e)
            | Expr::Peek(e)
            | Expr::Lane(e, _)
            | Expr::Splat(e, _) => e.walk(f),
            Expr::VPeek { offset, .. } => offset.walk(f),
            Expr::Binary(_, a, b) | Expr::PermuteEven(a, b) | Expr::PermuteOdd(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// If this expression is a compile-time integer constant, return it.
    pub fn as_const_usize(&self) -> Option<usize> {
        match self {
            Expr::Const(Value::I32(v)) if *v >= 0 => Some(*v as usize),
            Expr::Const(Value::I64(v)) if *v >= 0 => Some(*v as usize),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::ConstVec(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Index(v, i) => write!(f, "{v}[{i}]"),
            Expr::VIndex(v, i, w) => write!(f, "{v}.vload{w}({i})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(~{e})"),
            Expr::Unary(UnOp::LogNot, e) => write!(f, "(!{e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(i, args) => {
                write!(f, "{}(", i.name())?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cast(t, e) => write!(f, "({t}){e}"),
            Expr::Pop => write!(f, "pop()"),
            Expr::Peek(e) => write!(f, "peek({e})"),
            Expr::VPop { width } => write!(f, "vpop{width}()"),
            Expr::VPeek { offset, width } => write!(f, "vpeek{width}({offset})"),
            Expr::LPop(c) => write!(f, "{c}.pop()"),
            Expr::LVPop(c, w) => write!(f, "{c}.vpop{w}()"),
            Expr::Lane(e, l) => write!(f, "{e}.{{{l}}}"),
            Expr::Splat(e, w) => write!(f, "splat{w}({e})"),
            Expr::PermuteEven(a, b) => write!(f, "extract_even({a}, {b})"),
            Expr::PermuteOdd(a, b) => write!(f, "extract_odd({a}, {b})"),
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Whole variable.
    Var(VarId),
    /// Element of an array variable.
    Index(VarId, Expr),
    /// One lane of a vector variable (`t_v.{3} = ...`).
    LaneVar(VarId, usize),
    /// One lane of a vector-array element.
    LaneIndex(VarId, Expr, usize),
    /// Vector store of `width` consecutive elements into a scalar array
    /// starting at the given index (auto-vectorizer unit-stride writes).
    VIndex(VarId, Expr, usize),
}

impl LValue {
    /// The variable being written.
    pub fn var(&self) -> VarId {
        match self {
            LValue::Var(v)
            | LValue::Index(v, _)
            | LValue::LaneVar(v, _)
            | LValue::LaneIndex(v, _, _)
            | LValue::VIndex(v, _, _) => *v,
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var(v) => write!(f, "{v}"),
            LValue::Index(v, e) => write!(f, "{v}[{e}]"),
            LValue::LaneVar(v, l) => write!(f, "{v}.{{{l}}}"),
            LValue::LaneIndex(v, e, l) => write!(f, "{v}[{e}].{{{l}}}"),
            LValue::VIndex(v, e, w) => write!(f, "{v}.vstore{w}({e})"),
        }
    }
}

/// Evaluate a binary operation on two scalar values.
///
/// Both operands must have the same type (the validator enforces this);
/// comparisons return `i32` 0/1. Integer arithmetic wraps; integer division
/// and remainder by zero yield 0; shift counts are masked to the bit width.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    use Value::*;
    if op.is_comparison() {
        let r = match (a, b) {
            (I32(x), I32(y)) => cmp(op, x.cmp(&y)),
            (I64(x), I64(y)) => cmp(op, x.cmp(&y)),
            (F32(x), F32(y)) => fcmp(op, x as f64, y as f64),
            (F64(x), F64(y)) => fcmp(op, x, y),
            _ => panic!("type mismatch in comparison: {a:?} vs {b:?}"),
        };
        return I32(r as i32);
    }
    match (a, b) {
        (I32(x), I32(y)) => I32(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        }),
        (I64(x), I64(y)) => I64(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        }),
        (F32(x), F32(y)) => F32(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
            _ => panic!("integer-only operator {op:?} on f32"),
        }),
        (F64(x), F64(y)) => F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
            _ => panic!("integer-only operator {op:?} on f64"),
        }),
        _ => panic!("type mismatch in {op:?}: {a:?} vs {b:?}"),
    }
}

fn cmp(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!(),
    }
}

fn fcmp(op: BinOp, x: f64, y: f64) -> bool {
    match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!(),
    }
}

/// Evaluate a unary operation.
pub fn eval_unop(op: UnOp, a: Value) -> Value {
    use Value::*;
    match op {
        UnOp::Neg => match a {
            I32(x) => I32(x.wrapping_neg()),
            I64(x) => I64(x.wrapping_neg()),
            F32(x) => F32(-x),
            F64(x) => F64(-x),
        },
        UnOp::Not => match a {
            I32(x) => I32(!x),
            I64(x) => I64(!x),
            _ => panic!("bitwise not on float"),
        },
        UnOp::LogNot => I32(if a.is_truthy() { 0 } else { 1 }),
    }
}

/// Evaluate an intrinsic on scalar arguments.
pub fn eval_intrinsic(i: Intrinsic, args: &[Value]) -> Value {
    use Value::*;
    assert_eq!(
        args.len(),
        i.arity(),
        "{} expects {} args",
        i.name(),
        i.arity()
    );
    match i {
        Intrinsic::Min => match (args[0], args[1]) {
            (I32(a), I32(b)) => I32(a.min(b)),
            (I64(a), I64(b)) => I64(a.min(b)),
            (F32(a), F32(b)) => F32(a.min(b)),
            (F64(a), F64(b)) => F64(a.min(b)),
            _ => panic!("type mismatch in min"),
        },
        Intrinsic::Max => match (args[0], args[1]) {
            (I32(a), I32(b)) => I32(a.max(b)),
            (I64(a), I64(b)) => I64(a.max(b)),
            (F32(a), F32(b)) => F32(a.max(b)),
            (F64(a), F64(b)) => F64(a.max(b)),
            _ => panic!("type mismatch in max"),
        },
        Intrinsic::Abs => match args[0] {
            I32(a) => I32(a.wrapping_abs()),
            I64(a) => I64(a.wrapping_abs()),
            F32(a) => F32(a.abs()),
            F64(a) => F64(a.abs()),
        },
        Intrinsic::Pow => match (args[0], args[1]) {
            (F32(a), F32(b)) => F32(a.powf(b)),
            (F64(a), F64(b)) => F64(a.powf(b)),
            _ => panic!("pow expects float args"),
        },
        _ => {
            // Unary float intrinsics.
            let f = |x: f64| -> f64 {
                match i {
                    Intrinsic::Sin => x.sin(),
                    Intrinsic::Cos => x.cos(),
                    Intrinsic::Atan => x.atan(),
                    Intrinsic::Sqrt => x.sqrt(),
                    Intrinsic::Exp => x.exp(),
                    Intrinsic::Log => x.ln(),
                    Intrinsic::Floor => x.floor(),
                    _ => unreachable!(),
                }
            };
            match args[0] {
                F32(x) => F32(f(x as f64) as f32),
                F64(x) => F64(f(x)),
                v => panic!("float intrinsic {} on {v:?}", i.name()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::I32(2), Value::I32(3)),
            Value::I32(5)
        );
        assert_eq!(
            eval_binop(BinOp::Mul, Value::F32(2.0), Value::F32(1.5)),
            Value::F32(3.0)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Value::I32(7), Value::I32(0)),
            Value::I32(0)
        );
        assert_eq!(
            eval_binop(BinOp::Rem, Value::I64(9), Value::I64(4)),
            Value::I64(1)
        );
        assert_eq!(
            eval_binop(BinOp::Add, Value::I32(i32::MAX), Value::I32(1)),
            Value::I32(i32::MIN)
        );
    }

    #[test]
    fn binop_comparisons_yield_i32() {
        assert_eq!(
            eval_binop(BinOp::Lt, Value::F32(1.0), Value::F32(2.0)),
            Value::I32(1)
        );
        assert_eq!(
            eval_binop(BinOp::Ge, Value::I32(1), Value::I32(2)),
            Value::I32(0)
        );
        assert_eq!(
            eval_binop(BinOp::Eq, Value::I64(4), Value::I64(4)),
            Value::I32(1)
        );
        assert_eq!(
            eval_binop(BinOp::Ne, Value::F64(0.5), Value::F64(0.5)),
            Value::I32(0)
        );
    }

    #[test]
    fn binop_bitwise() {
        assert_eq!(
            eval_binop(BinOp::Xor, Value::I32(0b1100), Value::I32(0b1010)),
            Value::I32(0b0110)
        );
        assert_eq!(
            eval_binop(BinOp::Shl, Value::I32(1), Value::I32(4)),
            Value::I32(16)
        );
        assert_eq!(
            eval_binop(BinOp::Shr, Value::I32(-8), Value::I32(1)),
            Value::I32(-4)
        );
    }

    #[test]
    fn unop_eval() {
        assert_eq!(eval_unop(UnOp::Neg, Value::F32(2.0)), Value::F32(-2.0));
        assert_eq!(eval_unop(UnOp::Not, Value::I32(0)), Value::I32(-1));
        assert_eq!(eval_unop(UnOp::LogNot, Value::I32(0)), Value::I32(1));
        assert_eq!(eval_unop(UnOp::LogNot, Value::F64(2.5)), Value::I32(0));
    }

    #[test]
    fn intrinsic_eval() {
        assert_eq!(
            eval_intrinsic(Intrinsic::Sqrt, &[Value::F32(4.0)]),
            Value::F32(2.0)
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Min, &[Value::I32(3), Value::I32(-1)]),
            Value::I32(-1)
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Max, &[Value::F64(3.0), Value::F64(9.0)]),
            Value::F64(9.0)
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Abs, &[Value::I32(-5)]),
            Value::I32(5)
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Floor, &[Value::F32(2.7)]),
            Value::F32(2.0)
        );
    }

    #[test]
    fn expr_reads_tape_detection() {
        let e = Expr::bin(BinOp::Add, Expr::Pop, Expr::Const(Value::I32(1)));
        assert!(e.reads_tape());
        let e2 = Expr::bin(BinOp::Add, Expr::Var(VarId(0)), Expr::Const(Value::I32(1)));
        assert!(!e2.reads_tape());
        let e3 = Expr::Call(
            Intrinsic::Sin,
            vec![Expr::Peek(Box::new(Expr::Const(Value::I32(0))))],
        );
        assert!(e3.reads_tape());
    }

    #[test]
    fn expr_display_is_c_like() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::Lane(Box::new(Expr::Var(VarId(3))), 2),
            Expr::Const(Value::F32(0.5)),
        );
        assert_eq!(e.to_string(), "(v3.{2} * 0.5f)");
        assert_eq!(Expr::VPop { width: 4 }.to_string(), "vpop4()");
    }

    #[test]
    fn const_usize_extraction() {
        assert_eq!(Expr::Const(Value::I32(7)).as_const_usize(), Some(7));
        assert_eq!(Expr::Const(Value::I32(-1)).as_const_usize(), None);
        assert_eq!(Expr::Pop.as_const_usize(), None);
    }
}
