//! # macross-streamir
//!
//! The StreamIt-style synchronous-data-flow intermediate representation
//! used by the MacroSS reproduction.
//!
//! A stream program is a DAG of actors ([`filter::Filter`]s plus splitters,
//! joiners and sinks — [`graph::Node`]) connected by FIFO tapes
//! ([`graph::Edge`]). Each filter owns `init`/`work` function bodies written
//! in a small typed AST ([`expr::Expr`], [`stmt::Stmt`]) that supports both
//! scalar and vector constructs, so the macro-SIMDizer can rewrite scalar
//! actors into vectorized ones inside the same IR.
//!
//! Programs are composed hierarchically with [`builder::StreamSpec`]
//! (pipelines and split-joins, as in StreamIt) and authored ergonomically
//! with the [`edsl`] module:
//!
//! ```
//! use macross_streamir::builder::StreamSpec;
//! use macross_streamir::edsl::*;
//! use macross_streamir::types::{ScalarTy, Ty};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A source counting 0,1,2,..., a scaling filter, and a sink.
//! let mut src = FilterBuilder::new("src", 0, 0, 1, ScalarTy::F32);
//! let n = src.state("n", Ty::Scalar(ScalarTy::F32));
//! src.work(|b| {
//!     b.push(v(n));
//!     b.set(n, v(n) + 1.0f32);
//! });
//!
//! let mut scale = FilterBuilder::new("scale", 1, 1, 1, ScalarTy::F32);
//! scale.work(|b| {
//!     b.push(pop() * 3.0f32);
//! });
//!
//! let graph = StreamSpec::pipeline(vec![
//!     src.build_spec(),
//!     scale.build_spec(),
//!     StreamSpec::Sink,
//! ])
//! .build()?;
//! assert_eq!(graph.node_count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod edsl;
pub mod expr;
pub mod filter;
pub mod graph;
pub mod param;
pub mod shash;
pub mod stmt;
pub mod types;

pub use expr::{BinOp, ChanId, Expr, Intrinsic, LValue, UnOp, VarId};
pub use filter::{Filter, LocalChan, RegionSpec, VarDecl, VarKind};
pub use graph::{
    AddrGen, Edge, EdgeId, Graph, GraphError, Node, NodeId, Reorder, ReorderSide, SplitKind,
};
pub use param::{ParamDomain, ParamError, ParamRange, RateExpr, Valuation};
pub use shash::{structural_hash, GraphHash};
pub use stmt::Stmt;
pub use types::{ScalarTy, Ty, Value};
