//! Scalar/vector/array types and runtime values for the stream IR.

use std::fmt;

/// Element type of tape items, variables and literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarTy {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ScalarTy {
    /// Size of one element in bytes (used by the memory-traffic model).
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarTy::I32 | ScalarTy::F32 => 4,
            ScalarTy::I64 | ScalarTy::F64 => 8,
        }
    }

    /// True for the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }

    /// The zero value of this type.
    pub fn zero(self) -> Value {
        match self {
            ScalarTy::I32 => Value::I32(0),
            ScalarTy::I64 => Value::I64(0),
            ScalarTy::F32 => Value::F32(0.0),
            ScalarTy::F64 => Value::F64(0.0),
        }
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarTy::I32 => "i32",
            ScalarTy::I64 => "i64",
            ScalarTy::F32 => "f32",
            ScalarTy::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Full type of a variable: scalar, SIMD vector, array, or array of vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A single scalar.
    Scalar(ScalarTy),
    /// A SIMD vector of `width` lanes.
    Vector(ScalarTy, usize),
    /// A fixed-size array of scalars.
    Array(ScalarTy, usize),
    /// A fixed-size array of SIMD vectors (`width` lanes each).
    VectorArray(ScalarTy, usize, usize),
}

impl Ty {
    /// The element type underlying this type.
    pub fn elem(self) -> ScalarTy {
        match self {
            Ty::Scalar(t) | Ty::Vector(t, _) | Ty::Array(t, _) | Ty::VectorArray(t, _, _) => t,
        }
    }

    /// SIMD lane count (1 for scalar kinds).
    pub fn lanes(self) -> usize {
        match self {
            Ty::Scalar(_) | Ty::Array(_, _) => 1,
            Ty::Vector(_, w) | Ty::VectorArray(_, w, _) => w,
        }
    }

    /// True if this is a vector or vector-array type.
    pub fn is_vector(self) -> bool {
        matches!(self, Ty::Vector(_, _) | Ty::VectorArray(_, _, _))
    }

    /// Array length, or `None` for non-array types.
    pub fn array_len(self) -> Option<usize> {
        match self {
            Ty::Array(_, n) | Ty::VectorArray(_, _, n) => Some(n),
            _ => None,
        }
    }

    /// The vectorized counterpart of this type with `width` lanes.
    ///
    /// Scalars become vectors and arrays become vector arrays; already
    /// vectorized types keep their shape but adopt `width`.
    pub fn vectorized(self, width: usize) -> Ty {
        match self {
            Ty::Scalar(t) | Ty::Vector(t, _) => Ty::Vector(t, width),
            Ty::Array(t, n) | Ty::VectorArray(t, _, n) => Ty::VectorArray(t, width, n),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Scalar(t) => write!(f, "{t}"),
            Ty::Vector(t, w) => write!(f, "{t}x{w}"),
            Ty::Array(t, n) => write!(f, "{t}[{n}]"),
            Ty::VectorArray(t, w, n) => write!(f, "{t}x{w}[{n}]"),
        }
    }
}

/// A runtime scalar value.
///
/// Integer semantics are wrapping; integer division by zero yields 0 so the
/// interpreter is total (documented substitute for undefined behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The type of this value.
    pub fn ty(self) -> ScalarTy {
        match self {
            Value::I32(_) => ScalarTy::I32,
            Value::I64(_) => ScalarTy::I64,
            Value::F32(_) => ScalarTy::F32,
            Value::F64(_) => ScalarTy::F64,
        }
    }

    /// Interpret as a boolean: nonzero means true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I32(v) => v != 0,
            Value::I64(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// Convert to `f64` (for diagnostics and approximate comparisons).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    /// Convert to `i64` with truncation.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I32(v) => v as i64,
            Value::I64(v) => v,
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
        }
    }

    /// Cast to another scalar type with C-like semantics.
    pub fn cast(self, ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::I32 => Value::I32(match self {
                Value::I32(v) => v,
                Value::I64(v) => v as i32,
                Value::F32(v) => v as i32,
                Value::F64(v) => v as i32,
            }),
            ScalarTy::I64 => Value::I64(self.as_i64()),
            ScalarTy::F32 => Value::F32(match self {
                Value::I32(v) => v as f32,
                Value::I64(v) => v as f32,
                Value::F32(v) => v,
                Value::F64(v) => v as f32,
            }),
            ScalarTy::F64 => Value::F64(self.as_f64()),
        }
    }

    /// Exact bit-level equality (NaN-safe, unlike `PartialEq` on floats).
    pub fn bits_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::I32(a), Value::I32(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::F32(a), Value::F32(b)) => a.to_bits() == b.to_bits(),
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}L"),
            Value::F32(v) => write!(f, "{v:?}f"),
            Value::F64(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarTy::I32.size_bytes(), 4);
        assert_eq!(ScalarTy::F64.size_bytes(), 8);
        assert!(ScalarTy::F32.is_float());
        assert!(!ScalarTy::I64.is_float());
    }

    #[test]
    fn ty_vectorized_roundtrip() {
        assert_eq!(
            Ty::Scalar(ScalarTy::F32).vectorized(4),
            Ty::Vector(ScalarTy::F32, 4)
        );
        assert_eq!(
            Ty::Array(ScalarTy::I32, 8).vectorized(4),
            Ty::VectorArray(ScalarTy::I32, 4, 8)
        );
        assert_eq!(
            Ty::Vector(ScalarTy::F32, 2).vectorized(8),
            Ty::Vector(ScalarTy::F32, 8)
        );
        assert_eq!(Ty::Vector(ScalarTy::F32, 8).lanes(), 8);
        assert_eq!(Ty::Array(ScalarTy::F32, 3).array_len(), Some(3));
        assert_eq!(Ty::Scalar(ScalarTy::F32).array_len(), None);
    }

    #[test]
    fn value_casts() {
        assert_eq!(Value::F32(2.9).cast(ScalarTy::I32), Value::I32(2));
        assert_eq!(Value::I32(-3).cast(ScalarTy::F64), Value::F64(-3.0));
        assert_eq!(Value::I64(1 << 40).cast(ScalarTy::I32), Value::I32(0));
        assert_eq!(Value::I32(7).cast(ScalarTy::I64), Value::I64(7));
    }

    #[test]
    fn value_truthiness_and_bits() {
        assert!(Value::I32(5).is_truthy());
        assert!(!Value::F32(0.0).is_truthy());
        assert!(Value::F32(f32::NAN).bits_eq(Value::F32(f32::NAN)));
        assert!(!Value::F32(1.0).bits_eq(Value::F64(1.0)));
        assert!(Value::I64(4).bits_eq(Value::I64(4)));
    }

    #[test]
    fn zero_values() {
        assert_eq!(ScalarTy::I32.zero(), Value::I32(0));
        assert_eq!(ScalarTy::F64.zero(), Value::F64(0.0));
        assert_eq!(ScalarTy::F32.zero().ty(), ScalarTy::F32);
    }
}
