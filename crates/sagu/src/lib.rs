//! # macross-sagu
//!
//! The Streaming Address Generation Unit (SAGU) of Section 3.4 of the
//! MacroSS paper, plus the software fallback it replaces.
//!
//! When a vectorized actor writes its output tape with plain *vector*
//! pushes, the data lands in row-major vector order; a scalar consumer must
//! then read the tape in column-major order to recover the original element
//! sequence (and symmetrically for scalar producers feeding vector pops).
//! The SAGU (Figure 9) is a tiny datapath — two small counters, an offset
//! register and a shifter — that generates those column-major addresses for
//! free as an addressing mode. Without it, the compiler must emit the
//! address computation of Figure 8, costing ~6 ALU operations per access.
//!
//! This crate models both:
//!
//! - [`Sagu`]: a cycle-exact register-level model of the Figure-9 datapath.
//! - [`SoftwareAddrGen`]: the Figure-8 instruction sequence, including its
//!   per-access operation count for the cost model.
//! - [`column_major_index`]: the pure mapping both implement, used by the
//!   VM's tape reordering and the property tests that pin all three to each
//!   other.
//!
//! ```
//! use macross_sagu::{Sagu, column_major_index};
//!
//! // A vector actor with push rate 3 on a 4-wide SIMD engine.
//! let mut sagu = Sagu::new(3, 4);
//! let addrs: Vec<u64> = (0..12).map(|_| sagu.next_address()).collect();
//! // Element 1 of the original stream lives at physical slot 4 (row 1,
//! // column 0 of the 3x4 block).
//! assert_eq!(addrs[1], 4);
//! assert_eq!(addrs, (0..12).map(|k| column_major_index(k, 3, 4) as u64).collect::<Vec<_>>());
//! ```

use std::fmt;

/// The pure logical→physical index mapping for a reordered tape block.
///
/// A vectorized actor with per-original-firing rate `rate` on a `sw`-wide
/// SIMD engine lays one block of `rate * sw` elements out as `rate` vectors
/// (row-major). The scalar side's `k`-th logical element of that block is
/// located at row `k % rate`, lane `k / rate`:
///
/// `physical = (k % rate) * sw + k / rate` (within the block), offset by
/// whole blocks of `rate * sw`.
///
/// # Panics
/// Panics if `rate == 0` or `sw == 0`.
pub fn column_major_index(k: usize, rate: usize, sw: usize) -> usize {
    assert!(rate > 0 && sw > 0, "rate and SIMD width must be positive");
    let block = rate * sw;
    let base = (k / block) * block;
    let within = k % block;
    let lane = within / rate;
    let row = within % rate;
    base + row * sw + lane
}

/// Register-level model of the SAGU datapath (Figure 9).
///
/// Internal state is 16-bit as in the paper ("the largest push/pop count
/// for SIMD to scalar conversion across all the kernels was 16K ... allows
/// us to use only 16-bit calculations"), combined with a 64-bit base
/// address at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sagu {
    /// Loaded configuration: the vector actor's per-firing push (or pop)
    /// count. 16-bit in hardware.
    push_count: u16,
    /// Architectural constant: log2 of the SIMD width.
    log2_simd: u16,
    /// Points to the row within the current column.
    base_counter: u16,
    /// Points to the column (lane) being drained.
    stride_counter: u16,
    /// Offsets past all fully-consumed blocks.
    offset_address: u64,
    /// 64-bit base address of the tape buffer.
    base_address: u64,
}

impl Sagu {
    /// Configure the unit for a vector actor with the given per-firing
    /// `rate` and SIMD width `sw` (the "SAGU setup" instruction).
    ///
    /// # Panics
    /// Panics if `sw` is not a power of two, or `rate` exceeds the 16-bit
    /// hardware limit.
    pub fn new(rate: u16, sw: u16) -> Sagu {
        assert!(sw.is_power_of_two(), "SIMD width must be a power of two");
        assert!(rate > 0, "rate must be positive");
        Sagu {
            push_count: rate,
            log2_simd: sw.trailing_zeros() as u16,
            base_counter: 0,
            stride_counter: 0,
            offset_address: 0,
            base_address: 0,
        }
    }

    /// Configure with a nonzero tape base address.
    pub fn with_base_address(rate: u16, sw: u16, base: u64) -> Sagu {
        let mut s = Sagu::new(rate, sw);
        s.base_address = base;
        s
    }

    /// SIMD width this unit was configured for.
    pub fn simd_width(&self) -> u16 {
        1 << self.log2_simd
    }

    /// Generate the effective address for the current access and step the
    /// internal counters (the "SAGU increment" behaviour; transparent
    /// post-increment addressing mode in the paper).
    pub fn next_address(&mut self) -> u64 {
        // Address composition: all 16-bit operations in parallel in
        // hardware, plus the 64-bit base add.
        let offset_value = ((self.base_counter as u64) << self.log2_simd)
            + self.stride_counter as u64
            + self.offset_address;
        let result = offset_value + self.base_address;

        // Counter update (the muxes and zero-detects of Figure 9).
        self.base_counter += 1;
        if self.base_counter == self.push_count {
            self.base_counter = 0;
            self.stride_counter += 1;
            if self.stride_counter == self.simd_width() {
                self.stride_counter = 0;
                self.offset_address += (self.push_count as u64) << self.log2_simd;
            }
        }
        result
    }

    /// Reset counters (performed by the setup instruction).
    pub fn reset(&mut self) {
        self.base_counter = 0;
        self.stride_counter = 0;
        self.offset_address = 0;
    }

    /// Extra cycles per memory access when addressing through the SAGU.
    ///
    /// The paper sizes the datapath so it is "not on the critical path,
    /// allowing the address calculation to take the same amount of time as
    /// other address calculation instructions" — zero overhead when the ISA
    /// exposes it as an addressing mode.
    pub const CYCLES_PER_ACCESS: u64 = 0;

    /// One-time setup cost (load push count, reset counters).
    pub const SETUP_CYCLES: u64 = 2;
}

/// The Figure-8 software fallback: computes the same address sequence with
/// ordinary ALU instructions and tracks how many operations each access
/// costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareAddrGen {
    push_cnt: u64,
    simd_width: u64,
    base_cntr: u64,
    stride_cntr: u64,
    offset_addr: u64,
    base_addr: u64,
    ops_executed: u64,
}

impl SoftwareAddrGen {
    /// Per-access overhead on the modelled Core-i7-like machine: "The
    /// overhead introduced by this code on the Intel Core i7 is at best 6
    /// cycles on top of the memory access overhead."
    pub const CYCLES_PER_ACCESS: u64 = 6;

    /// Create a generator for the given rate and SIMD width.
    ///
    /// # Panics
    /// Panics if `sw` is not a power of two or `rate` is zero.
    pub fn new(rate: u64, sw: u64) -> SoftwareAddrGen {
        assert!(sw.is_power_of_two(), "SIMD width must be a power of two");
        assert!(rate > 0, "rate must be positive");
        SoftwareAddrGen {
            push_cnt: rate,
            simd_width: sw,
            base_cntr: 0,
            stride_cntr: 0,
            offset_addr: 0,
            base_addr: 0,
            ops_executed: 0,
        }
    }

    /// Compute the next effective address, mirroring the Figure-8 code
    /// (restructured to generate the address first, then advance).
    pub fn next_address(&mut self) -> u64 {
        let log2_simd = self.simd_width.trailing_zeros() as u64;
        // OffsetValue = (BaseCntr << LOG2_SIMD) + StrideCntr + OffsetAddr
        let offset_value = (self.base_cntr << log2_simd) + self.stride_cntr + self.offset_addr;
        let result = offset_value + self.base_addr;
        // Counter maintenance: two compares, two increments/resets, and the
        // occasional offset bump — 6 operations on the common path.
        self.ops_executed += Self::CYCLES_PER_ACCESS;
        self.base_cntr += 1;
        if self.base_cntr == self.push_cnt {
            self.base_cntr = 0;
            self.stride_cntr += 1;
            if self.stride_cntr == self.simd_width {
                self.stride_cntr = 0;
                self.offset_addr += self.push_cnt << log2_simd;
            }
        }
        result
    }

    /// Total ALU operations spent on address generation so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }
}

/// Summary of the overhead comparison for a given access count, used by the
/// Figure-12 experiment report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrGenComparison {
    /// Accesses performed.
    pub accesses: u64,
    /// Extra cycles with the SAGU.
    pub sagu_cycles: u64,
    /// Extra cycles with the Figure-8 software sequence.
    pub software_cycles: u64,
}

impl AddrGenComparison {
    /// Compare the two mechanisms for `accesses` reordered accesses.
    pub fn for_accesses(accesses: u64) -> AddrGenComparison {
        AddrGenComparison {
            accesses,
            sagu_cycles: Sagu::SETUP_CYCLES + accesses * Sagu::CYCLES_PER_ACCESS,
            software_cycles: accesses * SoftwareAddrGen::CYCLES_PER_ACCESS,
        }
    }

    /// Cycles saved by the SAGU.
    pub fn savings(&self) -> i64 {
        self.software_cycles as i64 - self.sagu_cycles as i64
    }
}

impl fmt::Display for AddrGenComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses: SAGU {} cycles vs software {} cycles (saves {})",
            self.accesses,
            self.sagu_cycles,
            self.software_cycles,
            self.savings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_mapping_small_block() {
        // rate 2, sw 4: block of 8. Logical order of a consumer reading the
        // outputs of 4 parallel executions each pushing 2:
        // exec0: phys 0, 4; exec1: phys 1, 5; exec2: 2, 6; exec3: 3, 7.
        let got: Vec<usize> = (0..8).map(|k| column_major_index(k, 2, 4)).collect();
        assert_eq!(got, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn column_major_is_a_permutation_per_block() {
        for &(rate, sw) in &[(1usize, 4usize), (3, 4), (4, 4), (5, 8), (7, 2)] {
            let block = rate * sw;
            let mut seen = vec![false; block];
            for k in 0..block {
                let p = column_major_index(k, rate, sw);
                assert!(p < block);
                assert!(!seen[p], "duplicate physical index {p}");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn column_major_advances_blocks() {
        // Second block is the first shifted by block size.
        let block = 3 * 4;
        for k in 0..block {
            assert_eq!(
                column_major_index(k + block, 3, 4),
                column_major_index(k, 3, 4) + block
            );
        }
    }

    #[test]
    fn sagu_matches_pure_mapping() {
        let mut sagu = Sagu::new(3, 4);
        for k in 0..60 {
            assert_eq!(
                sagu.next_address(),
                column_major_index(k, 3, 4) as u64,
                "at k={k}"
            );
        }
    }

    #[test]
    fn software_matches_sagu() {
        let mut sagu = Sagu::new(5, 8);
        let mut sw = SoftwareAddrGen::new(5, 8);
        for _ in 0..200 {
            assert_eq!(sagu.next_address(), sw.next_address());
        }
        assert_eq!(sw.ops_executed(), 200 * SoftwareAddrGen::CYCLES_PER_ACCESS);
    }

    #[test]
    fn sagu_base_address_offsets_results() {
        let mut sagu = Sagu::with_base_address(2, 4, 1000);
        assert_eq!(sagu.next_address(), 1000);
        assert_eq!(sagu.next_address(), 1004);
    }

    #[test]
    fn sagu_reset_restarts_sequence() {
        let mut sagu = Sagu::new(2, 4);
        let first: Vec<u64> = (0..8).map(|_| sagu.next_address()).collect();
        sagu.reset();
        let second: Vec<u64> = (0..8).map(|_| sagu.next_address()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn sixteen_k_rate_supported() {
        // "the largest push/pop count ... was 16K" — must fit the 16-bit
        // datapath.
        let mut sagu = Sagu::new(16 * 1024, 4);
        let mut sw = SoftwareAddrGen::new(16 * 1024, 4);
        for _ in 0..100_000 {
            assert_eq!(sagu.next_address(), sw.next_address());
        }
    }

    #[test]
    fn comparison_favors_sagu() {
        let c = AddrGenComparison::for_accesses(1000);
        assert!(c.savings() > 0);
        assert_eq!(c.software_cycles, 6000);
        assert_eq!(c.sagu_cycles, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_width_rejected() {
        let _ = Sagu::new(3, 6);
    }
}
