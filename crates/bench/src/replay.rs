//! One-command reproduction of failing supervised runs.
//!
//! A fault-injection campaign (the `fault-matrix` CI job, or a local run
//! with `--features fault-inject`) that provokes a failure writes a
//! [`ReplayBundle`] next to its other artifacts. This module turns a
//! bundle back into the identical run: same benchmark graph, same
//! SIMDization, same node-to-core assignment, same engine, same fault
//! plan — and checks that the failures observed on replay match the ones
//! the bundle recorded.
//!
//! The `replay_fault` binary is the command-line face:
//!
//! ```text
//! cargo run -p macross-bench --features fault-inject --bin replay_fault -- REPLAY_FMRadio_7.json
//! ```

use macross::driver::{macro_simdize, placement, SimdizeOptions};
use macross_benchsuite::by_name;
use macross_runtime::{
    run_supervised, FaultPlan, ReplayBundle, StageFailure, SupervisedRun, SupervisorOptions,
};
use macross_sdf::Schedule;
use macross_telemetry::TraceSession;
use macross_vm::{ExecMode, Machine};
use std::time::Duration;

/// Resolve a machine description by its serialized name.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    match name {
        "core_i7_sse4" => Some(Machine::core_i7()),
        "core_i7_sse4_sagu" => Some(Machine::core_i7_with_sagu()),
        _ => None,
    }
}

/// Stable serialized name of an [`ExecMode`].
pub fn exec_mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Bytecode => "bytecode",
        ExecMode::BytecodeNoFuse => "bytecode-nofuse",
        ExecMode::TreeWalk => "treewalk",
    }
}

/// Resolve an [`ExecMode`] from its serialized name.
pub fn exec_mode_by_name(name: &str) -> Option<ExecMode> {
    match name {
        "bytecode" => Some(ExecMode::Bytecode),
        "bytecode-nofuse" => Some(ExecMode::BytecodeNoFuse),
        "treewalk" => Some(ExecMode::TreeWalk),
        _ => None,
    }
}

/// The failures of a run in the bundle's `expect` form.
pub fn failure_signature(failures: &[StageFailure]) -> Vec<(usize, u64, String)> {
    failures
        .iter()
        .map(|f| (f.stage, f.firing, f.cause.label().to_string()))
        .collect()
}

/// Build the bundle describing a failing (or to-be-failed) run, with
/// `expect` filled from the observed failures.
#[allow(clippy::too_many_arguments)]
pub fn make_bundle(
    benchmark: &str,
    simdized: bool,
    machine: &Machine,
    mode: ExecMode,
    assignment: &[u32],
    iters: u64,
    watchdog: Option<Duration>,
    plan: FaultPlan,
    failures: &[StageFailure],
) -> ReplayBundle {
    ReplayBundle {
        benchmark: benchmark.to_string(),
        simdized,
        machine: machine.name.clone(),
        exec_mode: exec_mode_name(mode).to_string(),
        assignment: assignment.to_vec(),
        iters,
        watchdog_ms: watchdog.map(|d| d.as_millis() as u64).unwrap_or(0),
        plan,
        expect: failure_signature(failures),
    }
}

/// What [`run_bundle`] observed.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The replayed run (partial output + report included).
    pub run: SupervisedRun,
    /// The replay's failures in `expect` form.
    pub observed: Vec<(usize, u64, String)>,
    /// True when the observed failures match the bundle's `expect` list
    /// exactly (same stages, same firing indices, same causes, same
    /// order).
    pub reproduced: bool,
}

/// Re-execute the run a bundle describes and compare its failures against
/// the recorded ones.
///
/// # Errors
/// A human-readable message when the bundle references an unknown
/// benchmark/machine/engine, the assignment does not fit the rebuilt
/// graph, or the runtime rejects the configuration.
pub fn run_bundle(bundle: &ReplayBundle) -> Result<ReplayOutcome, String> {
    let bench = by_name(&bundle.benchmark)
        .ok_or_else(|| format!("unknown benchmark {:?}", bundle.benchmark))?;
    let machine = machine_by_name(&bundle.machine)
        .ok_or_else(|| format!("unknown machine {:?}", bundle.machine))?;
    let mode = exec_mode_by_name(&bundle.exec_mode)
        .ok_or_else(|| format!("unknown exec mode {:?}", bundle.exec_mode))?;
    let graph = (bench.build)();
    let (graph, schedule) = if bundle.simdized {
        let simd = macro_simdize(&graph, &machine, &SimdizeOptions::all())
            .map_err(|e| format!("simdize failed: {e}"))?;
        (simd.graph, simd.schedule)
    } else {
        let schedule = Schedule::compute(&graph).map_err(|e| format!("schedule failed: {e}"))?;
        (graph, schedule)
    };
    if bundle.assignment.len() != graph.node_count() {
        return Err(format!(
            "assignment has {} entries for a graph of {} nodes — bundle built \
             against a different benchmark revision?",
            bundle.assignment.len(),
            graph.node_count()
        ));
    }
    let opts = SupervisorOptions {
        mode,
        watchdog: (bundle.watchdog_ms > 0).then(|| Duration::from_millis(bundle.watchdog_ms)),
        stage_timeouts: Vec::new(),
        plan: bundle.plan.clone(),
    };
    let run = run_supervised(
        &graph,
        &schedule,
        &machine,
        &bundle.assignment,
        bundle.iters,
        &opts,
        &TraceSession::disabled(),
    )
    .map_err(|e| format!("runtime rejected the bundle: {e}"))?;
    let observed = failure_signature(&run.report.failures);
    let reproduced = observed == bundle.expect;
    Ok(ReplayOutcome {
        run,
        observed,
        reproduced,
    })
}

/// The placement a fault campaign should record into its bundles: the
/// same LPT the driver uses, re-exported here so campaign code and replay
/// agree by construction.
pub fn campaign_placement(
    graph: &macross_streamir::graph::Graph,
    machine: &Machine,
    cores: usize,
) -> Result<(macross_streamir::graph::Graph, Schedule, Vec<u32>), String> {
    let simd = macro_simdize(graph, machine, &SimdizeOptions::all())
        .map_err(|e| format!("simdize failed: {e}"))?;
    let assignment = placement(&simd, machine, cores);
    Ok((simd.graph, simd.schedule, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_lookups_roundtrip() {
        for mode in [
            ExecMode::Bytecode,
            ExecMode::BytecodeNoFuse,
            ExecMode::TreeWalk,
        ] {
            assert_eq!(exec_mode_by_name(exec_mode_name(mode)), Some(mode));
        }
        for m in [Machine::core_i7(), Machine::core_i7_with_sagu()] {
            assert_eq!(machine_by_name(&m.name).unwrap().name, m.name);
        }
        assert!(machine_by_name("pdp11").is_none());
        assert!(exec_mode_by_name("abacus").is_none());
    }

    #[test]
    fn clean_bundle_replays_clean() {
        // An empty fault plan must replay to a failure-free run whether or
        // not fault injection is compiled in.
        let machine = Machine::core_i7();
        let bench = by_name("FMRadio").unwrap();
        let graph = (bench.build)();
        let (graph_s, _, assignment) = campaign_placement(&graph, &machine, 2).unwrap();
        let bundle = make_bundle(
            "FMRadio",
            true,
            &machine,
            ExecMode::default(),
            &assignment,
            3,
            None,
            FaultPlan::none(),
            &[],
        );
        assert_eq!(bundle.assignment.len(), graph_s.node_count());
        let outcome = run_bundle(&bundle).unwrap();
        assert!(outcome.reproduced);
        assert!(outcome.run.completed);
        assert!(outcome.observed.is_empty());
    }

    #[test]
    fn bundle_errors_name_the_problem() {
        let mut bundle = make_bundle(
            "FMRadio",
            false,
            &Machine::core_i7(),
            ExecMode::default(),
            &[0],
            1,
            None,
            FaultPlan::none(),
            &[],
        );
        bundle.benchmark = "NoSuchBench".into();
        assert!(run_bundle(&bundle).unwrap_err().contains("NoSuchBench"));
        bundle.benchmark = "FMRadio".into();
        bundle.machine = "pdp11".into();
        assert!(run_bundle(&bundle).unwrap_err().contains("pdp11"));
        bundle.machine = "core_i7_sse4".into();
        assert!(run_bundle(&bundle)
            .unwrap_err()
            .contains("different benchmark revision"));
    }
}
