//! # macross-bench
//!
//! The experiment harness: one reusable routine per figure of the paper's
//! evaluation (Section 5), shared by the command-line binaries
//! (`fig10`..`fig13`), the Criterion benches, and the integration tests
//! that assert the paper's result *shapes*.

pub mod replay;

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_autovec::{autovectorize_graph, AutovecConfig};
use macross_benchsuite::Benchmark;
use macross_multicore::{figure13_point, CommModel, Figure13Point};
use macross_sdf::Schedule;
use macross_streamir::graph::Graph;
use macross_telemetry::TraceSession;
use macross_vm::{run_scheduled, Machine, RunResult};
use std::path::PathBuf;

pub use macross_telemetry::report::{BenchReport, BenchRow};

// ---------------------------------------------------------------------------
// Machine-readable reports and trace export for the fig* binaries.

/// A per-iteration (or any other) ratio that degrades to 0.0 instead of
/// NaN/inf when the denominator is zero or either side is non-finite.
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 || !num.is_finite() || !den.is_finite() {
        0.0
    } else {
        num / den
    }
}

/// Whether bench binaries should write `BENCH_<name>.json`: always when
/// built with the `telemetry` feature, or on demand via the
/// `MACROSS_BENCH_JSON` environment variable.
pub fn report_emission_enabled() -> bool {
    cfg!(feature = "telemetry") || std::env::var_os("MACROSS_BENCH_JSON").is_some()
}

/// Output directory for reports and traces: `MACROSS_BENCH_DIR`, default
/// the current directory.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("MACROSS_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Write `report` as `BENCH_<name>.json` into [`bench_dir`] when emission
/// is enabled (silent no-op otherwise). Emission failures are reported on
/// stderr but never fail the benchmark itself.
pub fn emit_report(report: &BenchReport) {
    if !report_emission_enabled() {
        return;
    }
    match report.write_to_dir(&bench_dir()) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", report.file_name()),
    }
}

/// Drain `session` into a Chrome `trace_event` timeline and write it as
/// `TRACE_<name>.json` into [`bench_dir`]. No-op for a disabled session
/// (in particular, always a no-op without the `telemetry` feature).
pub fn emit_chrome_trace(name: &str, session: &TraceSession, node_names: &[String]) {
    if !session.enabled() {
        return;
    }
    let events = session.drain();
    let doc = macross_telemetry::chrome::chrome_trace(&events, node_names);
    let path = bench_dir().join(format!("TRACE_{name}.json"));
    match std::fs::write(&path, doc.to_string_compact()) {
        Ok(()) => eprintln!(
            "wrote {} ({} events, {} dropped) — open in chrome://tracing or ui.perfetto.dev",
            path.display(),
            events.len(),
            session.dropped()
        ),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Display names of a graph's nodes, indexed by node id (for firing-span
/// labels in a Chrome trace).
pub fn node_names(graph: &Graph) -> Vec<String> {
    graph.node_ids().map(|id| graph.node(id).name()).collect()
}

/// Align two scheduled programs to identical source throughput and run
/// each on its own machine description.
pub fn run_aligned(
    (g1, s1, m1): (&Graph, &Schedule, &Machine),
    (g2, s2, m2): (&Graph, &Schedule, &Machine),
    iters: u64,
) -> (RunResult, RunResult) {
    let src1 = g1
        .node_ids()
        .find(|&id| g1.in_edges(id).is_empty())
        .expect("source");
    let src2 = g2
        .node_ids()
        .find(|&id| g2.in_edges(id).is_empty())
        .expect("source");
    let (r1, r2) = (s1.reps[src1.0 as usize], s2.reps[src2.0 as usize]);
    let l = macross_sdf::lcm(r1, r2);
    let mut s1 = s1.clone();
    let mut s2 = s2.clone();
    s1.scale(l / r1);
    s2.scale(l / r2);
    (
        run_scheduled(g1, &s1, m1, iters).expect("run failed"),
        run_scheduled(g2, &s2, m2, iters).expect("run failed"),
    )
}

/// One benchmark's row of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Speedup of host-compiler auto-vectorization over scalar.
    pub autovec: f64,
    /// Speedup of macro-SIMDization over scalar.
    pub macro_simd: f64,
    /// Speedup of macro-SIMDization plus auto-vectorization over scalar.
    pub macro_plus_auto: f64,
}

/// Figure 10: scalar vs. auto-vectorized vs. macro-SIMDized vs. both,
/// under one host-compiler model.
pub fn figure10_row(b: &Benchmark, machine: &Machine, host: &AutovecConfig) -> Fig10Row {
    let g = (b.build)();
    let sched = Schedule::compute(&g).expect("schedule");

    // Host auto-vectorization of the lowered scalar program (same
    // schedule: the host compiler cannot touch it).
    let mut av = g.clone();
    autovectorize_graph(&mut av, host);

    // Macro-SIMDization, and macro + host autovec on the residue.
    let simd = macro_simdize(&g, machine, &SimdizeOptions::all()).expect("simdize");
    let mut both_graph = simd.graph.clone();
    autovectorize_graph(&mut both_graph, host);

    let m = (machine, machine);
    let (scalar, auto) = run_aligned((&g, &sched, m.0), (&av, &sched, m.1), b.iters);
    let (scalar2, macro_run) = run_aligned(
        (&g, &sched, m.0),
        (&simd.graph, &simd.schedule, m.1),
        b.iters,
    );
    let (scalar3, both_run) = run_aligned(
        (&g, &sched, m.0),
        (&both_graph, &simd.schedule, m.1),
        b.iters,
    );

    // Each pair is throughput-aligned internally; normalize per scalar run.
    Fig10Row {
        name: b.name,
        autovec: scalar.total_cycles() as f64 / auto.total_cycles() as f64,
        macro_simd: scalar2.total_cycles() as f64 / macro_run.total_cycles() as f64,
        macro_plus_auto: scalar3.total_cycles() as f64 / both_run.total_cycles() as f64,
    }
}

/// One benchmark's bar of Figure 11: % improvement of full vertical
/// SIMDization over single-actor-only SIMDization.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Percent improvement (0 when vertical finds nothing).
    pub improvement_pct: f64,
}

/// Figure 11: vertical vs. single-actor-only macro-SIMDization. Both
/// configurations disable horizontal and the tape optimizations so the
/// comparison isolates vertical fusion, as in the paper.
pub fn figure11_row(b: &Benchmark, machine: &Machine) -> Fig11Row {
    let g = (b.build)();
    let single = macro_simdize(&g, machine, &SimdizeOptions::single_only()).expect("single");
    let vertical_opts = SimdizeOptions {
        horizontal: false,
        permute_opt: false,
        reorder_opt: false,
        ..SimdizeOptions::all()
    };
    let full = macro_simdize(&g, machine, &vertical_opts).expect("vertical");
    let (a, c) = run_aligned(
        (&single.graph, &single.schedule, machine),
        (&full.graph, &full.schedule, machine),
        b.iters,
    );
    Fig11Row {
        name: b.name,
        improvement_pct: (a.total_cycles() as f64 / c.total_cycles() as f64 - 1.0) * 100.0,
    }
}

/// One benchmark's bar of Figure 12: % improvement from the SAGU.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Percent improvement of macro-SIMD-with-SAGU over macro-SIMD.
    pub improvement_pct: f64,
}

/// Figure 12: macro-SIMDized code on the plain machine vs. macro-SIMDized
/// code compiled for (and run on) the SAGU-equipped machine.
pub fn figure12_row(b: &Benchmark) -> Fig12Row {
    let base_machine = Machine::core_i7();
    let sagu_machine = Machine::core_i7_with_sagu();
    let g = (b.build)();
    let base = macro_simdize(&g, &base_machine, &SimdizeOptions::all()).expect("base");
    let sagu = macro_simdize(&g, &sagu_machine, &SimdizeOptions::all()).expect("sagu");
    let (a, c) = run_aligned(
        (&base.graph, &base.schedule, &base_machine),
        (&sagu.graph, &sagu.schedule, &sagu_machine),
        b.iters,
    );
    Fig12Row {
        name: b.name,
        improvement_pct: (a.total_cycles() as f64 / c.total_cycles() as f64 - 1.0) * 100.0,
    }
}

/// Figure 13 rows for one benchmark at 2 and 4 cores.
pub fn figure13_rows(b: &Benchmark, machine: &Machine) -> (Figure13Point, Figure13Point) {
    let g = (b.build)();
    let comm = CommModel::default();
    let p2 = figure13_point(&g, machine, 2, &comm, b.iters.min(8)).expect("2 cores");
    let p4 = figure13_point(&g, machine, 4, &comm, b.iters.min(8)).expect("4 cores");
    (p2, p4)
}

/// Geometric mean.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    (sum / n.max(1) as f64).exp()
}

/// Render a simple aligned table for the binaries' stdout.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use macross_benchsuite::by_name;

    #[test]
    fn fig10_shapes_on_a_sample() {
        let b = by_name("Serpent").unwrap();
        let machine = Machine::core_i7();
        let gcc = figure10_row(&b, &machine, &AutovecConfig::gcc_like(4));
        assert!(
            gcc.macro_simd > gcc.autovec,
            "macro {} vs auto {}",
            gcc.macro_simd,
            gcc.autovec
        );
        assert!(gcc.macro_simd > 1.0);
    }

    #[test]
    fn fig11_matrix_mult_block_wins_big() {
        let machine = Machine::core_i7();
        let row = figure11_row(&by_name("MatrixMultBlock").unwrap(), &machine);
        assert!(row.improvement_pct > 20.0, "got {}", row.improvement_pct);
        let fb = figure11_row(&by_name("FilterBank").unwrap(), &machine);
        assert!(fb.improvement_pct < row.improvement_pct);
    }

    #[test]
    fn fig12_sagu_never_hurts() {
        let row = figure12_row(&by_name("MatrixMult").unwrap());
        assert!(row.improvement_pct >= -0.5, "got {}", row.improvement_pct);
    }

    #[test]
    fn safe_ratio_guards_degenerate_denominators() {
        assert_eq!(safe_ratio(10.0, 2.0), 5.0);
        assert_eq!(safe_ratio(10.0, 0.0), 0.0);
        assert_eq!(safe_ratio(f64::NAN, 2.0), 0.0);
        assert_eq!(safe_ratio(10.0, f64::INFINITY), 0.0);
        assert_eq!(safe_ratio(10.0, -0.0), 0.0);
    }

    #[test]
    fn geomean_is_geometric() {
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&["a", "bench"], &[vec!["1".into(), "x".into()]]);
        assert!(t.contains("bench"));
        assert!(t.lines().count() == 3);
    }
}

/// The Equation-1 scaling ablation (DESIGN.md): compare the paper's
/// minimal repetition-vector scaling against a naive scale-everything-by-
/// `SW` policy, in steady-state latency (total firings per iteration) and
/// aggregate tape buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingAblation {
    /// Equation-1 factor the driver chose.
    pub minimal_factor: u64,
    /// The naive factor (`SW`).
    pub naive_factor: u64,
    /// Firings per steady iteration under minimal scaling.
    pub minimal_firings: u64,
    /// Firings per steady iteration under naive scaling.
    pub naive_firings: u64,
    /// Sum of tape capacities (elements) under minimal scaling.
    pub minimal_buffer_elems: u64,
    /// Sum of tape capacities under naive scaling.
    pub naive_buffer_elems: u64,
}

/// Run the scaling ablation for one benchmark.
///
/// Both policies are applied to the *scalar* steady state (the vectorized
/// actors' later divide-by-`SW` affects both identically, so comparing
/// the undivided schedules is faithful): Equation 1 multiplies by the
/// minimal `M`, the naive policy always multiplies by `SW`.
pub fn scaling_ablation(b: &Benchmark, machine: &Machine) -> ScalingAblation {
    let g = (b.build)();
    let simd = macro_simdize(&g, machine, &SimdizeOptions::all()).expect("simdize");
    let m = simd.report.scale_factor.max(1);
    let sw = machine.simd_width as u64;

    let base = Schedule::compute(&g).expect("schedule");
    let mut minimal = base.clone();
    minimal.scale(m);
    let mut naive = base;
    naive.scale(sw);
    let min_bufs = macross_sdf::buffer_requirements(&g, &minimal);
    let naive_bufs = macross_sdf::buffer_requirements(&g, &naive);
    ScalingAblation {
        minimal_factor: m,
        naive_factor: sw,
        minimal_firings: minimal.total_firings(),
        naive_firings: naive.total_firings(),
        minimal_buffer_elems: min_bufs.iter().map(|b| b.capacity).sum(),
        naive_buffer_elems: naive_bufs.iter().map(|b| b.capacity).sum(),
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use macross_benchsuite::by_name;

    #[test]
    fn minimal_scaling_never_exceeds_naive() {
        let machine = Machine::core_i7();
        for name in ["FMRadio", "DCT", "MatrixMult", "TDE"] {
            let r = scaling_ablation(&by_name(name).unwrap(), &machine);
            assert!(r.minimal_factor <= r.naive_factor, "{name}: {r:?}");
            assert!(r.minimal_firings <= r.naive_firings, "{name}: {r:?}");
            assert!(
                r.minimal_buffer_elems <= r.naive_buffer_elems,
                "{name}: {r:?}"
            );
        }
    }

    /// At least one benchmark must genuinely profit from Equation 1 (i.e.
    /// the minimal factor is strictly smaller than SW), or the machinery
    /// would be pointless.
    #[test]
    fn equation1_is_sometimes_strictly_better() {
        let machine = Machine::core_i7();
        let better = macross_benchsuite::all().iter().any(|b| {
            let r = scaling_ablation(b, &machine);
            r.minimal_factor < r.naive_factor && r.minimal_buffer_elems < r.naive_buffer_elems
        });
        assert!(better, "no benchmark profits from minimal scaling");
    }
}

// ---------------------------------------------------------------------------
// Wall-clock timing harness for the `harness = false` benches.

/// Format a nanosecond count with a human unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Run `f` twice for warm-up, then `samples` timed rounds, and print the
/// median and minimum wall-clock time under `label`. The return value is
/// passed through [`std::hint::black_box`] so the work is not elided.
pub fn time_case<T>(label: &str, samples: usize, mut f: impl FnMut() -> T) {
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut ns: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    println!(
        "{label:<48} median {:>10}  min {:>10}  ({} samples)",
        fmt_ns(ns[ns.len() / 2]),
        fmt_ns(ns[0]),
        ns.len()
    );
}

// ---------------------------------------------------------------------------
// Measured (threaded runtime) vs. modeled (analytic makespan) comparison.

/// One benchmark at one core count: the analytic multicore estimate next
/// to what the threaded runtime actually measured.
#[derive(Debug)]
pub struct MeasuredVsModeled {
    /// Benchmark name.
    pub name: String,
    /// Worker-thread count.
    pub cores: usize,
    /// The LPT partition used for both columns.
    pub partition: macross_multicore::Partition,
    /// Analytic per-iteration makespan (compute + communication model).
    pub modeled: macross_multicore::CoreEstimate,
    /// What the threaded runtime observed.
    pub report: macross_runtime::RuntimeReport,
}

/// Partition `graph` over `cores` with LPT, run `iters` steady iterations
/// on the threaded runtime, and pair the measurement with the analytic
/// estimate for the same placement.
pub fn measured_vs_modeled(
    name: &str,
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    cores: usize,
    iters: u64,
) -> MeasuredVsModeled {
    measured_vs_modeled_traced(
        name,
        graph,
        schedule,
        machine,
        cores,
        iters,
        &TraceSession::disabled(),
    )
}

/// [`measured_vs_modeled`] recording the threaded run into `session`
/// (pair with [`emit_chrome_trace`] to export the timeline).
#[allow(clippy::too_many_arguments)]
pub fn measured_vs_modeled_traced(
    name: &str,
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    cores: usize,
    iters: u64,
    session: &TraceSession,
) -> MeasuredVsModeled {
    let seq = run_scheduled(graph, schedule, machine, iters.min(2)).expect("sequential profile");
    let partition = macross_multicore::Partition::lpt(graph, schedule, &seq.node_cycles, cores);
    let modeled = macross_multicore::estimate(
        graph,
        schedule,
        &seq.node_cycles,
        &partition.assignment,
        cores,
        &CommModel::default(),
    );
    let run = macross_runtime::run_threaded_traced(
        graph,
        schedule,
        machine,
        &partition.assignment,
        iters,
        session,
    )
    .expect("threaded run");
    MeasuredVsModeled {
        name: name.to_string(),
        cores,
        partition,
        modeled,
        report: run.report,
    }
}

/// One benchmark under the cost-model planner at one worker budget: the
/// plan's modelled verdict next to what the threaded runtime measured
/// for the *planned* placement (fusion, fission, and all).
#[derive(Debug)]
pub struct PlannedVsModeled {
    /// Benchmark name.
    pub name: String,
    /// Worker budget the planner was given (it may use fewer cores).
    pub workers: usize,
    /// The plan: placement plus modelled makespan/speedup.
    pub plan: macross_multicore::PlacementPlan,
    /// What the threaded runtime observed running that placement.
    pub report: macross_runtime::RuntimeReport,
}

/// Profile `graph` sequentially for per-node cycles, ask the cost-model
/// planner for a placement over `workers` cores using `comm`, and run
/// the planned placement for `iters` steady iterations.
pub fn planned_vs_modeled(
    name: &str,
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    workers: usize,
    iters: u64,
    comm: &CommModel,
) -> PlannedVsModeled {
    planned_vs_modeled_traced(
        name,
        graph,
        schedule,
        machine,
        workers,
        iters,
        comm,
        &TraceSession::disabled(),
    )
}

/// [`planned_vs_modeled`] recording the threaded run into `session`.
#[allow(clippy::too_many_arguments)]
pub fn planned_vs_modeled_traced(
    name: &str,
    graph: &Graph,
    schedule: &Schedule,
    machine: &Machine,
    workers: usize,
    iters: u64,
    comm: &CommModel,
    session: &TraceSession,
) -> PlannedVsModeled {
    let seq = run_scheduled(graph, schedule, machine, iters.min(2)).expect("sequential profile");
    let plan = macross_multicore::plan_placement(graph, schedule, &seq.node_cycles, workers, comm);
    let run = macross_runtime::run_threaded_placed_traced_mode(
        graph,
        schedule,
        machine,
        &plan.placement,
        iters,
        session,
        Default::default(),
    )
    .expect("planned run");
    PlannedVsModeled {
        name: name.to_string(),
        workers,
        plan,
        report: run.report,
    }
}

#[cfg(test)]
mod measured_tests {
    use super::*;
    use macross_benchsuite::by_name;

    #[test]
    fn measured_vs_modeled_is_consistent() {
        let machine = Machine::core_i7();
        let b = by_name("FMRadio").unwrap();
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        for cores in [1usize, 2, 4] {
            let m = measured_vs_modeled(b.name, &g, &sched, &machine, cores, 4);
            assert_eq!(m.report.cores, cores.min(m.report.cores).max(1));
            assert_eq!(m.report.cut_edges, m.partition.cut_edges.len());
            assert!(m.report.wall_nanos > 0);
            assert!(m.modeled.makespan > 0);
            if cores == 1 {
                assert_eq!(m.report.cut_edges, 0);
                assert_eq!(m.report.ring_traffic(), 0);
            }
        }
    }

    #[test]
    fn planned_vs_modeled_is_consistent() {
        let machine = Machine::core_i7();
        let b = by_name("FilterBank").unwrap();
        let g = (b.build)();
        let sched = Schedule::compute(&g).unwrap();
        let comm = CommModel::default();
        for workers in [1usize, 2, 4] {
            let m = planned_vs_modeled(b.name, &g, &sched, &machine, workers, 4, &comm);
            assert!(m.plan.cores_used <= workers.max(1));
            assert_eq!(m.report.cut_edges, m.plan.cut_edges);
            // The planner never commits to a placement it models slower
            // than sequential.
            assert!(m.plan.modelled_speedup() >= 1.0 - 1e-9);
            assert!(m.report.wall_nanos > 0);
            if m.plan.cores_used == 1 {
                assert_eq!(m.report.ring_traffic(), 0);
            }
        }
    }
}
