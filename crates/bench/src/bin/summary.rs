//! One-shot summary: regenerates every figure's headline numbers plus the
//! Equation-1 scaling ablation, in one run. Useful for refreshing
//! EXPERIMENTS.md.

use macross_autovec::AutovecConfig;
use macross_bench::{
    figure10_row, figure11_row, figure12_row, figure13_rows, geomean, render_table,
    scaling_ablation,
};
use macross_vm::Machine;

fn main() {
    let machine = Machine::core_i7();
    let suite = macross_benchsuite::all();

    println!("=== MacroSS reproduction: full experiment summary ===\n");

    // Figure 10 geomeans.
    let mut gcc_auto = Vec::new();
    let mut icc_auto = Vec::new();
    let mut macro_v = Vec::new();
    for b in &suite {
        gcc_auto.push(figure10_row(b, &machine, &AutovecConfig::gcc_like(4)).autovec);
        let icc = figure10_row(b, &machine, &AutovecConfig::icc_like(4));
        icc_auto.push(icc.autovec);
        macro_v.push(icc.macro_simd);
    }
    println!("Figure 10 (geomean speedup over scalar):");
    println!(
        "  GCC-like autovec   {:.2}x   (paper: 'unimpressive')",
        geomean(gcc_auto)
    );
    println!(
        "  ICC-like autovec   {:.2}x   (paper: 1.34x)",
        geomean(icc_auto)
    );
    println!(
        "  macro-SIMD         {:.2}x   (paper: 2.07x)\n",
        geomean(macro_v)
    );

    // Figure 11 average.
    let f11: Vec<f64> = suite
        .iter()
        .map(|b| figure11_row(b, &machine).improvement_pct)
        .collect();
    println!(
        "Figure 11 (vertical over single-actor): avg {:.1}%  max {:.1}%   (paper: 40% avg, 114% max)\n",
        f11.iter().sum::<f64>() / f11.len() as f64,
        f11.iter().cloned().fold(0.0, f64::max)
    );

    // Figure 12 average.
    let f12: Vec<f64> = suite
        .iter()
        .map(|b| figure12_row(b).improvement_pct)
        .collect();
    println!(
        "Figure 12 (SAGU benefit): avg {:.1}%   (paper: 8.1%)\n",
        f12.iter().sum::<f64>() / f12.len() as f64
    );

    // Figure 13 geomeans.
    let mut c2 = Vec::new();
    let mut c4 = Vec::new();
    let mut c2s = Vec::new();
    let mut c4s = Vec::new();
    for b in &suite {
        let (p2, p4) = figure13_rows(b, &machine);
        c2.push(p2.multicore);
        c4.push(p4.multicore);
        c2s.push(p2.multicore_simd);
        c4s.push(p4.multicore_simd);
    }
    println!("Figure 13 (geomean speedup over 1-core scalar):");
    println!("  2 cores            {:.2}x   (paper: 1.28x)", geomean(c2));
    println!("  4 cores            {:.2}x   (paper: 1.85x)", geomean(c4));
    println!("  2 cores + SIMD     {:.2}x   (paper: 2.03x)", geomean(c2s));
    println!(
        "  4 cores + SIMD     {:.2}x   (paper: 3.17x)\n",
        geomean(c4s)
    );

    // Scaling ablation table.
    println!("Equation-1 scaling ablation (minimal vs naive scale-by-SW):");
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|b| {
            let r = scaling_ablation(b, &machine);
            vec![
                b.name.to_string(),
                format!("x{}", r.minimal_factor),
                format!("x{}", r.naive_factor),
                format!("{}", r.minimal_buffer_elems),
                format!("{}", r.naive_buffer_elems),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "Eq1 factor",
                "naive",
                "buf elems (Eq1)",
                "buf elems (naive)"
            ],
            &rows
        )
    );
}
