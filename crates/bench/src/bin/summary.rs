//! One-shot summary: regenerates every figure's headline numbers plus the
//! Equation-1 scaling ablation, in one run. Useful for refreshing
//! EXPERIMENTS.md.

use macross_autovec::AutovecConfig;
use macross_bench::{
    emit_report, figure10_row, figure11_row, figure12_row, figure13_rows, geomean, render_table,
    scaling_ablation, BenchReport, BenchRow,
};
use macross_vm::Machine;

fn main() {
    let machine = Machine::core_i7();
    let suite = macross_benchsuite::all();
    let mut report = BenchReport::new("summary", &machine.name, machine.simd_width as u64);

    println!("=== MacroSS reproduction: full experiment summary ===\n");

    // Figure 10 geomeans.
    let mut gcc_auto = Vec::new();
    let mut icc_auto = Vec::new();
    let mut macro_v = Vec::new();
    for b in &suite {
        gcc_auto.push(figure10_row(b, &machine, &AutovecConfig::gcc_like(4)).autovec);
        let icc = figure10_row(b, &machine, &AutovecConfig::icc_like(4));
        icc_auto.push(icc.autovec);
        macro_v.push(icc.macro_simd);
    }
    println!("Figure 10 (geomean speedup over scalar):");
    println!(
        "  GCC-like autovec   {:.2}x   (paper: 'unimpressive')",
        geomean(gcc_auto.clone())
    );
    println!(
        "  ICC-like autovec   {:.2}x   (paper: 1.34x)",
        geomean(icc_auto.clone())
    );
    println!(
        "  macro-SIMD         {:.2}x   (paper: 2.07x)\n",
        geomean(macro_v.clone())
    );
    report.push_row(
        BenchRow::new("fig10_geomean")
            .metric("gcc_autovec_speedup", geomean(gcc_auto))
            .metric("icc_autovec_speedup", geomean(icc_auto))
            .metric("macro_simd_speedup", geomean(macro_v)),
    );

    // Figure 11 average.
    let f11: Vec<f64> = suite
        .iter()
        .map(|b| figure11_row(b, &machine).improvement_pct)
        .collect();
    let f11_avg = f11.iter().sum::<f64>() / f11.len() as f64;
    let f11_max = f11.iter().cloned().fold(0.0, f64::max);
    println!(
        "Figure 11 (vertical over single-actor): avg {f11_avg:.1}%  max {f11_max:.1}%   (paper: 40% avg, 114% max)\n"
    );
    report.push_row(
        BenchRow::new("fig11_vertical")
            .metric("avg_improvement_pct", f11_avg)
            .metric("max_improvement_pct", f11_max),
    );

    // Figure 12 average.
    let f12: Vec<f64> = suite
        .iter()
        .map(|b| figure12_row(b).improvement_pct)
        .collect();
    let f12_avg = f12.iter().sum::<f64>() / f12.len() as f64;
    println!("Figure 12 (SAGU benefit): avg {f12_avg:.1}%   (paper: 8.1%)\n");
    report.push_row(BenchRow::new("fig12_sagu").metric("avg_improvement_pct", f12_avg));

    // Figure 13 geomeans.
    let mut c2 = Vec::new();
    let mut c4 = Vec::new();
    let mut c2s = Vec::new();
    let mut c4s = Vec::new();
    for b in &suite {
        let (p2, p4) = figure13_rows(b, &machine);
        c2.push(p2.multicore);
        c4.push(p4.multicore);
        c2s.push(p2.multicore_simd);
        c4s.push(p4.multicore_simd);
    }
    println!("Figure 13 (geomean speedup over 1-core scalar):");
    println!(
        "  2 cores            {:.2}x   (paper: 1.28x)",
        geomean(c2.clone())
    );
    println!(
        "  4 cores            {:.2}x   (paper: 1.85x)",
        geomean(c4.clone())
    );
    println!(
        "  2 cores + SIMD     {:.2}x   (paper: 2.03x)",
        geomean(c2s.clone())
    );
    println!(
        "  4 cores + SIMD     {:.2}x   (paper: 3.17x)\n",
        geomean(c4s.clone())
    );
    report.push_row(
        BenchRow::new("fig13_geomean")
            .metric("speedup_2c", geomean(c2))
            .metric("speedup_4c", geomean(c4))
            .metric("speedup_2c_simd", geomean(c2s))
            .metric("speedup_4c_simd", geomean(c4s)),
    );

    // Scaling ablation table.
    println!("Equation-1 scaling ablation (minimal vs naive scale-by-SW):");
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|b| {
            let r = scaling_ablation(b, &machine);
            vec![
                b.name.to_string(),
                format!("x{}", r.minimal_factor),
                format!("x{}", r.naive_factor),
                format!("{}", r.minimal_buffer_elems),
                format!("{}", r.naive_buffer_elems),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "Eq1 factor",
                "naive",
                "buf elems (Eq1)",
                "buf elems (naive)"
            ],
            &rows
        )
    );
    emit_report(&report);
}
