//! Regenerates Figure 13: speedups for 2-core and 4-core execution, with
//! and without macro-SIMDization (partition-first, as in the paper's naive
//! SIMD-aware multicore scheduler).

use macross_bench::{emit_report, figure13_rows, geomean, render_table, BenchReport, BenchRow};
use macross_vm::Machine;

fn main() {
    let machine = Machine::core_i7();
    println!("== Figure 13: multicore vs multicore + macro-SIMD (speedup over 1-core scalar) ==");
    let mut report = BenchReport::new("fig13", &machine.name, machine.simd_width as u64);
    let mut rows = Vec::new();
    let (mut c2, mut c4, mut c2s, mut c4s) = (vec![], vec![], vec![], vec![]);
    for b in macross_benchsuite::all() {
        let (p2, p4) = figure13_rows(&b, &machine);
        c2.push(p2.multicore);
        c4.push(p4.multicore);
        c2s.push(p2.multicore_simd);
        c4s.push(p4.multicore_simd);
        report.push_row(
            BenchRow::new(b.name)
                .metric("speedup_2c", p2.multicore)
                .metric("speedup_4c", p4.multicore)
                .metric("speedup_2c_simd", p2.multicore_simd)
                .metric("speedup_4c_simd", p4.multicore_simd),
        );
        rows.push(vec![
            b.name.to_string(),
            format!("{:.2}x", p2.multicore),
            format!("{:.2}x", p4.multicore),
            format!("{:.2}x", p2.multicore_simd),
            format!("{:.2}x", p4.multicore_simd),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.2}x", geomean(c2.clone())),
        format!("{:.2}x", geomean(c4.clone())),
        format!("{:.2}x", geomean(c2s.clone())),
        format!("{:.2}x", geomean(c4s.clone())),
    ]);
    println!(
        "{}",
        render_table(
            &["benchmark", "2 cores", "4 cores", "2c + SIMD", "4c + SIMD"],
            &rows
        )
    );
    println!(
        "2-core+SIMD geomean {:.2}x vs plain 4-core {:.2}x",
        geomean(c2s.clone()),
        geomean(c4.clone())
    );
    println!("(paper: 2-core 1.28x -> 2.03x with SIMD; 4-core 1.85x -> 3.17x; 2c+SIMD within 5% of 4-core)");
    report.push_row(
        BenchRow::new("GEOMEAN")
            .metric("speedup_2c", geomean(c2))
            .metric("speedup_4c", geomean(c4))
            .metric("speedup_2c_simd", geomean(c2s))
            .metric("speedup_4c_simd", geomean(c4s)),
    );
    emit_report(&report);
}
