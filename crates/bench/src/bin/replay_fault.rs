//! Replay a failing supervised run from its `REPLAY_*.json` bundle.
//!
//! ```text
//! cargo run -p macross-bench --features fault-inject --bin replay_fault -- REPLAY_FMRadio_7.json
//! ```
//!
//! Exit status: 0 when every bundle reproduced its recorded failures
//! exactly, 1 on divergence or error, 2 on usage errors. Without the
//! `fault-inject` feature the injected faults are inert, so a bundle
//! whose `expect` list is non-empty cannot reproduce — the binary says so
//! instead of reporting a spurious divergence.

use macross_bench::replay::run_bundle;
use macross_runtime::{ReplayBundle, FAULTS_COMPILED};
use std::process::ExitCode;
use std::str::FromStr;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: replay_fault <REPLAY_*.json>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        let bundle = match ReplayBundle::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: malformed bundle: {e}");
                ok = false;
                continue;
            }
        };
        if !bundle.expect.is_empty() && !FAULTS_COMPILED {
            eprintln!(
                "{path}: bundle expects failures but fault injection is not compiled in; \
                 rebuild with --features fault-inject"
            );
            ok = false;
            continue;
        }
        println!(
            "{path}: {} ({}, {} on {} cores, seed {})",
            bundle.benchmark,
            bundle.exec_mode,
            if bundle.simdized {
                "simdized"
            } else {
                "scalar"
            },
            bundle.assignment.iter().max().map(|&c| c + 1).unwrap_or(1),
            bundle.plan.seed,
        );
        match run_bundle(&bundle) {
            Ok(outcome) => {
                for f in &outcome.run.report.failures {
                    println!("  observed: {f}");
                }
                if outcome.reproduced {
                    println!(
                        "  REPRODUCED: {} failure(s) match the bundle exactly",
                        outcome.observed.len()
                    );
                } else {
                    println!("  DIVERGED: expected {:?}", bundle.expect);
                    println!("            observed {:?}", outcome.observed);
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("{path}: replay failed: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
