//! Interpreter hot-path microbenchmark: ns per firing of the tree-walking
//! interpreter vs. the register bytecode engine on eight representative
//! filter shapes — an arithmetic-heavy scalar loop, a macro-SIMDized
//! FMA-chain kernel, a peeking FIR with an array-indexed loop, two
//! permutation-heavy SIMDized pipelines (BitonicSort's compare-exchange
//! network and MatrixMultBlock's transpose mesh), a synthetic
//! perm-dominated riffle network where the tier matrix's permutation
//! kernels carry nearly all of the work, and two *stateful* region
//! workloads (the benchsuite's IIR bank and accumulator/normalizer)
//! where the region transform vectorizes actors the classic passes
//! refuse. For the region rows the baseline is the **scalar** graph on
//! the dispatch engine (schedules aligned by steady-state output
//! volume), so `region_vs_scalar_speedup_*` prices the whole transform
//! — panel layout, cursor elision, and fused panel kernels — not just
//! fusion; `region_vs_scalar_speedup_best` (the max over available
//! tiers) is pinned by the zero-tolerance kernel gate.
//!
//! All engines run the *same* compiled graph and schedule inside one
//! binary via `ExecMode`, so the comparison isolates the execution
//! substrate. Outputs are asserted bit-identical before any number is
//! reported — including one fused run under every *available* kernel
//! tier (`MACROSS_KERNEL_TIER` forced per run), which differentially
//! pins the whole backend matrix against the tree-walk oracle on real
//! benchmark graphs.
//!
//! Besides the engine columns, the table (and report) carries one
//! fused-vs-dispatch column per available tier; the unsuffixed metrics
//! always describe the natively selected tier, so existing baselines
//! keep their meaning. Emits `BENCH_interp_hotpath.json` (schema v1)
//! when report emission is enabled (`telemetry` feature or
//! `MACROSS_BENCH_JSON`).
//!
//! Usage: `interp_hotpath [iters]` (default 2000 steady iterations per
//! timed sample).

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_bench::{emit_report, render_table, safe_ratio, BenchReport, BenchRow};
use macross_benchsuite::region::{region_acc_norm, region_iir_bank};
use macross_benchsuite::util::{fir, source_f32, source_i32};
use macross_sdf::Schedule;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::{Graph, Node};
use macross_streamir::types::{ScalarTy, Ty};
use macross_vm::{
    compile_filter_opts, kernel, run_scheduled_mode, ExecMode, KernelTier, Machine, RunResult,
};
use std::time::Instant;

/// Arithmetic-heavy scalar filter: pop 1, push 1, 48 loop iterations of
/// integer mixing (mul/add/xor/shift/mask) over an accumulator.
fn mix32() -> Graph {
    let mut fb = FilterBuilder::new("mix32", 1, 1, 1, ScalarTy::I32);
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(acc, pop());
        b.for_(i, 48i32, |b| {
            b.set(acc, (v(acc) * 1103515245i32 + 12345i32) ^ (v(acc) >> 7i32));
            b.set(acc, v(acc) & 0x7fffffffi32);
        });
        b.push(v(acc));
    });
    StreamSpec::pipeline(vec![
        source_i32("src", 1, 0xffff),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("mix32 graph")
}

/// Stateless float kernel that macro-SIMDization vectorizes: 24 chained
/// multiply-adds per element, executed as vector ops after SIMDization.
/// The depth matters: chain formation collapses the whole ladder into
/// one register-resident `KOp::Chain`, so this benchmark isolates the
/// FMA-chain win (load once, chain in-register, store once) on top of
/// the per-op dispatch gap.
fn vmix_scalar() -> Graph {
    let mut fb = FilterBuilder::new("vmix", 1, 1, 1, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.set(x, pop());
        for _ in 0..24 {
            b.set(x, v(x) * 1.0001f32 + 0.5f32);
        }
        b.push(v(x));
    });
    StreamSpec::pipeline(vec![
        source_f32("src", 4, 4096, 0.25),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("vmix graph")
}

/// Peeking FIR: 16 taps, coefficient array filled in `init`, loop with
/// `peek(i) * coef[i]` accumulation.
fn fir16() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("src", 4, 4096, 0.25),
        fir("fir16", 16, 0.37, 0.11),
        StreamSpec::Sink,
    ])
    .build()
    .expect("fir16 graph")
}

/// Hand-vectorized permutation network: two 8-lane f32 vectors riffled
/// through 24 rounds of `extract_even`/`extract_odd` pairs, with a
/// two-op multiply-add mix every other round. Unlike the benchsuite
/// graphs (whose fused filters amortize the kernel across a large tape
/// and charge footprint), this filter is almost nothing *but*
/// permutations, so its fused/dispatch ratio isolates what the tier
/// matrix buys on `PermF`.
fn permnet() -> Graph {
    use macross_streamir::expr::{BinOp, Expr, LValue};
    use macross_streamir::stmt::Stmt;
    use macross_streamir::types::Value;
    const W: usize = 8;
    const ROUNDS: usize = 24;
    let mut fb = FilterBuilder::new("permnet", 2 * W, 2 * W, 2 * W, ScalarTy::F32);
    let a = fb.local("a", Ty::Vector(ScalarTy::F32, W));
    let bv = fb.local("b", Ty::Vector(ScalarTy::F32, W));
    let e = fb.local("e", Ty::Vector(ScalarTy::F32, W));
    let o = fb.local("o", Ty::Vector(ScalarTy::F32, W));
    fb.work(move |b| {
        let var = |id| Box::new(Expr::Var(id));
        b.stmt(Stmt::Assign(LValue::Var(a), Expr::VPop { width: W }));
        b.stmt(Stmt::Assign(LValue::Var(bv), Expr::VPop { width: W }));
        for r in 0..ROUNDS / 2 {
            b.stmt(Stmt::Assign(
                LValue::Var(e),
                Expr::PermuteEven(var(a), var(bv)),
            ));
            b.stmt(Stmt::Assign(
                LValue::Var(o),
                Expr::PermuteOdd(var(a), var(bv)),
            ));
            b.stmt(Stmt::Assign(
                LValue::Var(a),
                Expr::PermuteEven(var(e), var(o)),
            ));
            b.stmt(Stmt::Assign(
                LValue::Var(bv),
                Expr::PermuteOdd(var(e), var(o)),
            ));
            if r % 2 == 0 {
                // a = a * 1.0001 + b: keeps the data flowing across
                // rounds and gives chain formation a short ladder.
                b.stmt(Stmt::Assign(
                    LValue::Var(a),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Var(a),
                            Expr::Splat(Box::new(Expr::Const(Value::F32(1.0001))), W),
                        ),
                        Expr::Var(bv),
                    ),
                ));
            }
        }
        b.stmt(Stmt::VPush {
            value: Expr::Var(a),
            width: W,
        });
        b.stmt(Stmt::VPush {
            value: Expr::Var(bv),
            width: W,
        });
    });
    StreamSpec::pipeline(vec![
        source_f32("src", 2 * W, 4096, 0.25),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("permnet graph")
}

/// Macro-SIMDize a benchsuite application; the fused hot filter carries
/// the permutation-heavy kernels the tier matrix exists for.
fn simdized_suite(name: &str) -> (Graph, Schedule) {
    let machine = Machine::core_i7();
    let b = macross_benchsuite::by_name(name)
        .unwrap_or_else(|| panic!("no benchsuite program named {name}"));
    let simd =
        macro_simdize(&(b.build)(), &machine, &SimdizeOptions::all()).expect("macro_simdize");
    (simd.graph, simd.schedule)
}

/// Minimum wall nanoseconds of `samples` runs of one full scheduled
/// execution (after one warm-up run).
fn time_run(
    graph: &Graph,
    sched: &Schedule,
    machine: &Machine,
    iters: u64,
    mode: ExecMode,
    samples: usize,
) -> u64 {
    std::hint::black_box(run_scheduled_mode(graph, sched, machine, iters, mode).expect("run"));
    (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(
                run_scheduled_mode(graph, sched, machine, iters, mode).expect("run"),
            );
            t.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap()
}

/// Steady reps of the hot filter (name contains `needle`), whether it
/// compiled to bytecode rather than falling back to the tree walker, and
/// how many superblock kernels fusion carved out of it.
fn hot_filter(
    graph: &Graph,
    sched: &Schedule,
    machine: &Machine,
    needle: &str,
) -> (u64, bool, u64) {
    for (id, node) in graph.nodes() {
        if let Node::Filter(f) = node {
            if f.name.contains(needle) {
                let in_elem = graph.single_in_edge(id).map(|e| graph.edge(e).elem);
                let out_elem = graph.single_out_edge(id).map(|e| graph.edge(e).elem);
                let plan = compile_filter_opts(f, in_elem, out_elem, machine, true);
                let kernels = plan.as_ref().map_or(0, |p| p.kernels.len() as u64);
                return (sched.reps[id.0 as usize], plan.is_some(), kernels);
            }
        }
    }
    panic!("no filter named *{needle}* in graph");
}

/// Force the backend-matrix tier for subsequent compiles (or restore the
/// inherited setting with `None`).
fn set_tier_env(tier: Option<&str>, inherited: &Option<String>) {
    match tier {
        Some(label) => std::env::set_var("MACROSS_KERNEL_TIER", label),
        None => match inherited {
            Some(orig) => std::env::set_var("MACROSS_KERNEL_TIER", orig),
            None => std::env::remove_var("MACROSS_KERNEL_TIER"),
        },
    }
}

fn outputs_bits_eq(a: &RunResult, b: &RunResult) -> bool {
    a.output.len() == b.output.len() && a.output.iter().zip(&b.output).all(|(x, y)| x.bits_eq(*y))
}

fn main() {
    let machine = Machine::core_i7();
    let iters: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iters must be a number"))
        .unwrap_or(2000);
    let samples = 5;
    // The tier detection (or the caller's env) picked before this binary
    // starts forcing tiers per timed run.
    let native = kernel::select_tier();
    let inherited = std::env::var("MACROSS_KERNEL_TIER").ok();
    let tiers: Vec<KernelTier> = KernelTier::ALL
        .iter()
        .copied()
        .filter(|t| t.available())
        .collect();

    // (label, graph, schedule, hot-filter name fragment)
    let mut cases: Vec<(&str, Graph, Schedule, &str)> = Vec::new();
    let g = mix32();
    let s = Schedule::compute(&g).expect("schedule");
    cases.push(("mix32_scalar_loop", g, s, "mix32"));
    let simd = macro_simdize(&vmix_scalar(), &machine, &SimdizeOptions::all()).expect("simdize");
    cases.push(("vmix_simdized", simd.graph, simd.schedule, "vmix"));
    let g = fir16();
    let s = Schedule::compute(&g).expect("schedule");
    cases.push(("fir16_peeking", g, s, "fir16"));
    // Permutation-heavy: the fused BitonicSort network carries 40 PermI
    // kernels ops; MatrixMultBlock's transpose mesh carries 192 PermF.
    let (g, s) = simdized_suite("BitonicSort");
    cases.push(("bitonic_permnet", g, s, "bs_k"));
    let (g, s) = simdized_suite("MatrixMultBlock");
    cases.push(("blockmm_permnet", g, s, "mmb_mul"));
    // Synthetic permutation network: perms dominate the fused kernel, so
    // this row is where the perm-speedup gate bites.
    let g = permnet();
    let s = Schedule::compute(&g).expect("schedule");
    cases.push(("permnet_synthetic", g, s, "permnet"));

    println!(
        "== Interpreter hot path: tree-walk vs. bytecode ({iters} iters, min of {samples}, native tier {}) ==",
        native.label()
    );
    let mut report = BenchReport::new("interp_hotpath", &machine.name, machine.simd_width as u64)
        .with_exec_mode("bytecode-vs-treewalk")
        .with_kernel_backend(native.label())
        .with_kernel_tier(native.label());
    let mut rows = Vec::new();
    for (label, graph, sched, needle) in &cases {
        // All engines must agree bit-for-bit before any timing counts —
        // and the fused engine must agree under *every* available tier,
        // not just the natively selected one.
        let tw = run_scheduled_mode(graph, sched, &machine, 16, ExecMode::TreeWalk).expect("tw");
        let nf =
            run_scheduled_mode(graph, sched, &machine, 16, ExecMode::BytecodeNoFuse).expect("nf");
        assert!(outputs_bits_eq(&tw, &nf), "{label}: dispatch diverges");
        assert_eq!(tw.counters, nf.counters, "{label}: counters diverge");
        for tier in &tiers {
            set_tier_env(Some(tier.label()), &inherited);
            let bc =
                run_scheduled_mode(graph, sched, &machine, 16, ExecMode::Bytecode).expect("bc");
            assert!(
                outputs_bits_eq(&tw, &bc),
                "{label}: fused {} tier diverges",
                tier.label()
            );
            assert_eq!(
                tw.counters,
                bc.counters,
                "{label}: fused {} tier counters diverge",
                tier.label()
            );
        }
        set_tier_env(None, &inherited);

        let (reps, compiled, kernels) = hot_filter(graph, sched, &machine, needle);
        let firings = reps * iters;
        let tw_ns = time_run(graph, sched, &machine, iters, ExecMode::TreeWalk, samples);
        let nf_ns = time_run(
            graph,
            sched,
            &machine,
            iters,
            ExecMode::BytecodeNoFuse,
            samples,
        );
        let tw_per = tw_ns as f64 / firings as f64;
        let nf_per = nf_ns as f64 / firings as f64;

        // Fused timing, once per available tier.
        let mut row = BenchRow::new(*label);
        let mut per_tier_cells: Vec<String> = Vec::new();
        let mut native_per = f64::NAN;
        for tier in &tiers {
            set_tier_env(Some(tier.label()), &inherited);
            let ns = time_run(graph, sched, &machine, iters, ExecMode::Bytecode, samples);
            let per = ns as f64 / firings as f64;
            let ratio = safe_ratio(nf_per, per);
            row = row
                .metric(format!("bytecode_ns_per_firing_{}", tier.label()), per)
                .metric(
                    format!("kernel_vs_dispatch_speedup_{}", tier.label()),
                    ratio,
                );
            per_tier_cells.push(format!("{ratio:.2}x"));
            if *tier == native {
                native_per = per;
            }
        }
        set_tier_env(None, &inherited);
        per_tier_cells.resize(KernelTier::ALL.len(), "-".to_string());

        let speedup = safe_ratio(tw_per, native_per);
        let kernel_speedup = safe_ratio(nf_per, native_per);
        report.push_row(
            row.metric("treewalk_ns_per_firing", tw_per)
                .metric("dispatch_ns_per_firing", nf_per)
                .metric("bytecode_ns_per_firing", native_per)
                .metric("speedup", speedup)
                .metric("kernel_vs_dispatch_speedup", kernel_speedup)
                .counter("firings", firings)
                .counter("compiled", u64::from(compiled))
                .counter("kernels", kernels),
        );
        let mut cells = vec![
            label.to_string(),
            format!("{tw_per:.1}"),
            format!("{nf_per:.1}"),
            format!("{native_per:.1}"),
            format!("{speedup:.2}x"),
        ];
        cells.extend(per_tier_cells);
        cells.push(kernels.to_string());
        cells.push(if compiled { "yes" } else { "FALLBACK" }.to_string());
        rows.push(cells);
    }
    // --- Region-state rows: stateful actors vectorized lane-per-region.
    // Unlike the rows above (one graph, engines compared), these compare
    // two *graphs*: the scalar original on the dispatch engine vs. the
    // region-transformed one per kernel tier, schedules aligned by
    // steady-state output volume so a time ratio is a fair speedup.
    let mut region_rows = Vec::new();
    for (label, build, needle) in [
        (
            "region_iir_bank",
            region_iir_bank as fn() -> Graph,
            "iir_bank",
        ),
        (
            "region_acc_norm",
            region_acc_norm as fn() -> Graph,
            "acc_norm",
        ),
    ] {
        let g = build();
        let mut ss = Schedule::compute(&g).expect("schedule");
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).expect("simdize");
        let actors: Vec<String> = simd
            .report
            .region_actors
            .iter()
            .filter(|a| a.contains(needle))
            .cloned()
            .collect();
        assert!(
            !actors.is_empty(),
            "{label}: region transform did not fire on *{needle}*: {:?}",
            simd.report
        );
        report.push_pass("region", actors);
        // Align the scalar schedule to the transformed one's steady-state
        // output volume (Equation-1 scaling multiplies repetitions).
        let s_out = run_scheduled_mode(&g, &ss, &machine, 4, ExecMode::TreeWalk).expect("tw");
        let v_out =
            run_scheduled_mode(&simd.graph, &simd.schedule, &machine, 4, ExecMode::TreeWalk)
                .expect("tw");
        assert_eq!(
            v_out.output.len() % s_out.output.len(),
            0,
            "{label}: steady-state volumes do not align"
        );
        ss.scale((v_out.output.len() / s_out.output.len()) as u64);
        // The transformed graph must match the scalar one bit-for-bit on
        // every available tier before any timing counts.
        let sc = run_scheduled_mode(&g, &ss, &machine, 16, ExecMode::BytecodeNoFuse).expect("sc");
        for tier in &tiers {
            set_tier_env(Some(tier.label()), &inherited);
            let rg = run_scheduled_mode(
                &simd.graph,
                &simd.schedule,
                &machine,
                16,
                ExecMode::Bytecode,
            )
            .expect("rg");
            assert!(
                outputs_bits_eq(&sc, &rg),
                "{label}: region {} tier diverges from scalar",
                tier.label()
            );
        }
        set_tier_env(None, &inherited);

        let (reps, compiled, kernels) = hot_filter(&simd.graph, &simd.schedule, &machine, needle);
        let firings = reps * iters;
        let sc_ns = time_run(&g, &ss, &machine, iters, ExecMode::BytecodeNoFuse, samples);
        let sc_per = sc_ns as f64 / firings as f64;
        let mut row = BenchRow::new(label);
        let mut per_tier_cells: Vec<String> = Vec::new();
        let mut best = 0.0f64;
        for tier in &tiers {
            set_tier_env(Some(tier.label()), &inherited);
            let ns = time_run(
                &simd.graph,
                &simd.schedule,
                &machine,
                iters,
                ExecMode::Bytecode,
                samples,
            );
            let per = ns as f64 / firings as f64;
            let ratio = safe_ratio(sc_per, per);
            best = best.max(ratio);
            row = row
                .metric(format!("region_ns_per_firing_{}", tier.label()), per)
                .metric(format!("region_vs_scalar_speedup_{}", tier.label()), ratio);
            per_tier_cells.push(format!("{ratio:.2}x"));
        }
        set_tier_env(None, &inherited);
        per_tier_cells.resize(KernelTier::ALL.len(), "-".to_string());
        report.push_row(
            row.metric("scalar_dispatch_ns_per_firing", sc_per)
                .metric("region_vs_scalar_speedup_best", best)
                .counter("firings", firings)
                .counter("compiled", u64::from(compiled))
                .counter("kernels", kernels),
        );
        let mut cells = vec![
            label.to_string(),
            format!("{sc_per:.1}"),
            format!("{best:.2}x"),
        ];
        cells.extend(per_tier_cells);
        cells.push(kernels.to_string());
        cells.push(if compiled { "yes" } else { "FALLBACK" }.to_string());
        region_rows.push(cells);
    }

    let mut headers = vec![
        "filter".to_string(),
        "treewalk ns/firing".to_string(),
        "dispatch ns/firing".to_string(),
        "fused ns/firing".to_string(),
        "speedup".to_string(),
    ];
    for tier in KernelTier::ALL.iter().filter(|t| t.available()) {
        headers.push(format!("fused/disp {}", tier.label()));
    }
    for tier in KernelTier::ALL.iter().filter(|t| !t.available()) {
        headers.push(format!("fused/disp {}", tier.label()));
    }
    headers.push("kernels".to_string());
    headers.push("compiled".to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));

    println!("== Region-state SIMDization: region-vectorized vs. scalar dispatch ==");
    let mut region_headers = vec![
        "benchmark".to_string(),
        "scalar disp ns/firing".to_string(),
        "best speedup".to_string(),
    ];
    for tier in KernelTier::ALL.iter().filter(|t| t.available()) {
        region_headers.push(format!("region/scalar {}", tier.label()));
    }
    for tier in KernelTier::ALL.iter().filter(|t| !t.available()) {
        region_headers.push(format!("region/scalar {}", tier.label()));
    }
    region_headers.push("kernels".to_string());
    region_headers.push("compiled".to_string());
    let region_header_refs: Vec<&str> = region_headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&region_header_refs, &region_rows));
    emit_report(&report);
}
