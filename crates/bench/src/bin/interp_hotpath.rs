//! Interpreter hot-path microbenchmark: ns per firing of the tree-walking
//! interpreter vs. the register bytecode engine on three representative
//! filter shapes — an arithmetic-heavy scalar loop, a macro-SIMDized
//! vector kernel, and a peeking FIR with an array-indexed loop.
//!
//! Both engines run the *same* compiled graph and schedule inside one
//! binary via `ExecMode`, so the comparison isolates the execution
//! substrate. Outputs are asserted bit-identical before any number is
//! reported. Emits `BENCH_interp_hotpath.json` (schema v1) when report
//! emission is enabled (`telemetry` feature or `MACROSS_BENCH_JSON`).
//!
//! Usage: `interp_hotpath [iters]` (default 2000 steady iterations per
//! timed sample).

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_bench::{emit_report, render_table, safe_ratio, BenchReport, BenchRow};
use macross_benchsuite::util::{fir, source_f32, source_i32};
use macross_sdf::Schedule;
use macross_streamir::builder::StreamSpec;
use macross_streamir::edsl::*;
use macross_streamir::graph::{Graph, Node};
use macross_streamir::types::{ScalarTy, Ty};
use macross_vm::{compile_filter_opts, kernel, run_scheduled_mode, ExecMode, Machine};
use std::time::Instant;

/// Arithmetic-heavy scalar filter: pop 1, push 1, 48 loop iterations of
/// integer mixing (mul/add/xor/shift/mask) over an accumulator.
fn mix32() -> Graph {
    let mut fb = FilterBuilder::new("mix32", 1, 1, 1, ScalarTy::I32);
    let acc = fb.local("acc", Ty::Scalar(ScalarTy::I32));
    let i = fb.local("i", Ty::Scalar(ScalarTy::I32));
    fb.work(move |b| {
        b.set(acc, pop());
        b.for_(i, 48i32, |b| {
            b.set(acc, (v(acc) * 1103515245i32 + 12345i32) ^ (v(acc) >> 7i32));
            b.set(acc, v(acc) & 0x7fffffffi32);
        });
        b.push(v(acc));
    });
    StreamSpec::pipeline(vec![
        source_i32("src", 1, 0xffff),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("mix32 graph")
}

/// Stateless float kernel that macro-SIMDization vectorizes: 24 chained
/// multiply-adds per element, executed as vector ops after SIMDization.
/// The depth matters: each tree-walk vector op allocates a fresh
/// `Vec<Value>`, while the bytecode engine updates lanes in place, so the
/// FMA chain isolates the per-op gap.
fn vmix_scalar() -> Graph {
    let mut fb = FilterBuilder::new("vmix", 1, 1, 1, ScalarTy::F32);
    let x = fb.local("x", Ty::Scalar(ScalarTy::F32));
    fb.work(move |b| {
        b.set(x, pop());
        for _ in 0..24 {
            b.set(x, v(x) * 1.0001f32 + 0.5f32);
        }
        b.push(v(x));
    });
    StreamSpec::pipeline(vec![
        source_f32("src", 4, 4096, 0.25),
        fb.build_spec(),
        StreamSpec::Sink,
    ])
    .build()
    .expect("vmix graph")
}

/// Peeking FIR: 16 taps, coefficient array filled in `init`, loop with
/// `peek(i) * coef[i]` accumulation.
fn fir16() -> Graph {
    StreamSpec::pipeline(vec![
        source_f32("src", 4, 4096, 0.25),
        fir("fir16", 16, 0.37, 0.11),
        StreamSpec::Sink,
    ])
    .build()
    .expect("fir16 graph")
}

/// Minimum wall nanoseconds of `samples` runs of one full scheduled
/// execution (after one warm-up run).
fn time_run(
    graph: &Graph,
    sched: &Schedule,
    machine: &Machine,
    iters: u64,
    mode: ExecMode,
    samples: usize,
) -> u64 {
    std::hint::black_box(run_scheduled_mode(graph, sched, machine, iters, mode).expect("run"));
    (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(
                run_scheduled_mode(graph, sched, machine, iters, mode).expect("run"),
            );
            t.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap()
}

/// Steady reps of the hot filter (name contains `needle`), whether it
/// compiled to bytecode rather than falling back to the tree walker, and
/// how many superblock kernels fusion carved out of it.
fn hot_filter(
    graph: &Graph,
    sched: &Schedule,
    machine: &Machine,
    needle: &str,
) -> (u64, bool, u64) {
    for (id, node) in graph.nodes() {
        if let Node::Filter(f) = node {
            if f.name.contains(needle) {
                let in_elem = graph.single_in_edge(id).map(|e| graph.edge(e).elem);
                let out_elem = graph.single_out_edge(id).map(|e| graph.edge(e).elem);
                let plan = compile_filter_opts(f, in_elem, out_elem, machine, true);
                let kernels = plan.as_ref().map_or(0, |p| p.kernels.len() as u64);
                return (sched.reps[id.0 as usize], plan.is_some(), kernels);
            }
        }
    }
    panic!("no filter named *{needle}* in graph");
}

fn main() {
    let machine = Machine::core_i7();
    let iters: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iters must be a number"))
        .unwrap_or(2000);
    let samples = 5;

    // (label, graph, schedule, hot-filter name fragment)
    let mut cases: Vec<(&str, Graph, Schedule, &str)> = Vec::new();
    let g = mix32();
    let s = Schedule::compute(&g).expect("schedule");
    cases.push(("mix32_scalar_loop", g, s, "mix32"));
    let simd = macro_simdize(&vmix_scalar(), &machine, &SimdizeOptions::all()).expect("simdize");
    cases.push(("vmix_simdized", simd.graph, simd.schedule, "vmix"));
    let g = fir16();
    let s = Schedule::compute(&g).expect("schedule");
    cases.push(("fir16_peeking", g, s, "fir16"));

    println!(
        "== Interpreter hot path: tree-walk vs. bytecode ({iters} iters, min of {samples}) =="
    );
    let mut report = BenchReport::new("interp_hotpath", &machine.name, machine.simd_width as u64)
        .with_exec_mode("bytecode-vs-treewalk")
        .with_kernel_backend(kernel::select_backend().label());
    let mut rows = Vec::new();
    for (label, graph, sched, needle) in &cases {
        // All three engines must agree bit-for-bit before any timing counts.
        let tw = run_scheduled_mode(graph, sched, &machine, 16, ExecMode::TreeWalk).expect("tw");
        let bc = run_scheduled_mode(graph, sched, &machine, 16, ExecMode::Bytecode).expect("bc");
        let nf =
            run_scheduled_mode(graph, sched, &machine, 16, ExecMode::BytecodeNoFuse).expect("nf");
        assert_eq!(tw.output, bc.output, "{label}: engines diverge");
        assert_eq!(tw.counters, bc.counters, "{label}: cycle counters diverge");
        assert_eq!(nf.output, bc.output, "{label}: fusion changes output");
        assert_eq!(nf.counters, bc.counters, "{label}: fusion changes counters");

        let (reps, compiled, kernels) = hot_filter(graph, sched, &machine, needle);
        let firings = reps * iters;
        let tw_ns = time_run(graph, sched, &machine, iters, ExecMode::TreeWalk, samples);
        let nf_ns = time_run(
            graph,
            sched,
            &machine,
            iters,
            ExecMode::BytecodeNoFuse,
            samples,
        );
        let bc_ns = time_run(graph, sched, &machine, iters, ExecMode::Bytecode, samples);
        let tw_per = tw_ns as f64 / firings as f64;
        let nf_per = nf_ns as f64 / firings as f64;
        let bc_per = bc_ns as f64 / firings as f64;
        let speedup = safe_ratio(tw_per, bc_per);
        let kernel_speedup = safe_ratio(nf_per, bc_per);
        report.push_row(
            BenchRow::new(*label)
                .metric("treewalk_ns_per_firing", tw_per)
                .metric("dispatch_ns_per_firing", nf_per)
                .metric("bytecode_ns_per_firing", bc_per)
                .metric("speedup", speedup)
                .metric("kernel_vs_dispatch_speedup", kernel_speedup)
                .counter("firings", firings)
                .counter("compiled", u64::from(compiled))
                .counter("kernels", kernels),
        );
        rows.push(vec![
            label.to_string(),
            format!("{tw_per:.1}"),
            format!("{nf_per:.1}"),
            format!("{bc_per:.1}"),
            format!("{speedup:.2}x"),
            format!("{kernel_speedup:.2}x"),
            kernels.to_string(),
            if compiled { "yes" } else { "FALLBACK" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "filter",
                "treewalk ns/firing",
                "dispatch ns/firing",
                "fused ns/firing",
                "speedup",
                "fused/dispatch",
                "kernels",
                "compiled",
            ],
            &rows,
        )
    );
    emit_report(&report);
}
