//! Multi-tenant service soak: oversubscribe a `StreamService` with mixed
//! benchmark sessions and check the subsystem's contract end to end —
//! typed `Overloaded` rejections past the session cap, compile-once
//! behaviour (compilations == distinct graph shapes, not sessions),
//! per-tenant output counts, and a graceful shutdown that drains
//! everything admitted.
//!
//! Usage: `service_soak [--sessions N] [--cap M] [--workers W]
//! [--iters I] [--mode bytecode|nofuse|treewalk]`
//! (defaults: 72 sessions over a cap of 64, 4 workers, 4 iterations,
//! bytecode). Any violated invariant exits non-zero. With emission
//! enabled (`MACROSS_BENCH_JSON=1`, or the `telemetry` feature), writes
//! `SERVICE_soak_<mode>.json` into `MACROSS_BENCH_DIR` for
//! `validate_report`.

use macross_bench::{bench_dir, render_table, report_emission_enabled};
use macross_runtime::FaultPlan;
use macross_service::{mode_label, ServiceConfig, StreamService};
use macross_vm::{ExecMode, Machine};

struct Args {
    sessions: usize,
    cap: usize,
    workers: usize,
    iters: u64,
    mode: ExecMode,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 72,
        cap: 64,
        workers: 4,
        iters: 4,
        mode: ExecMode::Bytecode,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = value("--sessions").parse().expect("--sessions"),
            "--cap" => args.cap = value("--cap").parse().expect("--cap"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "bytecode" => ExecMode::Bytecode,
                    "nofuse" => ExecMode::BytecodeNoFuse,
                    "treewalk" => ExecMode::TreeWalk,
                    other => {
                        eprintln!("unknown mode '{other}' (bytecode|nofuse|treewalk)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("SOAK VIOLATION: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let machine = Machine::core_i7();
    let report_name = format!("soak_{}", mode_label(args.mode));
    println!(
        "== service soak: {} sessions, cap {}, {} workers, {} iters, {} engine ==",
        args.sessions,
        args.cap,
        args.workers,
        args.iters,
        mode_label(args.mode)
    );
    let service = StreamService::new(
        machine,
        ServiceConfig {
            workers: args.workers,
            session_cap: args.cap,
            mode: args.mode,
            ..ServiceConfig::default()
        },
    );
    let suite = macross_benchsuite::all();

    // Oversubscribed admission: every submission past the cap must come
    // back as the typed Overloaded error, never a panic or a hang.
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..args.sessions {
        let bench = &suite[i % suite.len()];
        let graph = (bench.build)();
        match service.submit(bench.name, &graph, FaultPlan::none()) {
            Ok(id) => admitted.push((id, bench.name, bench.iters.min(args.iters))),
            Err(e) if e.is_overloaded() => rejected += 1,
            Err(e) => fail(&format!("submission {i} failed non-overloaded: {e}")),
        }
    }
    let expect_rejected = args.sessions.saturating_sub(args.cap);
    if rejected != expect_rejected {
        fail(&format!(
            "expected {expect_rejected} Overloaded rejections, saw {rejected}"
        ));
    }
    println!(
        "admitted {} sessions, rejected {rejected} (typed Overloaded)",
        admitted.len()
    );

    // Feed everyone, then close the first half explicitly; the second
    // half stays live so shutdown must drain it.
    for (id, name, iters) in &admitted {
        service
            .feed(*id, *iters)
            .unwrap_or_else(|e| fail(&format!("feed {name}#{id}: {e}")));
    }
    let half = admitted.len() / 2;
    for (id, name, iters) in &admitted[..half] {
        let closed = service
            .close(*id)
            .unwrap_or_else(|e| fail(&format!("close {name}#{id}: {e}")));
        if closed.faulted {
            fail(&format!("{name}#{id} faulted: {:?}", closed.failures));
        }
        if closed.iters_done != *iters {
            fail(&format!(
                "{name}#{id}: {} of {iters} iterations ran",
                closed.iters_done
            ));
        }
        if closed.outputs.iter().map(Vec::len).sum::<usize>() == 0 {
            fail(&format!("{name}#{id} produced no output"));
        }
    }

    let report = service.shutdown(&report_name);

    // Compile-once: one compilation per distinct structural hash — the
    // benchmark mix has at most 14 shapes no matter how many sessions.
    let distinct: std::collections::HashSet<&str> = report
        .tenants
        .iter()
        .map(|t| t.graph_hash.as_str())
        .collect();
    if report.cache.distinct_graphs != distinct.len() as u64 {
        fail(&format!(
            "cache saw {} distinct hashes but tenants carry {}",
            report.cache.distinct_graphs,
            distinct.len()
        ));
    }
    if report.cache.evictions == 0 && report.cache.compilations != report.cache.distinct_graphs {
        fail(&format!(
            "compile-once broken: {} compilations for {} distinct graphs",
            report.cache.compilations, report.cache.distinct_graphs
        ));
    }
    for row in &report.tenants {
        if row.faults > 0 || row.state == "faulted" {
            fail(&format!("tenant {}#{} faulted", row.benchmark, row.session));
        }
        if row.iters_done != row.iters_requested {
            fail(&format!(
                "tenant {}#{}: {}/{} iterations drained",
                row.benchmark, row.session, row.iters_done, row.iters_requested
            ));
        }
    }
    if let Err(e) = macross_telemetry::service::validate_str(&report.json_string()) {
        fail(&format!("emitted report violates macross-service-v2: {e}"));
    }

    let hit_rate = report.cache.hit_rate();
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec![
                    "distinct graphs".into(),
                    report.cache.distinct_graphs.to_string()
                ],
                vec!["compilations".into(), report.cache.compilations.to_string()],
                vec!["cache hit rate".into(), format!("{:.1}%", hit_rate * 100.0)],
                vec!["admitted".into(), report.admission.admitted.to_string()],
                vec![
                    "rejected (Overloaded)".into(),
                    report.admission.rejected_sessions.to_string(),
                ],
                vec![
                    "drained on shutdown".into(),
                    report.admission.drained_on_shutdown.to_string(),
                ],
                vec![
                    "backpressure stalls".into(),
                    report.admission.backpressure_stalls.to_string(),
                ],
            ],
        )
    );
    if report_emission_enabled() {
        match report.write_to_dir(&bench_dir()) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => fail(&format!("failed to write {}: {e}", report.file_name())),
        }
    }
    println!("service soak passed");
}
