//! Dynamic-rate experiment: drive every dynamic benchmark through the
//! multi-tenant service with its scripted parameter traces, verify each
//! run bit-for-bit against the scratch-recompilation oracle, and check
//! the schedule-cache contract — every `set_param` is one
//! reconfiguration, repeat valuations hit, and (at these sizes, with
//! zero evictions) misses equal distinct valuations.
//!
//! Usage: `dynamic_rate [--mode bytecode|nofuse] [--workers W]`
//! (defaults: bytecode, 2 workers). Any violated invariant exits
//! non-zero. With emission enabled (`MACROSS_BENCH_JSON=1`, or the
//! `telemetry` feature), writes `SERVICE_dynamic_<mode>.json` into
//! `MACROSS_BENCH_DIR` for `validate_report`.

use macross::SimdizeOptions;
use macross_bench::{bench_dir, render_table, report_emission_enabled};
use macross_benchsuite::dynamic::dynamic;
use macross_pdf::oracle_replay;
use macross_runtime::FaultPlan;
use macross_service::{mode_label, ServiceConfig, StreamService};
use macross_streamir::types::Value;
use macross_vm::{ExecMode, Machine};
use std::sync::Arc;

struct Args {
    workers: usize,
    mode: ExecMode,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 2,
        mode: ExecMode::Bytecode,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("--workers"),
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "bytecode" => ExecMode::Bytecode,
                    "nofuse" => ExecMode::BytecodeNoFuse,
                    other => {
                        eprintln!("unknown mode '{other}' (bytecode|nofuse)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("DYNAMIC-RATE VIOLATION: {msg}");
    std::process::exit(1);
}

fn rows_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.bits_eq(*q)))
}

fn main() {
    let args = parse_args();
    let machine = Machine::core_i7();
    let opts = SimdizeOptions::all();
    let report_name = format!("dynamic_{}", mode_label(args.mode));
    println!(
        "== dynamic-rate: {} benchmarks, {} workers, {} engine ==",
        dynamic().len(),
        args.workers,
        mode_label(args.mode)
    );
    let service = StreamService::new(
        machine.clone(),
        ServiceConfig {
            workers: args.workers,
            mode: args.mode,
            ..ServiceConfig::default()
        },
    );

    let mut expected_reconfigs = 0u64;
    let mut sessions = 0u64;
    let mut table = Vec::new();
    for b in dynamic() {
        let template = Arc::new((b.template)());
        // Prove the template swappable before trusting any swap below.
        let sweep = template
            .validate_swappable(&machine, &opts, args.mode)
            .unwrap_or_else(|e| fail(&format!("{}: not swappable: {e}", b.name)));
        for trace in (b.traces)() {
            let want = oracle_replay(&template, &(b.init)(), &trace, &machine, &opts, args.mode)
                .unwrap_or_else(|e| fail(&format!("{}/{}: oracle: {e}", b.name, trace.name)));
            let id = service
                .submit_dynamic(b.name, &template, &(b.init)(), FaultPlan::none())
                .unwrap_or_else(|e| fail(&format!("{}/{}: submit: {e}", b.name, trace.name)));
            for step in &trace.steps {
                for (name, value) in &step.sets {
                    service.set_param(id, name, *value).unwrap_or_else(|e| {
                        fail(&format!("{}/{}: set_param: {e}", b.name, trace.name))
                    });
                }
                service
                    .feed(id, step.iters)
                    .unwrap_or_else(|e| fail(&format!("{}/{}: feed: {e}", b.name, trace.name)));
            }
            let closed = service
                .close(id)
                .unwrap_or_else(|e| fail(&format!("{}/{}: close: {e}", b.name, trace.name)));
            if closed.faulted {
                fail(&format!(
                    "{}/{} faulted: {:?}",
                    b.name, trace.name, closed.failures
                ));
            }
            if closed.iters_done != trace.total_iters() {
                fail(&format!(
                    "{}/{}: {} of {} iterations ran",
                    b.name,
                    trace.name,
                    closed.iters_done,
                    trace.total_iters()
                ));
            }
            if !rows_equal(&closed.outputs, &want) {
                fail(&format!(
                    "{}/{}: service output differs from scratch oracle",
                    b.name, trace.name
                ));
            }
            expected_reconfigs += 1 + trace.reconfigurations();
            sessions += 1;
            table.push(vec![
                b.name.to_string(),
                trace.name.clone(),
                format!("{}", trace.total_iters()),
                format!("{}", trace.reconfigurations()),
                format!("{}", sweep.configurations),
                "ok".into(),
            ]);
        }
    }

    let report = service.shutdown(&report_name);
    let s = report.scache;
    if s.reconfigurations != expected_reconfigs {
        fail(&format!(
            "expected {expected_reconfigs} configuration installs, cache saw {}",
            s.reconfigurations
        ));
    }
    if s.hits + s.misses != s.reconfigurations {
        fail("schedule-cache arithmetic broken: hits + misses != reconfigurations");
    }
    if s.evictions == 0 && s.misses != s.distinct_valuations {
        fail(&format!(
            "compile-once-per-valuation broken: {} misses for {} distinct valuations",
            s.misses, s.distinct_valuations
        ));
    }
    if s.hits == 0 {
        fail("the traces revisit valuations; the schedule cache never hit");
    }
    if report.admission.admitted != sessions {
        fail(&format!(
            "{} sessions admitted, expected {sessions}",
            report.admission.admitted
        ));
    }
    if let Err(e) = macross_telemetry::service::validate_str(&report.json_string()) {
        fail(&format!("emitted report violates macross-service-v2: {e}"));
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "trace",
                "iters",
                "swaps",
                "configs",
                "vs oracle"
            ],
            &table,
        )
    );
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec!["reconfigurations".into(), s.reconfigurations.to_string()],
                vec![
                    "distinct valuations".into(),
                    s.distinct_valuations.to_string()
                ],
                vec!["schedule-cache hits".into(), s.hits.to_string()],
                vec!["schedule-cache misses".into(), s.misses.to_string()],
                vec![
                    "compile-cache compilations".into(),
                    report.cache.compilations.to_string()
                ],
            ],
        )
    );
    if report_emission_enabled() {
        match report.write_to_dir(&bench_dir()) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => fail(&format!("failed to write {}: {e}", report.file_name())),
        }
    }
    println!("dynamic-rate experiment passed");
}
