//! Regenerates Figure 12: percent improvement of macro-SIMDized code when
//! the target has the streaming address generation unit (SAGU).

use macross_bench::{figure12_row, render_table};

fn main() {
    println!("== Figure 12: benefit of the SAGU on macro-SIMDized code ==");
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut n = 0;
    for b in macross_benchsuite::all() {
        let r = figure12_row(&b);
        sum += r.improvement_pct;
        n += 1;
        rows.push(vec![
            r.name.to_string(),
            format!("{:.1}%", r.improvement_pct),
        ]);
    }
    rows.push(vec!["AVERAGE".into(), format!("{:.1}%", sum / n as f64)]);
    println!("{}", render_table(&["benchmark", "improvement"], &rows));
    println!("(paper: 8.1% average; MatrixMult 22%, DCT 17%; BeamFormer/MP3Decoder least)");
}
