//! Regenerates Figure 12: percent improvement of macro-SIMDized code when
//! the target has the streaming address generation unit (SAGU).

use macross_bench::{emit_report, figure12_row, render_table, BenchReport, BenchRow};
use macross_vm::Machine;

fn main() {
    println!("== Figure 12: benefit of the SAGU on macro-SIMDized code ==");
    let sagu = Machine::core_i7_with_sagu();
    let mut report = BenchReport::new("fig12", &sagu.name, sagu.simd_width as u64);
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut n = 0;
    for b in macross_benchsuite::all() {
        let r = figure12_row(&b);
        sum += r.improvement_pct;
        n += 1;
        report.push_row(BenchRow::new(r.name).metric("improvement_pct", r.improvement_pct));
        rows.push(vec![
            r.name.to_string(),
            format!("{:.1}%", r.improvement_pct),
        ]);
    }
    let avg = sum / n as f64;
    rows.push(vec!["AVERAGE".into(), format!("{avg:.1}%")]);
    println!("{}", render_table(&["benchmark", "improvement"], &rows));
    println!("(paper: 8.1% average; MatrixMult 22%, DCT 17%; BeamFormer/MP3Decoder least)");
    report.push_row(BenchRow::new("AVERAGE").metric("improvement_pct", avg));
    emit_report(&report);
}
