//! Regenerates Figure 10 of the paper: speedup over scalar of
//! (a) host-compiler auto-vectorization, (b) macro-SIMDization, and
//! (c) macro-SIMDization followed by auto-vectorization.
//!
//! Usage: `fig10 [gcc|icc]` (default: both).

use macross_autovec::AutovecConfig;
use macross_bench::{emit_report, figure10_row, geomean, render_table, BenchReport, BenchRow};
use macross_vm::Machine;

fn run(host_name: &str, host_key: &str, host: &AutovecConfig) {
    let machine = Machine::core_i7();
    println!("== Figure 10 ({host_name} host compiler model), SW=4, Core-i7-like machine ==");
    let mut report = BenchReport::new(
        format!("fig10_{host_key}"),
        &machine.name,
        machine.simd_width as u64,
    );
    let mut rows = Vec::new();
    let mut auto_v = Vec::new();
    let mut macro_v = Vec::new();
    let mut both_v = Vec::new();
    for b in macross_benchsuite::all() {
        let r = figure10_row(&b, &machine, host);
        auto_v.push(r.autovec);
        macro_v.push(r.macro_simd);
        both_v.push(r.macro_plus_auto);
        report.push_row(
            BenchRow::new(r.name)
                .metric("autovec_speedup", r.autovec)
                .metric("macro_simd_speedup", r.macro_simd)
                .metric("macro_plus_auto_speedup", r.macro_plus_auto),
        );
        rows.push(vec![
            r.name.to_string(),
            format!("{:.2}x", r.autovec),
            format!("{:.2}x", r.macro_simd),
            format!("{:.2}x", r.macro_plus_auto),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.2}x", geomean(auto_v.clone())),
        format!("{:.2}x", geomean(macro_v.clone())),
        format!("{:.2}x", geomean(both_v.clone())),
    ]);
    println!(
        "{}",
        render_table(
            &["benchmark", "auto-vectorize", "macro-SIMD", "macro+auto"],
            &rows
        )
    );
    let gain = (geomean(macro_v.clone()) / geomean(auto_v.clone()) - 1.0) * 100.0;
    println!("macro-SIMD outperforms {host_name} auto-vectorization by {gain:.0}% on average");
    println!("(paper: +54% vs GCC, +26% vs ICC)\n");
    report.push_row(
        BenchRow::new("GEOMEAN")
            .metric("autovec_speedup", geomean(auto_v))
            .metric("macro_simd_speedup", geomean(macro_v))
            .metric("macro_plus_auto_speedup", geomean(both_v)),
    );
    emit_report(&report);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "gcc" {
        run("GCC-like", "gcc", &AutovecConfig::gcc_like(4));
    }
    if arg.is_empty() || arg == "icc" {
        run("ICC-like", "icc", &AutovecConfig::icc_like(4));
    }
}
