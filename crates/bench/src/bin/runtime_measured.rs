//! Measured vs. modeled: run benchmarks on the threaded runtime at 1, 2,
//! and 4 worker threads and print the observed wall-clock next to the
//! analytic multicore makespan estimate for the same LPT placement.
//!
//! The modeled column is cycles of the abstract machine; the measured
//! column is host nanoseconds of the interpreter — the two are different
//! units, so compare *scaling trends*, not magnitudes.
//!
//! Usage: `runtime_measured [bench...]` (default: a fixed five-benchmark
//! subset). With the `telemetry` feature enabled, also drains the trace
//! session of the per-stage detail run into `TRACE_runtime_measured.json`
//! (Chrome `chrome://tracing` format).

use macross_bench::{
    emit_chrome_trace, emit_report, measured_vs_modeled, measured_vs_modeled_traced, node_names,
    render_table, safe_ratio, BenchReport, BenchRow,
};
use macross_sdf::Schedule;
use macross_telemetry::TraceSession;
use macross_vm::Machine;

const BENCHES: [&str; 5] = ["FMRadio", "FilterBank", "DCT", "MatrixMult", "Serpent"];
const CORES: [usize; 3] = [1, 2, 4];

fn main() {
    let machine = Machine::core_i7();
    let iters = 50;
    let selected: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            BENCHES.iter().map(|s| s.to_string()).collect()
        } else {
            args
        }
    };
    println!(
        "== Threaded runtime: measured wall-clock vs. analytic makespan (LPT, {iters} iters) =="
    );
    let mut report = BenchReport::new("runtime_measured", &machine.name, machine.simd_width as u64);
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    let mut batched_total = 0u64;
    for name in &selected {
        let b = macross_benchsuite::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}' (known: {BENCHES:?})");
            std::process::exit(2);
        });
        let g = (b.build)();
        let sched = Schedule::compute(&g).expect("schedule");
        let mut base_ns = 0.0;
        let (mut traffic, mut stalls, mut stall_ns) = (0u64, 0u64, 0u64);
        for cores in CORES {
            let m = measured_vs_modeled(name, &g, &sched, &machine, cores, iters);
            let ns_iter = m.report.nanos_per_iter();
            if cores == 1 {
                base_ns = ns_iter;
            }
            let speedup = safe_ratio(base_ns, ns_iter);
            traffic += m.report.ring_traffic();
            stalls += m.report.total_stalls();
            stall_ns += m.report.total_stall_nanos();
            batched_total += m
                .report
                .stages
                .iter()
                .map(|s| s.batched_firings)
                .sum::<u64>();
            report.push_row(
                BenchRow::new(format!("{name}@{cores}"))
                    .metric("modeled_cycles_per_iter", m.modeled.makespan as f64)
                    .metric("measured_ns_per_iter", ns_iter)
                    .metric("speedup", speedup)
                    .counter("cut_edges", m.report.cut_edges as u64)
                    .counter("ring_traffic", m.report.ring_traffic())
                    .counter("total_stalls", m.report.total_stalls())
                    .counter("stall_nanos", m.report.total_stall_nanos()),
            );
            rows.push(vec![
                name.to_string(),
                cores.to_string(),
                m.modeled.makespan.to_string(),
                format!("{ns_iter:.0}"),
                format!("{speedup:.2}x"),
                m.report.cut_edges.to_string(),
                m.report.ring_traffic().to_string(),
                m.report.total_stalls().to_string(),
            ]);
        }
        totals.push(vec![
            name.to_string(),
            traffic.to_string(),
            stalls.to_string(),
            stall_ns.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "cores",
                "modeled cyc/iter",
                "measured ns/iter",
                "speedup",
                "cut edges",
                "ring elems",
                "stalls",
            ],
            &rows,
        )
    );

    println!("== Ring totals across all core counts ==");
    println!(
        "{}",
        render_table(
            &["benchmark", "ring traffic", "total stalls", "stall ns"],
            &totals,
        )
    );

    // Per-stage detail for one benchmark, to show the counters exist and
    // attribute work plausibly. This run is traced: with the telemetry
    // feature on, the firing/stall/park spans land in a Chrome trace file.
    let detail = selected
        .iter()
        .find(|n| n.as_str() == "FilterBank")
        .cloned()
        .unwrap_or_else(|| selected[0].clone());
    let b = macross_benchsuite::by_name(&detail).unwrap();
    let g = (b.build)();
    let sched = Schedule::compute(&g).unwrap();
    let session = TraceSession::new(4, 1 << 16);
    let m = measured_vs_modeled_traced(&detail, &g, &sched, &machine, 4, iters, &session);
    println!("== {detail} @ 4 workers: per-stage counters ==");
    let rows: Vec<Vec<String>> = m
        .report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.node.to_string(),
                s.name.clone(),
                s.core.to_string(),
                s.firings.to_string(),
                s.batched_firings.to_string(),
                s.ring_in.to_string(),
                s.ring_out.to_string(),
                s.full_stalls.to_string(),
                s.empty_stalls.to_string(),
                s.stall_nanos.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "node",
                "stage",
                "core",
                "firings",
                "batched",
                "ring in",
                "ring out",
                "full stalls",
                "empty stalls",
                "stall ns",
            ],
            &rows,
        )
    );
    if session.enabled() {
        emit_chrome_trace("runtime_measured", &session, &node_names(&g));
    }
    let report = report.with_batched_firings(batched_total);
    emit_report(&report);
}
