//! Measured vs. modeled: run benchmarks on the threaded runtime at 1, 2,
//! and 4 worker threads and print the observed wall-clock next to the
//! analytic multicore makespan estimate for the same LPT placement.
//!
//! The modeled column is cycles of the abstract machine; the measured
//! column is host nanoseconds of the interpreter — the two are different
//! units, so compare *scaling trends*, not magnitudes.

use macross_bench::{measured_vs_modeled, render_table};
use macross_sdf::Schedule;
use macross_vm::Machine;

const BENCHES: [&str; 5] = ["FMRadio", "FilterBank", "DCT", "MatrixMult", "Serpent"];
const CORES: [usize; 3] = [1, 2, 4];

fn main() {
    let machine = Machine::core_i7();
    let iters = 50;
    println!(
        "== Threaded runtime: measured wall-clock vs. analytic makespan (LPT, {iters} iters) =="
    );
    let mut rows = Vec::new();
    for name in BENCHES {
        let b = macross_benchsuite::by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let sched = Schedule::compute(&g).expect("schedule");
        let mut base_ns = 0.0;
        for cores in CORES {
            let m = measured_vs_modeled(name, &g, &sched, &machine, cores, iters);
            let ns_iter = m.report.nanos_per_iter();
            if cores == 1 {
                base_ns = ns_iter;
            }
            rows.push(vec![
                name.to_string(),
                cores.to_string(),
                m.modeled.makespan.to_string(),
                format!("{:.0}", ns_iter),
                format!("{:.2}x", base_ns / ns_iter),
                m.report.cut_edges.to_string(),
                m.report.ring_traffic().to_string(),
                m.report.total_stalls().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "cores",
                "modeled cyc/iter",
                "measured ns/iter",
                "speedup",
                "cut edges",
                "ring elems",
                "stalls",
            ],
            &rows,
        )
    );

    // Per-stage detail for one benchmark, to show the counters exist and
    // attribute work plausibly.
    let b = macross_benchsuite::by_name("FilterBank").unwrap();
    let g = (b.build)();
    let sched = Schedule::compute(&g).unwrap();
    let m = measured_vs_modeled("FilterBank", &g, &sched, &machine, 4, iters);
    println!("== FilterBank @ 4 workers: per-stage counters ==");
    let rows: Vec<Vec<String>> = m
        .report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.node.to_string(),
                s.name.clone(),
                s.core.to_string(),
                s.firings.to_string(),
                s.ring_in.to_string(),
                s.ring_out.to_string(),
                s.full_stalls.to_string(),
                s.empty_stalls.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "node",
                "stage",
                "core",
                "firings",
                "ring in",
                "ring out",
                "full stalls",
                "empty stalls"
            ],
            &rows,
        )
    );
}
