//! Measured vs. modeled under the cost-model planner: run benchmarks on
//! the threaded runtime with *planned* placements (fusion, fission,
//! adaptive batching) at 2- and 4-worker budgets, and print the observed
//! wall-clock next to the planner's own modelled verdict.
//!
//! Every benchmark also runs once on a single core — the measured
//! baseline every speedup divides by. That row is flagged `baseline` in
//! the report so comparators never gate on its self-ratio. Two distinct
//! mechanisms can *collapse* a parallel row back to that baseline:
//!
//! - the planner's parallel margin — the cost model says multicore will
//!   not pay for this graph;
//! - the hardware budget — the worker budget is clamped to the host's
//!   available parallelism (override: `MACROSS_ASSUME_CORES`), so on a
//!   1-core box every parallel budget collapses.
//!
//! A collapsed row reuses the baseline measurement and reports speedup
//! exactly 1.0: "don't parallelize" is a verdict, not a failure.
//!
//! The modeled column is cycles of the abstract machine; the measured
//! column is host nanoseconds of the interpreter — different units, so
//! compare *scaling trends*, not magnitudes. Wall-clock metrics are the
//! median of three runs; the `--gate` comparison uses the per-side
//! minimum (the least noise-sensitive estimator).
//!
//! Usage: `runtime_measured [--gate] [--all] [bench...]`
//!
//! - default benchmark set: a fixed five-benchmark subset;
//! - `--all`: the full benchmark suite;
//! - `--gate`: exit nonzero when any committed placement measures a
//!   speedup below 1.0 — the CI multicore gate.
//!
//! Deterministic counters for the CI perf gate: pin the comm model with
//! `MACROSS_COMM_CYCLES_PER_ELEM` / `MACROSS_COMM_SYNC_PER_EDGE` and the
//! budget with `MACROSS_ASSUME_CORES`; the planner is then a pure
//! function of the graph and every counter is bit-reproducible.
//!
//! With the `telemetry` feature enabled, also drains the trace session
//! of the per-stage detail run into `TRACE_runtime_measured.json`
//! (Chrome `chrome://tracing` format).

use macross_bench::{
    emit_chrome_trace, emit_report, node_names, planned_vs_modeled_traced, render_table,
    safe_ratio, BenchReport, BenchRow,
};
use macross_multicore::{plan_placement, CommModel};
use macross_runtime::{run_threaded_placed, Placement, RuntimeReport};
use macross_sdf::Schedule;
use macross_telemetry::TraceSession;
use macross_vm::{run_scheduled, Machine};

const BENCHES: [&str; 5] = ["FMRadio", "FilterBank", "DCT", "MatrixMult", "Serpent"];
const WORKERS: [usize; 2] = [2, 4];
const SAMPLES: usize = 3;

/// Cores this host can actually run in parallel, `MACROSS_ASSUME_CORES`
/// taking precedence (CI pins it so planned counters are reproducible).
fn hardware_budget() -> usize {
    std::env::var("MACROSS_ASSUME_CORES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(64)
}

struct Measurement {
    median_ns: f64,
    min_ns: f64,
    report: RuntimeReport,
}

/// `SAMPLES` runs: median wall-clock (reported) + minimum (gated), with
/// the median run's report (counters are deterministic; only the clock
/// is noisy).
fn measure(mut run: impl FnMut() -> RuntimeReport) -> Measurement {
    let mut samples: Vec<(f64, RuntimeReport)> = (0..SAMPLES)
        .map(|_| run())
        .map(|r| (r.nanos_per_iter(), r))
        .collect();
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let min_ns = samples[0].0;
    let (median_ns, report) = samples.swap_remove(samples.len() / 2);
    Measurement {
        median_ns,
        min_ns,
        report,
    }
}

fn main() {
    let machine = Machine::core_i7();
    let iters = 50;
    let mut gate = false;
    let mut all = false;
    let mut named: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--gate" => gate = true,
            "--all" => all = true,
            _ => named.push(arg),
        }
    }
    let selected: Vec<String> = if all {
        macross_benchsuite::all()
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    } else if named.is_empty() {
        BENCHES.iter().map(|s| s.to_string()).collect()
    } else {
        named
    };
    let comm = CommModel::calibrated();
    let hw = hardware_budget();
    println!(
        "== Threaded runtime: measured wall-clock vs. planned makespan \
         ({iters} iters, median of {SAMPLES}, comm model {}/{}, hardware budget {hw}) ==",
        comm.cycles_per_element, comm.sync_per_edge
    );
    let mut report = BenchReport::new("runtime_measured", &machine.name, machine.simd_width as u64);
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    let mut batched_total = 0u64;
    let mut gate_failures: Vec<String> = Vec::new();
    for name in &selected {
        let b = macross_benchsuite::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}' (known: {BENCHES:?}, --all for the full suite)");
            std::process::exit(2);
        });
        let g = (b.build)();
        let sched = Schedule::compute(&g).expect("schedule");
        let profile = run_scheduled(&g, &sched, &machine, 2).expect("sequential profile");
        // The measured baseline: the whole graph on one core.
        let sequential = Placement::whole_stage(vec![0; g.node_count()]);
        let base = measure(|| {
            run_threaded_placed(&g, &sched, &machine, &sequential, iters)
                .expect("sequential run")
                .report
        });
        batched_total += batched_firings(&base.report);
        report.push_row(
            BenchRow::new(format!("{name}@1"))
                .as_baseline()
                .metric("measured_ns_per_iter", base.median_ns)
                .counter("cut_edges", 0)
                .counter("ring_traffic", 0)
                .counter("cores_used", 1),
        );
        rows.push(vec![
            name.to_string(),
            "1".into(),
            "-".into(),
            format!("{:.0}", base.median_ns),
            "(baseline)".into(),
            "-".into(),
            "0".into(),
            "0".into(),
            "0".into(),
        ]);
        let (mut traffic, mut stalls, mut stall_ns) = (0u64, 0u64, 0u64);
        for workers in WORKERS {
            let budget = workers.min(hw);
            let plan = plan_placement(&g, &sched, &profile.node_cycles, budget, &comm);
            let collapsed = plan.cores_used == 1;
            let m = if collapsed {
                Measurement {
                    median_ns: base.median_ns,
                    min_ns: base.min_ns,
                    report: base.report.clone(),
                }
            } else {
                measure(|| {
                    run_threaded_placed(&g, &sched, &machine, &plan.placement, iters)
                        .expect("planned run")
                        .report
                })
            };
            let speedup = if collapsed {
                1.0
            } else {
                safe_ratio(base.median_ns, m.median_ns)
            };
            if gate && !collapsed {
                let gate_speedup = safe_ratio(base.min_ns, m.min_ns);
                if gate_speedup < 1.0 {
                    gate_failures.push(format!(
                        "{name}@{workers}: planned {} cores measured {gate_speedup:.3}x < 1.0",
                        plan.cores_used
                    ));
                }
            }
            traffic += m.report.ring_traffic();
            stalls += m.report.total_stalls();
            stall_ns += m.report.total_stall_nanos();
            batched_total += batched_firings(&m.report);
            report.push_row(
                BenchRow::new(format!("{name}@{workers}"))
                    .metric("modeled_cycles_per_iter", plan.modelled_makespan as f64)
                    .metric("modeled_speedup", plan.modelled_speedup())
                    .metric("measured_ns_per_iter", m.median_ns)
                    .metric("speedup", speedup)
                    .counter("cut_edges", m.report.cut_edges as u64)
                    .counter("cores_used", plan.cores_used as u64)
                    .counter("fused_groups", plan.fused_groups as u64)
                    .counter("fission_replicas", plan.fissioned as u64)
                    .counter("ring_traffic", m.report.ring_traffic())
                    .counter("total_stalls", m.report.total_stalls())
                    .counter("stall_nanos", m.report.total_stall_nanos()),
            );
            rows.push(vec![
                name.to_string(),
                format!(
                    "{}/{workers}{}",
                    plan.cores_used,
                    if plan.fissioned > 0 { "*" } else { "" }
                ),
                plan.modelled_makespan.to_string(),
                format!("{:.0}", m.median_ns),
                format!("{speedup:.2}x"),
                format!("{:.2}x", plan.modelled_speedup()),
                m.report.cut_edges.to_string(),
                m.report.ring_traffic().to_string(),
                m.report.total_stalls().to_string(),
            ]);
        }
        totals.push(vec![
            name.to_string(),
            traffic.to_string(),
            stalls.to_string(),
            stall_ns.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "cores (* fission)",
                "modeled cyc/iter",
                "measured ns/iter",
                "speedup",
                "modeled speedup",
                "cut edges",
                "ring elems",
                "stalls",
            ],
            &rows,
        )
    );

    println!("== Ring totals across all worker budgets ==");
    println!(
        "{}",
        render_table(
            &["benchmark", "ring traffic", "total stalls", "stall ns"],
            &totals,
        )
    );

    // Per-stage detail for one benchmark, to show the counters exist and
    // attribute work plausibly. This run is traced: with the telemetry
    // feature on, the firing/stall/park spans land in a Chrome trace file.
    let detail = selected
        .iter()
        .find(|n| n.as_str() == "FilterBank")
        .cloned()
        .unwrap_or_else(|| selected[0].clone());
    let b = macross_benchsuite::by_name(&detail).unwrap();
    let g = (b.build)();
    let sched = Schedule::compute(&g).unwrap();
    let session = TraceSession::new(4, 1 << 16);
    let budget = 4usize.min(hw);
    let m = planned_vs_modeled_traced(
        &detail, &g, &sched, &machine, budget, iters, &comm, &session,
    );
    println!(
        "== {detail} @ {budget}-worker budget (planner chose {} cores): per-stage counters ==",
        m.plan.cores_used
    );
    let rows: Vec<Vec<String>> = m
        .report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.node.to_string(),
                s.name.clone(),
                s.core.to_string(),
                s.firings.to_string(),
                s.batched_firings.to_string(),
                s.ring_in.to_string(),
                s.ring_out.to_string(),
                s.full_stalls.to_string(),
                s.empty_stalls.to_string(),
                s.stall_nanos.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "node",
                "stage",
                "core",
                "firings",
                "batched",
                "ring in",
                "ring out",
                "full stalls",
                "empty stalls",
                "stall ns",
            ],
            &rows,
        )
    );
    if session.enabled() {
        emit_chrome_trace("runtime_measured", &session, &node_names(&g));
    }
    let report = report.with_batched_firings(batched_total);
    emit_report(&report);
    if !gate_failures.is_empty() {
        eprintln!("MULTICORE GATE FAILED:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if gate {
        println!("multicore gate: every committed placement at or above 1.0x");
    }
}

fn batched_firings(report: &RuntimeReport) -> u64 {
    report.stages.iter().map(|s| s.batched_firings).sum()
}
