//! Regenerates Figure 11: percent speedup of vertical SIMDization over
//! single-actor-only SIMDization.

use macross_bench::{figure11_row, render_table};
use macross_vm::Machine;

fn main() {
    let machine = Machine::core_i7();
    println!("== Figure 11: benefit of vertical SIMDization (vs single-actor only) ==");
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut n = 0;
    for b in macross_benchsuite::all() {
        let r = figure11_row(&b, &machine);
        sum += r.improvement_pct;
        n += 1;
        rows.push(vec![
            r.name.to_string(),
            format!("{:.1}%", r.improvement_pct),
        ]);
    }
    rows.push(vec!["AVERAGE".into(), format!("{:.1}%", sum / n as f64)]);
    println!("{}", render_table(&["benchmark", "improvement"], &rows));
    println!(
        "(paper: 40% average; MatrixMultBlock largest at 114%; FilterBank/BeamFormer negligible)"
    );
}
