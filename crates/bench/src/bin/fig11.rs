//! Regenerates Figure 11: percent speedup of vertical SIMDization over
//! single-actor-only SIMDization.

use macross_bench::{emit_report, figure11_row, render_table, BenchReport, BenchRow};
use macross_vm::Machine;

fn main() {
    let machine = Machine::core_i7();
    println!("== Figure 11: benefit of vertical SIMDization (vs single-actor only) ==");
    let mut report = BenchReport::new("fig11", &machine.name, machine.simd_width as u64);
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut n = 0;
    for b in macross_benchsuite::all() {
        let r = figure11_row(&b, &machine);
        sum += r.improvement_pct;
        n += 1;
        report.push_row(BenchRow::new(r.name).metric("improvement_pct", r.improvement_pct));
        rows.push(vec![
            r.name.to_string(),
            format!("{:.1}%", r.improvement_pct),
        ]);
    }
    let avg = sum / n as f64;
    rows.push(vec!["AVERAGE".into(), format!("{avg:.1}%")]);
    println!("{}", render_table(&["benchmark", "improvement"], &rows));
    println!(
        "(paper: 40% average; MatrixMultBlock largest at 114%; FilterBank/BeamFormer negligible)"
    );
    report.push_row(BenchRow::new("AVERAGE").metric("improvement_pct", avg));
    emit_report(&report);
}
