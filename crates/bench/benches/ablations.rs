//! Ablation benches for the design choices DESIGN.md calls out:
//! horizontal on/off, permutation-based tape accesses on/off, and a SIMD
//! width sweep (the paper's motivation that wider SIMD magnifies
//! under-utilization).

use criterion::{criterion_group, criterion_main, Criterion};
use macross::driver::{macro_simdize, SimdizeOptions};
use macross_benchsuite::by_name;
use macross_vm::{run_scheduled, Machine};

fn ablate_horizontal(c: &mut Criterion) {
    let machine = Machine::core_i7();
    let b = by_name("FilterBank").unwrap();
    let g = (b.build)();
    let with = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let without =
        macro_simdize(&g, &machine, &SimdizeOptions { horizontal: false, ..SimdizeOptions::all() }).unwrap();
    let mut group = c.benchmark_group("ablate_horizontal/FilterBank");
    group.sample_size(10);
    group.bench_function("with_horizontal", |bch| {
        bch.iter(|| run_scheduled(&with.graph, &with.schedule, &machine, 2).total_cycles())
    });
    group.bench_function("without_horizontal", |bch| {
        bch.iter(|| run_scheduled(&without.graph, &without.schedule, &machine, 2).total_cycles())
    });
    group.finish();
}

fn ablate_permnet(c: &mut Criterion) {
    let machine = Machine::core_i7();
    let b = by_name("DCT").unwrap();
    let g = (b.build)();
    let with = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let without =
        macro_simdize(&g, &machine, &SimdizeOptions { permute_opt: false, ..SimdizeOptions::all() }).unwrap();
    let mut group = c.benchmark_group("ablate_permnet/DCT");
    group.sample_size(10);
    group.bench_function("with_permute_opt", |bch| {
        bch.iter(|| run_scheduled(&with.graph, &with.schedule, &machine, 2).total_cycles())
    });
    group.bench_function("without_permute_opt", |bch| {
        bch.iter(|| run_scheduled(&without.graph, &without.schedule, &machine, 2).total_cycles())
    });
    group.finish();
}

fn ablate_simd_width(c: &mut Criterion) {
    let b = by_name("Serpent").unwrap();
    let g = (b.build)();
    let mut group = c.benchmark_group("ablate_simd_width/Serpent");
    group.sample_size(10);
    for sw in [2usize, 4, 8, 16] {
        let machine = macross_vm::Machine::wide(sw);
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        group.bench_function(format!("sw{sw}"), |bch| {
            bch.iter(|| run_scheduled(&simd.graph, &simd.schedule, &machine, 2).total_cycles())
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_horizontal, ablate_permnet, ablate_simd_width);

// Appended ablations: Equation-1 scaling policy and the SIMD-aware
// partitioner (the paper's future-work extension).

mod extra {
    use criterion::Criterion;
    use macross_bench::scaling_ablation;
    use macross_benchsuite::by_name;
    use macross_multicore::{figure13_point, figure13_point_simd_aware, CommModel};
    use macross_vm::Machine;

    pub fn ablate_scaling(c: &mut Criterion) {
        let machine = Machine::core_i7();
        let b = by_name("FMRadio").unwrap();
        let mut group = c.benchmark_group("ablate_scaling/FMRadio");
        group.sample_size(10);
        group.bench_function("equation1_vs_naive", |bch| {
            bch.iter(|| {
                let r = scaling_ablation(&b, &machine);
                (r.minimal_buffer_elems, r.naive_buffer_elems)
            })
        });
        group.finish();
    }

    pub fn ablate_partitioner(c: &mut Criterion) {
        let machine = Machine::core_i7();
        let comm = CommModel::default();
        let b = by_name("TDE").unwrap();
        let g = (b.build)();
        let mut group = c.benchmark_group("ablate_partitioner/TDE");
        group.sample_size(10);
        group.bench_function("naive_lpt", |bch| {
            bch.iter(|| figure13_point(&g, &machine, 2, &comm, 2).unwrap().multicore_simd)
        });
        group.bench_function("simd_aware", |bch| {
            bch.iter(|| figure13_point_simd_aware(&g, &machine, 2, &comm, 2).unwrap().multicore_simd)
        });
        group.finish();
    }
}

criterion_group!(extra_benches, extra::ablate_scaling, extra::ablate_partitioner);
criterion_main!(benches, extra_benches);
