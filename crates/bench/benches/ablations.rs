//! Ablation benches for the design choices DESIGN.md calls out:
//! horizontal on/off, permutation-based tape accesses on/off, a SIMD
//! width sweep (the paper's motivation that wider SIMD magnifies
//! under-utilization), the Equation-1 scaling policy, and the SIMD-aware
//! partitioner.

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_bench::{scaling_ablation, time_case};
use macross_benchsuite::by_name;
use macross_multicore::{figure13_point, figure13_point_simd_aware, CommModel};
use macross_vm::{run_scheduled, Machine};

fn ablate_horizontal() {
    let machine = Machine::core_i7();
    let b = by_name("FilterBank").unwrap();
    let g = (b.build)();
    let with = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let without = macro_simdize(
        &g,
        &machine,
        &SimdizeOptions {
            horizontal: false,
            ..SimdizeOptions::all()
        },
    )
    .unwrap();
    time_case("ablate_horizontal/FilterBank/with", 10, || {
        run_scheduled(&with.graph, &with.schedule, &machine, 2)
            .unwrap()
            .total_cycles()
    });
    time_case("ablate_horizontal/FilterBank/without", 10, || {
        run_scheduled(&without.graph, &without.schedule, &machine, 2)
            .unwrap()
            .total_cycles()
    });
}

fn ablate_permnet() {
    let machine = Machine::core_i7();
    let b = by_name("DCT").unwrap();
    let g = (b.build)();
    let with = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
    let without = macro_simdize(
        &g,
        &machine,
        &SimdizeOptions {
            permute_opt: false,
            ..SimdizeOptions::all()
        },
    )
    .unwrap();
    time_case("ablate_permnet/DCT/with", 10, || {
        run_scheduled(&with.graph, &with.schedule, &machine, 2)
            .unwrap()
            .total_cycles()
    });
    time_case("ablate_permnet/DCT/without", 10, || {
        run_scheduled(&without.graph, &without.schedule, &machine, 2)
            .unwrap()
            .total_cycles()
    });
}

fn ablate_simd_width() {
    let b = by_name("Serpent").unwrap();
    let g = (b.build)();
    for sw in [2usize, 4, 8, 16] {
        let machine = Machine::wide(sw);
        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).unwrap();
        time_case(&format!("ablate_simd_width/Serpent/sw{sw}"), 10, || {
            run_scheduled(&simd.graph, &simd.schedule, &machine, 2)
                .unwrap()
                .total_cycles()
        });
    }
}

fn ablate_scaling() {
    let machine = Machine::core_i7();
    let b = by_name("FMRadio").unwrap();
    time_case("ablate_scaling/FMRadio/equation1_vs_naive", 10, || {
        let r = scaling_ablation(&b, &machine);
        (r.minimal_buffer_elems, r.naive_buffer_elems)
    });
}

fn ablate_partitioner() {
    let machine = Machine::core_i7();
    let comm = CommModel::default();
    let b = by_name("TDE").unwrap();
    let g = (b.build)();
    time_case("ablate_partitioner/TDE/naive_lpt", 10, || {
        figure13_point(&g, &machine, 2, &comm, 2)
            .unwrap()
            .multicore_simd
    });
    time_case("ablate_partitioner/TDE/simd_aware", 10, || {
        figure13_point_simd_aware(&g, &machine, 2, &comm, 2)
            .unwrap()
            .multicore_simd
    });
}

fn main() {
    ablate_horizontal();
    ablate_permnet();
    ablate_simd_width();
    ablate_scaling();
    ablate_partitioner();
}
