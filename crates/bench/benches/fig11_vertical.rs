//! Wall-clock bench for Figure 11: single-actor-only vs. full vertical
//! SIMDization, executing the transformed graphs on the VM.

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_bench::time_case;
use macross_benchsuite::by_name;
use macross_vm::{run_scheduled, Machine};

fn main() {
    let machine = Machine::core_i7();
    for name in ["MatrixMultBlock", "Serpent", "TDE"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let single = macro_simdize(&g, &machine, &SimdizeOptions::single_only()).expect("single");
        let vopts = SimdizeOptions {
            horizontal: false,
            permute_opt: false,
            reorder_opt: false,
            ..SimdizeOptions::all()
        };
        let vertical = macro_simdize(&g, &machine, &vopts).expect("vertical");
        time_case(&format!("fig11/{name}/single_actor_only"), 10, || {
            run_scheduled(&single.graph, &single.schedule, &machine, 2)
                .unwrap()
                .total_cycles()
        });
        time_case(&format!("fig11/{name}/vertical"), 10, || {
            run_scheduled(&vertical.graph, &vertical.schedule, &machine, 2)
                .unwrap()
                .total_cycles()
        });
    }
}
