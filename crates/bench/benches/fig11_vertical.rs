//! Criterion bench for Figure 11: single-actor-only vs. full vertical
//! SIMDization, executing the transformed graphs on the VM.

use criterion::{criterion_group, criterion_main, Criterion};
use macross::driver::{macro_simdize, SimdizeOptions};
use macross_benchsuite::by_name;
use macross_vm::{run_scheduled, Machine};

fn bench(c: &mut Criterion) {
    let machine = Machine::core_i7();
    for name in ["MatrixMultBlock", "Serpent", "TDE"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let single = macro_simdize(&g, &machine, &SimdizeOptions::single_only()).expect("single");
        let vopts = SimdizeOptions { horizontal: false, permute_opt: false, reorder_opt: false, ..SimdizeOptions::all() };
        let vertical = macro_simdize(&g, &machine, &vopts).expect("vertical");
        let mut group = c.benchmark_group(format!("fig11/{name}"));
        group.sample_size(10);
        group.bench_function("single_actor_only", |bch| {
            bch.iter(|| run_scheduled(&single.graph, &single.schedule, &machine, 2).total_cycles())
        });
        group.bench_function("vertical", |bch| {
            bch.iter(|| run_scheduled(&vertical.graph, &vertical.schedule, &machine, 2).total_cycles())
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
