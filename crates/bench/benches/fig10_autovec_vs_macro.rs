//! Wall-clock bench for Figure 10: executing a benchmark's scalar,
//! auto-vectorized (GCC-like and ICC-like), and macro-SIMDized variants
//! on the VM. The vectorized variants genuinely run faster in wall-clock
//! too, because one vector operation replaces `SW` interpreter dispatches.

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_autovec::{autovectorize_graph, AutovecConfig};
use macross_bench::time_case;
use macross_benchsuite::by_name;
use macross_sdf::Schedule;
use macross_vm::{run_scheduled, Machine};

fn main() {
    let machine = Machine::core_i7();
    for name in ["DCT", "Serpent", "FilterBank"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let sched = Schedule::compute(&g).expect("schedule");

        time_case(&format!("fig10/{name}/scalar"), 10, || {
            run_scheduled(&g, &sched, &machine, 2)
                .unwrap()
                .total_cycles()
        });

        let mut gcc_graph = g.clone();
        autovectorize_graph(&mut gcc_graph, &AutovecConfig::gcc_like(4));
        time_case(&format!("fig10/{name}/autovec_gcc"), 10, || {
            run_scheduled(&gcc_graph, &sched, &machine, 2)
                .unwrap()
                .total_cycles()
        });

        let mut icc_graph = g.clone();
        autovectorize_graph(&mut icc_graph, &AutovecConfig::icc_like(4));
        time_case(&format!("fig10/{name}/autovec_icc"), 10, || {
            run_scheduled(&icc_graph, &sched, &machine, 2)
                .unwrap()
                .total_cycles()
        });

        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).expect("simdize");
        time_case(&format!("fig10/{name}/macro_simd"), 10, || {
            run_scheduled(&simd.graph, &simd.schedule, &machine, 2)
                .unwrap()
                .total_cycles()
        });
    }
}
