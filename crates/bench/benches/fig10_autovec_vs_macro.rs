//! Criterion bench for Figure 10: wall-clock of executing a benchmark's
//! scalar, auto-vectorized (GCC-like and ICC-like), and macro-SIMDized
//! variants on the VM. The vectorized variants genuinely run faster in
//! wall-clock too, because one vector operation replaces `SW` interpreter
//! dispatches.

use criterion::{criterion_group, criterion_main, Criterion};
use macross::driver::{macro_simdize, SimdizeOptions};
use macross_autovec::{autovectorize_graph, AutovecConfig};
use macross_benchsuite::by_name;
use macross_sdf::Schedule;
use macross_vm::{run_scheduled, Machine};

fn bench(c: &mut Criterion) {
    let machine = Machine::core_i7();
    for name in ["DCT", "Serpent", "FilterBank"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let sched = Schedule::compute(&g).expect("schedule");
        let mut group = c.benchmark_group(format!("fig10/{name}"));
        group.sample_size(10);

        group.bench_function("scalar", |bch| {
            bch.iter(|| run_scheduled(&g, &sched, &machine, 2).total_cycles())
        });

        let mut gcc_graph = g.clone();
        autovectorize_graph(&mut gcc_graph, &AutovecConfig::gcc_like(4));
        group.bench_function("autovec_gcc", |bch| {
            bch.iter(|| run_scheduled(&gcc_graph, &sched, &machine, 2).total_cycles())
        });

        let mut icc_graph = g.clone();
        autovectorize_graph(&mut icc_graph, &AutovecConfig::icc_like(4));
        group.bench_function("autovec_icc", |bch| {
            bch.iter(|| run_scheduled(&icc_graph, &sched, &machine, 2).total_cycles())
        });

        let simd = macro_simdize(&g, &machine, &SimdizeOptions::all()).expect("simdize");
        group.bench_function("macro_simd", |bch| {
            bch.iter(|| run_scheduled(&simd.graph, &simd.schedule, &machine, 2).total_cycles())
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
