//! Wall-clock bench for the Figure-7 mechanism: the permutation network
//! (X vector loads + X*lg2(X) extract even/odd) vs. the equivalent
//! strided scalar gather, at several pop counts and SIMD widths.

use macross::permnet::gather_plan;
use macross_bench::time_case;

fn strided_gather(elems: &[i32], p: usize, sw: usize) -> Vec<Vec<i32>> {
    (0..p)
        .map(|j| (0..sw).map(|l| elems[l * p + j]).collect())
        .collect()
}

fn main() {
    for sw in [4usize, 16] {
        for p in [2usize, 4, 8, 16] {
            let elems: Vec<i32> = (0..(p * sw) as i32).collect();
            let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
            let plan = gather_plan(p, sw);
            time_case(&format!("fig7/p{p}_sw{sw}/permute_network"), 50, || {
                plan.apply(&loads)
            });
            time_case(&format!("fig7/p{p}_sw{sw}/strided_scalar"), 50, || {
                strided_gather(&elems, p, sw)
            });
        }
    }
}
