//! Criterion bench for the Figure-7 mechanism: the permutation network
//! (X vector loads + X*lg2(X) extract even/odd) vs. the equivalent
//! strided scalar gather, at several pop counts and SIMD widths.

use criterion::{criterion_group, criterion_main, Criterion};
use macross::permnet::gather_plan;

fn strided_gather(elems: &[i32], p: usize, sw: usize) -> Vec<Vec<i32>> {
    (0..p).map(|j| (0..sw).map(|l| elems[l * p + j]).collect()).collect()
}

fn bench(c: &mut Criterion) {
    for sw in [4usize, 16] {
        for p in [2usize, 4, 8, 16] {
            let elems: Vec<i32> = (0..(p * sw) as i32).collect();
            let loads: Vec<Vec<i32>> = elems.chunks(sw).map(|c| c.to_vec()).collect();
            let plan = gather_plan(p, sw);
            let mut group = c.benchmark_group(format!("fig7/p{p}_sw{sw}"));
            group.bench_function("permute_network", |bch| bch.iter(|| plan.apply(&loads)));
            group.bench_function("strided_scalar", |bch| bch.iter(|| strided_gather(&elems, p, sw)));
            group.finish();
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
