//! Criterion bench for the Figure-8/9 mechanism: SAGU hardware address
//! generation vs. the software sequence, over a long access stream.

use criterion::{criterion_group, criterion_main, Criterion};
use macross_sagu::{Sagu, SoftwareAddrGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_addr_gen");
    group.bench_function("sagu_hw_model", |bch| {
        bch.iter(|| {
            let mut s = Sagu::new(12, 4);
            (0..4096).map(|_| s.next_address()).sum::<u64>()
        })
    });
    group.bench_function("software_fig8", |bch| {
        bch.iter(|| {
            let mut s = SoftwareAddrGen::new(12, 4);
            (0..4096).map(|_| s.next_address()).sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
