//! Wall-clock bench for the Figure-8/9 mechanism: SAGU hardware address
//! generation vs. the software sequence, over a long access stream.

use macross_bench::time_case;
use macross_sagu::{Sagu, SoftwareAddrGen};

fn main() {
    time_case("fig8_addr_gen/sagu_hw_model", 50, || {
        let mut s = Sagu::new(12, 4);
        (0..4096).map(|_| s.next_address()).sum::<u64>()
    });
    time_case("fig8_addr_gen/software_fig8", 50, || {
        let mut s = SoftwareAddrGen::new(12, 4);
        (0..4096).map(|_| s.next_address()).sum::<u64>()
    });
}
