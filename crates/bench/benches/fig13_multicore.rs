//! Wall-clock bench for Figure 13: the multicore scheduling study
//! (partition, co-located SIMDization, makespan estimation) end to end,
//! plus the threaded runtime actually executing the partitioned graph.

use macross_bench::time_case;
use macross_benchsuite::by_name;
use macross_multicore::{figure13_point, CommModel, Partition};
use macross_sdf::Schedule;
use macross_vm::{run_scheduled, Machine};

fn main() {
    let machine = Machine::core_i7();
    let comm = CommModel::default();
    for name in ["FilterBank", "MatrixMult"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        for cores in [2usize, 4] {
            time_case(&format!("fig13/{name}/{cores}_cores_modeled"), 10, || {
                figure13_point(&g, &machine, cores, &comm, 2)
                    .unwrap()
                    .multicore_simd
            });
        }
        let sched = Schedule::compute(&g).expect("schedule");
        let seq = run_scheduled(&g, &sched, &machine, 2).expect("profile");
        for cores in [2usize, 4] {
            let part = Partition::lpt(&g, &sched, &seq.node_cycles, cores);
            time_case(&format!("fig13/{name}/{cores}_cores_threaded"), 10, || {
                macross_runtime::run_threaded(&g, &sched, &machine, &part.assignment, 2)
                    .unwrap()
                    .report
                    .wall_nanos
            });
        }
    }
}
