//! Criterion bench for Figure 13: the multicore scheduling study
//! (partition, co-located SIMDization, makespan estimation) end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use macross_benchsuite::by_name;
use macross_multicore::{figure13_point, CommModel};
use macross_vm::Machine;

fn bench(c: &mut Criterion) {
    let machine = Machine::core_i7();
    let comm = CommModel::default();
    for name in ["FilterBank", "MatrixMult"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let mut group = c.benchmark_group(format!("fig13/{name}"));
        group.sample_size(10);
        for cores in [2usize, 4] {
            group.bench_function(format!("{cores}_cores"), |bch| {
                bch.iter(|| figure13_point(&g, &machine, cores, &comm, 2).unwrap().multicore_simd)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
