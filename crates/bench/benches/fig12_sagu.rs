//! Wall-clock bench for Figure 12: macro-SIMDized code without and with
//! the SAGU tape optimization.

use macross::driver::{macro_simdize, SimdizeOptions};
use macross_bench::time_case;
use macross_benchsuite::by_name;
use macross_vm::{run_scheduled, Machine};

fn main() {
    let base = Machine::core_i7();
    let sagu = Machine::core_i7_with_sagu();
    for name in ["MatrixMult", "DCT", "DES"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let no_sagu = macro_simdize(&g, &base, &SimdizeOptions::all()).expect("base");
        let with_sagu = macro_simdize(&g, &sagu, &SimdizeOptions::all()).expect("sagu");
        time_case(&format!("fig12/{name}/macro_simd"), 10, || {
            run_scheduled(&no_sagu.graph, &no_sagu.schedule, &base, 2)
                .unwrap()
                .total_cycles()
        });
        time_case(&format!("fig12/{name}/macro_simd_sagu"), 10, || {
            run_scheduled(&with_sagu.graph, &with_sagu.schedule, &sagu, 2)
                .unwrap()
                .total_cycles()
        });
    }
}
