//! Criterion bench for Figure 12: macro-SIMDized code without and with
//! the SAGU tape optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use macross::driver::{macro_simdize, SimdizeOptions};
use macross_benchsuite::by_name;
use macross_vm::{run_scheduled, Machine};

fn bench(c: &mut Criterion) {
    let base = Machine::core_i7();
    let sagu = Machine::core_i7_with_sagu();
    for name in ["MatrixMult", "DCT", "DES"] {
        let b = by_name(name).expect("benchmark exists");
        let g = (b.build)();
        let no_sagu = macro_simdize(&g, &base, &SimdizeOptions::all()).expect("base");
        let with_sagu = macro_simdize(&g, &sagu, &SimdizeOptions::all()).expect("sagu");
        let mut group = c.benchmark_group(format!("fig12/{name}"));
        group.sample_size(10);
        group.bench_function("macro_simd", |bch| {
            bch.iter(|| run_scheduled(&no_sagu.graph, &no_sagu.schedule, &base, 2).total_cycles())
        });
        group.bench_function("macro_simd_sagu", |bch| {
            bch.iter(|| run_scheduled(&with_sagu.graph, &with_sagu.schedule, &sagu, 2).total_cycles())
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
